//! The metrics registry: labeled counters, gauges and log-scale
//! histograms, sharded per thread.
//!
//! ## Design
//!
//! The campaign engine's determinism contract forbids telemetry from
//! introducing cross-thread coupling that could perturb scheduling-visible
//! state, and its throughput goal forbids a global lock on the hot path.
//! The registry therefore hands each thread its own [`Shard`]: series
//! *creation* takes the shard's (uncontended) map lock once, after which
//! the returned [`Counter`]/[`Gauge`]/[`Histogram`] handles update plain
//! atomics — no lock, no contention, no RNG, no feedback into the
//! simulation. [`Registry::snapshot`] walks every shard and merges the
//! series: counters and histograms sum, gauges resolve by a global
//! last-set-wins sequence.
//!
//! Series are identified by a metric name plus a sorted label set, e.g.
//! `edac_events{domain="PMD",voltage="870mV"}` — the Prometheus data
//! model, which [`MetricsSnapshot::render_prometheus`] emits verbatim.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of log₂ buckets per histogram: values are clamped into
/// `[2⁻³⁰, 2³³)` seconds (≈ nanoseconds to ≈ 272 years), one bucket per
/// power of two.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// The smallest bucket's upper bound, as a power of two.
const BUCKET_MIN_EXP: i32 = -30;

/// A metric series identity: name plus sorted `(key, value)` labels.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SeriesKey {
    /// The metric name, e.g. `edac_events`.
    pub name: String,
    /// Sorted label pairs, e.g. `[("domain", "PMD"), ("voltage", "870mV")]`.
    pub labels: Vec<(String, String)>,
}

impl SeriesKey {
    /// Builds a key, sorting the labels into canonical order.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        SeriesKey {
            name: name.to_string(),
            labels,
        }
    }

    /// Renders the key in Prometheus exposition syntax:
    /// `name{k1="v1",k2="v2"}` (bare `name` when unlabeled). Label values
    /// are escaped per the exposition format ([`escape_label_value`]).
    pub fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let mut out = String::new();
        let _ = write!(out, "{}{{", self.name);
        for (i, (k, v)) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
        }
        out.push('}');
        out
    }
}

/// Escapes a label value for the Prometheus text exposition format:
/// backslash, double-quote and newline become `\\`, `\"` and `\n`
/// (in that order — the backslash pass must run first).
pub fn escape_label_value(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Escapes `# HELP` text for the exposition format: only backslash and
/// newline are special in help strings (quotes are not).
pub fn escape_help_text(text: &str) -> String {
    text.replace('\\', "\\\\").replace('\n', "\\n")
}

/// The `# HELP` line text for a metric name. Known series get a curated
/// description; anything else gets a generic one so every exposed series
/// still carries HELP/TYPE metadata, as the format requires.
fn help_text(name: &str) -> &'static str {
    match name {
        "edac_events" => "EDAC error-report records harvested, by voltage point, rail and level.",
        "runs_total" => "Completed benchmark trials, by voltage point and benchmark.",
        "run_failures_total" => "Trials ending in SDC or a crash, by failure class.",
        "sessions_total" => "Beam sessions started, by operating point.",
        "recoveries_total" => "Crash recoveries that consumed beam time.",
        "recovery_time_lost" => "Simulated seconds lost to crash recovery.",
        "trial_wall_time" => "Per-trial simulated wall time in seconds.",
        "wave_merge_latency" => "Host seconds to execute and merge one speculative wave.",
        "wave_critical_path" => "Longest single-worker busy time per wave, in host seconds.",
        "wave_trials_planned_total" => "Trials launched speculatively by the wave engine.",
        "wave_trials_absorbed_total" => "Speculative trials absorbed by the canonical merge.",
        "waves_total" => "Speculative waves executed and merged.",
        "trial_retries" => "Retry attempts spent on panicking or timed-out trials.",
        "quarantined_trials" => "Trials that exhausted every retry and were quarantined.",
        "worker_busy_seconds" => "Cumulative host seconds each pool worker spent executing trials.",
        "worker_idle_seconds" => "Cumulative host seconds each pool worker spent off the hot path.",
        "worker_shards_total" => "Work-stealing shards each pool worker pulled off the queue.",
        "telemetry_events_total" => "Observer callbacks captured into the JSONL event stream.",
        "session_sim_seconds" => "Simulated duration of the most recent session at this point.",
        "session_upsets_per_minute" => "Upset-rate estimate of the most recent session.",
        "session_recovery_lost_seconds" => "Recovery time lost in the most recent session.",
        "http_requests_total" => {
            "Control-plane HTTP requests, by method, endpoint template and status class."
        }
        "http_request_duration_seconds" => "Wall seconds to serve one control-plane HTTP request.",
        "http_response_bytes_total" => {
            "Response bytes written by the control plane, by endpoint template."
        }
        "queue_depth" => "Jobs waiting in the fair queue right now.",
        "tenant_jobs_total" => "Per-tenant job lifecycle transitions (queued, started, completed).",
        "tenant_quarantined_trials_total" => "Trials quarantined across a tenant's completed jobs.",
        "queue_wait_seconds" => "Seconds a job waited in the fair queue before it started.",
        "job_run_seconds" => "Wall seconds a job spent running, from dequeue to terminal state.",
        "tenant_completed_share" => "Fraction of all completed jobs attributed to this tenant.",
        "campaigns_submitted_total" => "Campaign specs accepted by POST /campaigns.",
        "campaigns_completed_total" => "Campaigns that reached a terminal state, by outcome.",
        _ => "serscale series (no curated help text).",
    }
}

/// Appends `# HELP` / `# TYPE` metadata for `name` if it has not been
/// emitted yet.
fn write_meta(out: &mut String, seen: &mut Vec<String>, name: &str, kind: &str) {
    if seen.iter().any(|s| s == name) {
        return;
    }
    seen.push(name.to_string());
    let _ = writeln!(out, "# HELP {name} {}", escape_help_text(help_text(name)));
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// A monotonic counter handle. Cloning shares the underlying cell.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value (snapshot-consistency is the registry's job;
    /// this is a point read).
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge cell: an `f64` (stored as bits) plus the global set-sequence
/// used to resolve "latest wins" across shards at snapshot time.
#[derive(Debug, Default)]
struct GaugeCell {
    seq: AtomicU64,
    bits: AtomicU64,
}

/// A last-set-wins gauge handle. Cloning shares the underlying cell.
#[derive(Debug, Clone)]
pub struct Gauge {
    cell: Arc<GaugeCell>,
    clock: Arc<AtomicU64>,
}

impl Gauge {
    /// Sets the gauge. Across shards the set with the highest global
    /// sequence number wins the merged snapshot.
    pub fn set(&self, value: f64) {
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        self.cell.bits.store(value.to_bits(), Ordering::Relaxed);
        self.cell.seq.store(stamp, Ordering::Release);
    }

    /// The current value (0.0 if never set).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.cell.bits.load(Ordering::Relaxed))
    }
}

/// A log₂-bucketed histogram handle for nonnegative values (durations in
/// seconds, latencies, sizes). Cloning shares the underlying cells.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCell>);

#[derive(Debug)]
struct HistogramCell {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    /// Sum of observed values, accumulated as f64 bits via CAS (the shard
    /// is per-thread, so the loop virtually never retries).
    sum_bits: AtomicU64,
}

impl Default for HistogramCell {
    fn default() -> Self {
        HistogramCell {
            buckets: [(); HISTOGRAM_BUCKETS].map(|()| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
        }
    }
}

/// The bucket index a value falls into.
fn bucket_index(value: f64) -> usize {
    if value.is_nan() || value <= 0.0 {
        return 0;
    }
    // Stay in f64 so +inf clamps into the top bucket instead of
    // overflowing integer arithmetic.
    let idx = value.log2().ceil() - f64::from(BUCKET_MIN_EXP);
    idx.clamp(0.0, (HISTOGRAM_BUCKETS - 1) as f64) as usize
}

/// The inclusive upper bound of bucket `i`, in the observed unit.
pub fn bucket_upper_bound(i: usize) -> f64 {
    (2.0f64).powi(BUCKET_MIN_EXP + i as i32)
}

impl Histogram {
    /// Records one observation. Negative and NaN values clamp into the
    /// lowest bucket and contribute zero to the sum.
    pub fn observe(&self, value: f64) {
        let cell = &*self.0;
        cell.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        cell.count.fetch_add(1, Ordering::Relaxed);
        let add = if value.is_finite() && value > 0.0 {
            value
        } else {
            0.0
        };
        let mut current = cell.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + add).to_bits();
            match cell.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => current = actual,
            }
        }
    }
}

/// One thread's private slice of the registry. Obtain via
/// [`Registry::shard`]; handles returned by the accessors stay valid for
/// the registry's lifetime and update lock-free.
#[derive(Debug, Default)]
pub struct Shard {
    counters: Mutex<BTreeMap<SeriesKey, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<SeriesKey, Arc<GaugeCell>>>,
    histograms: Mutex<BTreeMap<SeriesKey, Arc<HistogramCell>>>,
}

impl Shard {
    /// The counter for `name{labels}`, created on first touch.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = SeriesKey::new(name, labels);
        let mut map = self.counters.lock().expect("counter map poisoned");
        Counter(Arc::clone(map.entry(key).or_default()))
    }

    /// The histogram for `name{labels}`, created on first touch.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let key = SeriesKey::new(name, labels);
        let mut map = self.histograms.lock().expect("histogram map poisoned");
        Histogram(Arc::clone(map.entry(key).or_default()))
    }
}

/// The process-wide registry: a list of shards plus the global gauge
/// sequence clock. Cheap to clone (it is an `Arc` internally).
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

#[derive(Debug, Default)]
struct RegistryInner {
    shards: Mutex<Vec<Arc<Shard>>>,
    gauge_clock: Arc<AtomicU64>,
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers and returns a new shard. Call once per thread (or per
    /// observer) and cache the handles it hands out; creating a shard
    /// takes the registry lock, using one never does.
    pub fn shard(&self) -> Arc<Shard> {
        let shard = Arc::new(Shard::default());
        self.inner
            .shards
            .lock()
            .expect("shard list poisoned")
            .push(Arc::clone(&shard));
        shard
    }

    /// The gauge for `name{labels}` on a given shard. Gauges carry the
    /// registry's global sequence clock so concurrent sets merge
    /// last-write-wins; they are therefore created through the registry,
    /// not the shard.
    pub fn gauge(&self, shard: &Shard, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = SeriesKey::new(name, labels);
        let mut map = shard.gauges.lock().expect("gauge map poisoned");
        Gauge {
            cell: Arc::clone(map.entry(key).or_default()),
            clock: Arc::clone(&self.inner.gauge_clock),
        }
    }

    /// Merges every shard into one consistent view: counters and
    /// histograms sum across shards, gauges take the most recent set.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let shards = self.inner.shards.lock().expect("shard list poisoned");
        let mut counters: BTreeMap<SeriesKey, u64> = BTreeMap::new();
        let mut gauges: BTreeMap<SeriesKey, (u64, f64)> = BTreeMap::new();
        let mut histograms: BTreeMap<SeriesKey, HistogramSnapshot> = BTreeMap::new();
        for shard in shards.iter() {
            for (key, cell) in shard.counters.lock().expect("counter map poisoned").iter() {
                *counters.entry(key.clone()).or_insert(0) += cell.load(Ordering::Relaxed);
            }
            for (key, cell) in shard.gauges.lock().expect("gauge map poisoned").iter() {
                let seq = cell.seq.load(Ordering::Acquire);
                let value = f64::from_bits(cell.bits.load(Ordering::Relaxed));
                let entry = gauges.entry(key.clone()).or_insert((0, 0.0));
                if seq >= entry.0 {
                    *entry = (seq, value);
                }
            }
            for (key, cell) in shard
                .histograms
                .lock()
                .expect("histogram map poisoned")
                .iter()
            {
                let merged = histograms.entry(key.clone()).or_default();
                for (i, bucket) in cell.buckets.iter().enumerate() {
                    merged.buckets[i] += bucket.load(Ordering::Relaxed);
                }
                merged.count += cell.count.load(Ordering::Relaxed);
                merged.sum += f64::from_bits(cell.sum_bits.load(Ordering::Relaxed));
            }
        }
        MetricsSnapshot {
            counters,
            gauges: gauges.into_iter().map(|(k, (_, v))| (k, v)).collect(),
            histograms,
        }
    }
}

/// A merged histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (`bucket_upper_bound(i)` gives bucket `i`'s `le`).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: vec![0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0.0,
        }
    }
}

impl HistogramSnapshot {
    /// The mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// An upper bound on the `q`-quantile (the bucket boundary the
    /// quantile falls under) — log₂-coarse but monotone and merge-exact.
    pub fn quantile_upper_bound(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
    }
}

/// A merged, immutable view of every series — what the exporters render.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Counter totals.
    pub counters: BTreeMap<SeriesKey, u64>,
    /// Gauge values (last set wins).
    pub gauges: BTreeMap<SeriesKey, f64>,
    /// Merged histograms.
    pub histograms: BTreeMap<SeriesKey, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Sums every counter named `name` whose labels include `matches`
    /// (pass `&[]` for all label sets).
    pub fn counter_total(&self, name: &str, matches: &[(&str, &str)]) -> u64 {
        self.counters
            .iter()
            .filter(|(key, _)| {
                key.name == name
                    && matches
                        .iter()
                        .all(|(mk, mv)| key.labels.iter().any(|(k, v)| k == mk && v == mv))
            })
            .map(|(_, v)| *v)
            .sum()
    }

    /// The gauge value for an exact series, if set.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.gauges.get(&SeriesKey::new(name, labels)).copied()
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (sorted, so two snapshots of identical series diff cleanly). Every
    /// metric name carries `# HELP` and `# TYPE` lines, and label values
    /// are escaped per the format — both the `metrics.prom` file exporter
    /// and the live `/metrics` endpoint render through here.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut seen: Vec<String> = Vec::new();
        for (key, value) in &self.counters {
            write_meta(&mut out, &mut seen, &key.name, "counter");
            let _ = writeln!(out, "{} {value}", key.render());
        }
        for (key, value) in &self.gauges {
            write_meta(&mut out, &mut seen, &key.name, "gauge");
            let _ = writeln!(out, "{} {value}", key.render());
        }
        for (key, hist) in &self.histograms {
            write_meta(&mut out, &mut seen, &key.name, "histogram");
            // Standard cumulative exposition: a contiguous bucket prefix
            // from the smallest bound through the highest occupied bucket
            // (empty boundaries included, so scrapers can interpolate),
            // closed by the mandatory `le="+Inf"` bucket equal to _count.
            let occupied = hist.buckets.iter().rposition(|&n| n != 0);
            let mut cumulative = 0u64;
            for (i, &n) in hist
                .buckets
                .iter()
                .enumerate()
                .take(occupied.map_or(0, |last| last + 1))
            {
                cumulative += n;
                let mut labeled = key.clone();
                labeled.name = format!("{}_bucket", key.name);
                labeled
                    .labels
                    .push(("le".to_string(), format!("{:e}", bucket_upper_bound(i))));
                let _ = writeln!(out, "{} {cumulative}", labeled.render());
            }
            let mut inf = key.clone();
            inf.name = format!("{}_bucket", key.name);
            inf.labels.push(("le".to_string(), "+Inf".to_string()));
            let _ = writeln!(out, "{} {}", inf.render(), hist.count);
            let _ = writeln!(
                out,
                "{}_sum{} {}",
                key.name,
                render_label_suffix(key),
                hist.sum
            );
            let _ = writeln!(
                out,
                "{}_count{} {}",
                key.name,
                render_label_suffix(key),
                hist.count
            );
        }
        out
    }
}

/// Just the `{...}` part of a key (empty for unlabeled series).
fn render_label_suffix(key: &SeriesKey) -> String {
    let rendered = key.render();
    rendered[key.name.len()..].to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counters_sum_across_shards() {
        let registry = Registry::new();
        let shards: Vec<_> = (0..4).map(|_| registry.shard()).collect();
        thread::scope(|scope| {
            for (i, shard) in shards.iter().enumerate() {
                scope.spawn(move || {
                    let c = shard.counter("edac_events", &[("domain", "PMD")]);
                    for _ in 0..=i {
                        c.inc();
                    }
                });
            }
        });
        let snap = registry.snapshot();
        assert_eq!(snap.counter_total("edac_events", &[("domain", "PMD")]), 10);
        assert_eq!(snap.counter_total("edac_events", &[]), 10);
        assert_eq!(snap.counter_total("edac_events", &[("domain", "SoC")]), 0);
    }

    #[test]
    fn gauges_resolve_last_set_wins() {
        let registry = Registry::new();
        let a = registry.shard();
        let b = registry.shard();
        let ga = registry.gauge(&a, "upset_rate", &[]);
        let gb = registry.gauge(&b, "upset_rate", &[]);
        ga.set(1.0);
        gb.set(2.0);
        ga.set(3.5);
        assert_eq!(
            registry.snapshot().gauge_value("upset_rate", &[]),
            Some(3.5)
        );
        assert_eq!(ga.get(), 3.5);
    }

    #[test]
    fn histogram_buckets_are_log_scale_and_merge() {
        let registry = Registry::new();
        let a = registry.shard();
        let b = registry.shard();
        let ha = a.histogram("trial_wall_time", &[]);
        let hb = b.histogram("trial_wall_time", &[]);
        for v in [0.001, 0.5, 0.5, 4.0] {
            ha.observe(v);
        }
        hb.observe(1000.0);
        let snap = registry.snapshot();
        let hist = &snap.histograms[&SeriesKey::new("trial_wall_time", &[])];
        assert_eq!(hist.count, 5);
        assert!((hist.sum - 1005.001).abs() < 1e-9);
        assert!((hist.mean() - 201.0002).abs() < 1e-3);
        // Median of {0.001, 0.5, 0.5, 4.0, 1000.0} is 0.5, whose log2
        // bucket upper bound is exactly 0.5.
        assert_eq!(hist.quantile_upper_bound(0.5), 0.5);
        assert!(hist.quantile_upper_bound(1.0) >= 1000.0);
    }

    #[test]
    fn pathological_observations_stay_finite() {
        let registry = Registry::new();
        let shard = registry.shard();
        let h = shard.histogram("h", &[]);
        h.observe(f64::NAN);
        h.observe(-1.0);
        h.observe(0.0);
        h.observe(f64::INFINITY);
        let snap = registry.snapshot();
        let hist = &snap.histograms[&SeriesKey::new("h", &[])];
        assert_eq!(hist.count, 4);
        assert!(hist.sum.is_finite());
    }

    #[test]
    fn series_keys_canonicalize_label_order() {
        let a = SeriesKey::new("m", &[("b", "2"), ("a", "1")]);
        let b = SeriesKey::new("m", &[("a", "1"), ("b", "2")]);
        assert_eq!(a, b);
        assert_eq!(a.render(), "m{a=\"1\",b=\"2\"}");
        assert_eq!(SeriesKey::new("bare", &[]).render(), "bare");
    }

    #[test]
    fn prometheus_rendering_is_sorted_and_parseable_shaped() {
        let registry = Registry::new();
        let shard = registry.shard();
        shard.counter("zz_total", &[]).add(3);
        shard.counter("aa_total", &[("k", "v")]).add(1);
        registry.gauge(&shard, "gg", &[]).set(0.25);
        shard.histogram("hh", &[]).observe(1.0);
        let text = registry.snapshot().render_prometheus();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.contains(&"aa_total{k=\"v\"} 1"));
        assert!(lines.contains(&"zz_total 3"));
        assert!(lines.contains(&"gg 0.25"));
        assert!(lines.iter().any(|l| l.starts_with("hh_bucket{le=\"")));
        assert!(lines.contains(&"hh_sum 1"));
        assert!(lines.contains(&"hh_count 1"));
        // Counters render before gauges, sorted within each kind.
        let aa = lines
            .iter()
            .position(|l| l.starts_with("aa_total"))
            .unwrap();
        let zz = lines
            .iter()
            .position(|l| l.starts_with("zz_total"))
            .unwrap();
        assert!(aa < zz);
    }

    #[test]
    fn histogram_buckets_render_cumulative_with_inf_terminator() {
        let registry = Registry::new();
        let shard = registry.shard();
        let h = shard.histogram("hh", &[("k", "v")]);
        // Two occupied buckets with an empty gap between them.
        h.observe(0.4); // le = 0.5
        h.observe(0.5); // le = 0.5
        h.observe(3.0); // le = 4
        let text = registry.snapshot().render_prometheus();
        let buckets: Vec<(f64, u64)> = text
            .lines()
            .filter(|l| l.starts_with("hh_bucket{"))
            .map(|l| {
                let (series, value) = l.rsplit_once(' ').unwrap();
                let le = series
                    .split("le=\"")
                    .nth(1)
                    .unwrap()
                    .trim_end_matches("\"}");
                (le.parse::<f64>().unwrap(), value.parse::<u64>().unwrap())
            })
            .collect();
        // Contiguous prefix from the smallest bound through le=4, then +Inf.
        assert_eq!(buckets.last(), Some(&(f64::INFINITY, 3)));
        let finite = &buckets[..buckets.len() - 1];
        assert_eq!(finite.first().unwrap().0, bucket_upper_bound(0));
        assert_eq!(finite.last().unwrap(), &(4.0, 3));
        // Cumulative counts never decrease and bounds strictly increase.
        for pair in buckets.windows(2) {
            assert!(pair[0].0 < pair[1].0, "bounds not increasing: {buckets:?}");
            assert!(pair[0].1 <= pair[1].1, "counts not cumulative: {buckets:?}");
        }
        // The empty boundary between 0.5 and 4 is present with the running
        // cumulative value, so interpolating scrapers see every edge.
        let at_one = finite.iter().find(|(le, _)| *le == 1.0).unwrap();
        assert_eq!(at_one.1, 2);
        assert!(text.contains("hh_count{k=\"v\"} 3"), "{text}");
        // An empty histogram still renders the +Inf bucket.
        let empty = Registry::new();
        let shard = empty.shard();
        let _ = shard.histogram("ee", &[]);
        let text = empty.snapshot().render_prometheus();
        assert!(text.contains("ee_bucket{le=\"+Inf\"} 0"), "{text}");
        assert!(!text.contains("ee_bucket{le=\"1"), "{text}");
    }

    #[test]
    fn adversarial_label_values_escape_per_exposition_format() {
        // Raw value mixing every character the format makes special, plus
        // the realistic operating-point label that motivated the fix.
        let evil = "870mV@2.4 GHz\\path\"quoted\"\nnext";
        let key = SeriesKey::new("edac_events", &[("voltage", evil)]);
        let rendered = key.render();
        assert_eq!(
            rendered,
            "edac_events{voltage=\"870mV@2.4 GHz\\\\path\\\"quoted\\\"\\nnext\"}"
        );
        assert!(
            !rendered.contains('\n'),
            "a raw newline splits the exposition line: {rendered}"
        );
        // The same escaping reaches the full snapshot render (shared by
        // the file exporter and the /metrics endpoint).
        let registry = Registry::new();
        let shard = registry.shard();
        shard.counter("edac_events", &[("voltage", evil)]).add(2);
        registry
            .gauge(&shard, "session_sim_seconds", &[("voltage", evil)])
            .set(1.5);
        shard
            .histogram("trial_wall_time", &[("voltage", evil)])
            .observe(0.25);
        let text = registry.snapshot().render_prometheus();
        for line in text.lines() {
            assert!(
                line.starts_with('#')
                    || line
                        .rsplit_once(' ')
                        .is_some_and(|(_, v)| v.parse::<f64>().is_ok()),
                "unparseable exposition line: {line:?}"
            );
        }
        assert!(text.contains("\\\"quoted\\\"\\nnext"), "{text}");
    }

    #[test]
    fn every_series_carries_help_and_type_lines() {
        let registry = Registry::new();
        let shard = registry.shard();
        shard.counter("runs_total", &[("voltage", "v")]).inc();
        shard.counter("made_up_metric", &[]).inc();
        registry.gauge(&shard, "session_sim_seconds", &[]).set(9.0);
        shard.histogram("wave_merge_latency", &[]).observe(0.5);
        let text = registry.snapshot().render_prometheus();
        for (name, kind) in [
            ("runs_total", "counter"),
            ("made_up_metric", "counter"),
            ("session_sim_seconds", "gauge"),
            ("wave_merge_latency", "histogram"),
        ] {
            assert!(text.contains(&format!("# TYPE {name} {kind}\n")), "{text}");
            let help = format!("# HELP {name} ");
            assert!(text.contains(&help), "missing {help:?} in:\n{text}");
        }
        // Metadata precedes the series and is emitted once per name.
        let type_lines = text
            .lines()
            .filter(|l| l.starts_with("# TYPE runs_total"))
            .count();
        assert_eq!(type_lines, 1);
        let meta = text.lines().position(|l| l == "# TYPE runs_total counter");
        let series = text.lines().position(|l| l.starts_with("runs_total{"));
        assert!(meta < series, "{meta:?} vs {series:?}");
    }

    #[test]
    fn help_text_escapes_backslash_and_newline() {
        assert_eq!(escape_help_text("a\\b\nc"), "a\\\\b\\nc");
        assert_eq!(escape_label_value("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
    }

    #[test]
    fn bucket_bounds_are_monotone() {
        for i in 1..HISTOGRAM_BUCKETS {
            assert!(bucket_upper_bound(i) > bucket_upper_bound(i - 1));
        }
        assert_eq!(bucket_index(0.5), bucket_index(0.3));
        assert!(bucket_index(2.0) < bucket_index(1e6));
    }
}
