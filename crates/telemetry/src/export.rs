//! The [`TelemetrySink`]: owns the run's registry, tracer, event stream
//! and progress reporter, hands out observers, and serializes everything
//! to disk at end of run.
//!
//! A sink writes four artifacts into its output directory:
//!
//! | file          | contents                                            |
//! |---------------|-----------------------------------------------------|
//! | `events.jsonl`| one JSON object per observer callback, in order     |
//! | `spans.jsonl` | closed spans, chronological by enter time           |
//! | `metrics.prom`| Prometheus text exposition snapshot of all series   |
//! | `summary.txt` | the human summary table also printed at end of run  |
//!
//! The JSONL stream is re-parsed with the crate's own [`crate::json`]
//! parser before anything touches disk, so a malformed line fails the
//! run loudly instead of poisoning downstream tooling. The
//! [`TelemetrySink::crosscheck_campaign`] method closes the loop the
//! other way: it proves the exported `edac_events` counters agree with
//! the simulation's own [`CampaignReport`] per voltage domain.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use serscale_core::campaign::CampaignReport;
use serscale_types::CacheLevel;

use serscale_core::journal::SyncProbe;

use crate::convergence::{ConvergenceSnapshot, ConvergenceTracker};
use crate::json;
use crate::metrics::{Registry, Shard};
use crate::observer::TelemetryObserver;
use crate::progress::{Progress, ProgressMode};
use crate::serve::{CampaignStatus, MonitorServer, MonitorState};
use crate::span::{SpanId, SpanLevel, Tracer};

/// Behavioral switches for a sink.
#[derive(Debug, Clone, Copy, Default)]
pub struct TelemetryOptions {
    /// Print a live progress line to stderr. Must stay `false` in CI and
    /// golden runs; the `repro` binary only turns it on for interactive
    /// terminals (or plain mode when explicitly useful).
    pub progress: bool,
    /// How an enabled progress reporter writes: in-place rewrites for
    /// TTYs, plain periodic lines for logs. Ignored when `progress` is
    /// off.
    pub progress_mode: ProgressMode,
    /// Record one span per benchmark trial (sim-clock timestamps). Off by
    /// default: trials are numerous and wave/session spans usually carry
    /// enough structure.
    pub trial_spans: bool,
}

/// The per-run telemetry hub. Create one, attach observers to engine
/// runs, then [`write`](TelemetrySink::write) the artifacts.
pub struct TelemetrySink {
    dir: Option<PathBuf>,
    registry: Registry,
    /// The sink's own shard, for gauges/counters set outside any
    /// observer (e.g. verify verdict headlines).
    shard: Arc<Shard>,
    tracer: Arc<Tracer>,
    events: Arc<Mutex<String>>,
    progress: Arc<Mutex<Progress>>,
    campaign_span: SpanId,
    options: TelemetryOptions,
    /// Slow-changing campaign facts surfaced by `/campaign`.
    status: Arc<Mutex<CampaignStatus>>,
    /// Journal fsync probe surfaced by `/healthz`, when journaled.
    probe: Arc<Mutex<Option<SyncProbe>>>,
    /// The statistical convergence plane, fed by this sink's observers
    /// and surfaced by `/convergence`.
    convergence: Arc<Mutex<ConvergenceTracker>>,
}

impl TelemetrySink {
    /// A sink writing artifacts under `dir` (created if absent).
    pub fn new(dir: &Path, options: TelemetryOptions) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let mut sink = Self::in_memory(options);
        sink.dir = Some(dir.to_path_buf());
        Ok(sink)
    }

    /// A sink that never touches disk ([`write`](Self::write) is then an
    /// error). Used by tests and by callers that only want the summary.
    pub fn in_memory(options: TelemetryOptions) -> Self {
        let registry = Registry::new();
        let shard = registry.shard();
        let tracer = Arc::new(Tracer::new());
        let campaign_span = tracer.enter(SpanLevel::Campaign, "run", SpanId::ROOT, &[]);
        TelemetrySink {
            dir: None,
            registry,
            shard,
            tracer,
            events: Arc::new(Mutex::new(String::new())),
            progress: Arc::new(Mutex::new(Progress::with_mode(
                options.progress,
                options.progress_mode,
            ))),
            campaign_span,
            options,
            status: Arc::new(Mutex::new(CampaignStatus::default())),
            probe: Arc::new(Mutex::new(None)),
            convergence: Arc::new(Mutex::new(ConvergenceTracker::new())),
        }
    }

    /// Starts the live monitoring server on `addr` (use `127.0.0.1:0`
    /// for an ephemeral port; read the real one from
    /// [`MonitorServer::addr`]). The server only gets read handles into
    /// the sink, so attaching it cannot perturb a run.
    pub fn serve(&self, addr: &str) -> std::io::Result<MonitorServer> {
        MonitorServer::bind(addr, self.monitor_state())
    }

    /// [`serve`](Self::serve) with a campaign control plane attached:
    /// the same monitoring endpoints plus the read-write `/campaigns`
    /// routes (submit, list, status, report, event stream, cancel) and
    /// `POST /shutdown`. This sink carries the *service-level* telemetry
    /// (submission counters, scrape metrics); each job gets its own
    /// private sink inside the control plane.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn serve_control(
        self: &Arc<Self>,
        addr: &str,
        control: Arc<crate::control::ControlPlane>,
    ) -> std::io::Result<MonitorServer> {
        control.attach_metrics(Arc::clone(self));
        MonitorServer::bind(addr, self.monitor_state().with_control(control))
    }

    fn monitor_state(&self) -> MonitorState {
        MonitorState::new(
            self.registry.clone(),
            Arc::clone(&self.tracer),
            Arc::clone(&self.progress),
            Arc::clone(&self.status),
            Arc::clone(&self.probe),
            Arc::clone(&self.convergence),
        )
    }

    /// Publishes the journal's fsync probe so `/healthz` can report sync
    /// lag. Call after attaching the same probe to the `JournalWriter`.
    pub fn attach_sync_probe(&self, probe: SyncProbe) {
        *self.probe.lock().expect("probe cell poisoned") = Some(probe);
    }

    /// Updates the `/campaign` status cell in place.
    pub fn set_campaign_status(&self, update: impl FnOnce(&mut CampaignStatus)) {
        update(&mut self.status.lock().expect("status cell poisoned"));
    }

    /// A fresh observer feeding this sink. Each observer owns a registry
    /// shard, so one sink can serve several engine runs (or threads).
    pub fn observer(&self) -> TelemetryObserver {
        TelemetryObserver::new(
            self.registry.clone(),
            Arc::clone(&self.tracer),
            Arc::clone(&self.events),
            Arc::clone(&self.progress),
            self.campaign_span,
            self.options.trial_spans,
            Arc::clone(&self.convergence),
        )
    }

    /// The current convergence snapshot — every operating point's
    /// per-(domain, array) counts, rates and Garwood CIs.
    pub fn convergence_snapshot(&self) -> ConvergenceSnapshot {
        self.convergence
            .lock()
            .expect("convergence tracker poisoned")
            .snapshot()
    }

    /// [`convergence_snapshot`](Self::convergence_snapshot) rendered as
    /// the byte-stable `/convergence` JSON document.
    pub fn convergence_json(&self) -> String {
        self.convergence_snapshot().to_json()
    }

    /// The sink's metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The sink's tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The event stream accumulated so far.
    pub fn events_jsonl(&self) -> String {
        self.events.lock().expect("event buffer poisoned").clone()
    }

    /// Sets a gauge on the sink's own shard — the hook `repro verify`
    /// uses to export verdict headline numbers.
    pub fn set_gauge(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.registry.gauge(&self.shard, name, labels).set(value);
    }

    /// Bumps a counter on the sink's own shard.
    pub fn add_counter(&self, name: &str, labels: &[(&str, &str)], by: u64) {
        self.shard.counter(name, labels).add(by);
    }

    /// Records one observation into a histogram on the sink's own shard.
    pub fn observe_histogram(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.shard.histogram(name, labels).observe(value);
    }

    /// Declares the run's total simulated duration for the progress ETA.
    pub fn set_progress_target_sim_secs(&self, secs: f64) {
        self.progress
            .lock()
            .expect("progress poisoned")
            .set_target_sim_secs(secs);
    }

    /// Proves the exported counters agree with the simulation's own
    /// report: for every voltage label and domain, the `edac_events`
    /// total must equal the sum of the report's per-level EDAC counts
    /// mapped onto domains (L3 is SoC-powered, everything else PMD).
    pub fn crosscheck_campaign(&self, report: &CampaignReport) -> Result<(), String> {
        let snapshot = self.registry.snapshot();
        let mut expected: BTreeMap<(String, &'static str), u64> = BTreeMap::new();
        for session in &report.sessions {
            let label = session.operating_point.label();
            for (&(level, _severity), &count) in &session.edac_per_level {
                let domain = match level {
                    CacheLevel::L3 => "SoC",
                    CacheLevel::Tlb | CacheLevel::L1 | CacheLevel::L2 => "PMD",
                };
                *expected.entry((label.clone(), domain)).or_default() += count;
            }
        }
        for ((label, domain), want) in &expected {
            let got =
                snapshot.counter_total("edac_events", &[("voltage", label), ("domain", domain)]);
            if got != *want {
                return Err(format!(
                    "edac_events{{voltage={label},domain={domain}}} = {got}, report says {want}"
                ));
            }
        }
        let report_total: u64 = report.sessions.iter().map(|s| s.memory_upsets).sum();
        let counter_total = snapshot.counter_total("edac_events", &[]);
        if counter_total != report_total {
            return Err(format!(
                "edac_events total {counter_total} != report total {report_total}"
            ));
        }
        // And the convergence plane must have seen the same stream: its
        // per-cell event counts and trial tallies sum to the report's.
        let convergence = self.convergence_snapshot();
        let tracked_events: u64 = convergence
            .points
            .iter()
            .flat_map(|p| &p.cells)
            .map(|c| c.events)
            .sum();
        if tracked_events != report_total {
            return Err(format!(
                "convergence plane tracked {tracked_events} events, report says {report_total}"
            ));
        }
        let tracked_trials: u64 = convergence.points.iter().map(|p| p.trials).sum();
        let report_runs: u64 = report.sessions.iter().map(|s| s.runs).sum();
        if tracked_trials != report_runs {
            return Err(format!(
                "convergence plane tracked {tracked_trials} trials, report says {report_runs}"
            ));
        }
        Ok(())
    }

    /// The end-of-run summary table.
    pub fn summary(&self) -> String {
        let snapshot = self.registry.snapshot();
        let wall_secs = self.tracer.now_ns() as f64 / 1e9;
        let events = snapshot.counter_total("telemetry_events_total", &[]);
        let trials = snapshot.counter_total("runs_total", &[]);
        let pmd = snapshot.counter_total("edac_events", &[("domain", "PMD")]);
        let soc = snapshot.counter_total("edac_events", &[("domain", "SoC")]);
        // `+ 0.0` normalizes the empty sum's IEEE identity (-0.0) so a
        // run with no recoveries prints "0.0", not "-0.0".
        let recovery_lost: f64 = snapshot
            .histograms
            .iter()
            .filter(|(key, _)| key.name == "recovery_time_lost")
            .map(|(_, h)| h.sum)
            .sum::<f64>()
            + 0.0;
        let planned = snapshot.counter_total("wave_trials_planned_total", &[]);
        let absorbed = snapshot.counter_total("wave_trials_absorbed_total", &[]);
        let mut out = String::from("== telemetry summary ==\n");
        let rate = if wall_secs > 0.0 {
            events as f64 / wall_secs
        } else {
            0.0
        };
        out.push_str(&format!(
            "events captured     {events} ({rate:.0} events/sec over {wall_secs:.2}s wall)\n"
        ));
        out.push_str(&format!("trials completed    {trials}\n"));
        out.push_str(&format!("upsets (PMD rail)   {pmd}\n"));
        out.push_str(&format!("upsets (SoC rail)   {soc}\n"));
        out.push_str(&format!("recovery time lost  {recovery_lost:.1} sim-s\n"));
        if planned > 0 {
            out.push_str(&format!(
                "worker utilization  {:.1}% (absorbed {absorbed} of {planned} speculated trials)\n",
                100.0 * absorbed as f64 / planned as f64
            ));
        }
        for (key, value) in &snapshot.gauges {
            if key.name.starts_with("verify_") {
                out.push_str(&format!("{:<19} {value}\n", key.render()));
            }
        }
        out
    }

    /// Writes `events.jsonl`, `spans.jsonl`, `metrics.prom` and
    /// `summary.txt` into the sink's directory and returns their paths.
    /// The event and span streams are re-parsed first; a malformed line
    /// is an error and nothing is written.
    pub fn write(&self) -> std::io::Result<Vec<PathBuf>> {
        let dir = self.dir.clone().ok_or_else(|| {
            std::io::Error::other("telemetry sink has no output directory (in-memory sink)")
        })?;
        self.tracer.exit(self.campaign_span);
        self.progress.lock().expect("progress poisoned").finish();

        let events = self.events_jsonl();
        json::parse_lines(&events)
            .map_err(|e| std::io::Error::other(format!("events.jsonl self-check failed: {e}")))?;
        let spans = self.tracer.to_jsonl();
        json::parse_lines(&spans)
            .map_err(|e| std::io::Error::other(format!("spans.jsonl self-check failed: {e}")))?;

        let artifacts = [
            ("events.jsonl", events),
            ("spans.jsonl", spans),
            ("metrics.prom", self.registry.snapshot().render_prometheus()),
            ("summary.txt", self.summary()),
        ];
        let mut paths = Vec::new();
        for (name, contents) in artifacts {
            let path = dir.join(name);
            std::fs::write(&path, contents)?;
            paths.push(path);
        }
        Ok(paths)
    }

    /// Writes an extra artifact (e.g. the Logbook trace) next to the
    /// standard four.
    pub fn write_extra(&self, name: &str, contents: &str) -> std::io::Result<PathBuf> {
        let dir = self.dir.clone().ok_or_else(|| {
            std::io::Error::other("telemetry sink has no output directory (in-memory sink)")
        })?;
        let path = dir.join(name);
        std::fs::write(&path, contents)?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serscale_core::campaign::{Campaign, CampaignConfig};

    fn small_campaign() -> Campaign {
        Campaign::new(CampaignConfig::paper_scaled(0.005))
    }

    #[test]
    fn crosscheck_agrees_with_the_engine_report() {
        let sink = TelemetrySink::in_memory(TelemetryOptions::default());
        let mut observer = sink.observer();
        let campaign = small_campaign();
        let report = campaign.run_observed(2, &mut observer);
        sink.crosscheck_campaign(&report).expect("counters agree");
        assert!(report.sessions.iter().any(|s| s.memory_upsets > 0));
    }

    #[test]
    fn crosscheck_catches_a_missing_observer() {
        let sink = TelemetrySink::in_memory(TelemetryOptions::default());
        let campaign = small_campaign();
        // Run WITHOUT the observer: counters stay zero, report does not.
        let report = campaign.run();
        let err = sink
            .crosscheck_campaign(&report)
            .expect_err("zero counters cannot match a live report");
        assert!(err.contains("edac_events"), "{err}");
    }

    #[test]
    fn write_produces_parseable_artifacts() {
        let dir = std::env::temp_dir().join(format!(
            "serscale-telemetry-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let sink = TelemetrySink::new(&dir, TelemetryOptions::default()).expect("sink");
        let mut observer = sink.observer();
        let campaign = small_campaign();
        let report = campaign.run_observed(1, &mut observer);
        let paths = sink.write().expect("write");
        assert_eq!(paths.len(), 4);
        let events = std::fs::read_to_string(dir.join("events.jsonl")).expect("events");
        let docs = json::parse_lines(&events).expect("events parse");
        let runs: usize = docs
            .iter()
            .filter(|d| d.get("event").and_then(json::JsonValue::as_str) == Some("run"))
            .count();
        let total_runs: u64 = report.sessions.iter().map(|s| s.runs).sum();
        assert_eq!(runs as u64, total_runs);
        let prom = std::fs::read_to_string(dir.join("metrics.prom")).expect("prom");
        assert!(prom.contains("edac_events{"), "{prom}");
        let summary = std::fs::read_to_string(dir.join("summary.txt")).expect("summary");
        assert!(summary.contains("worker utilization"), "{summary}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_gauges_show_in_the_summary() {
        let sink = TelemetrySink::in_memory(TelemetryOptions::default());
        sink.set_gauge("verify_oracle_pass_ratio", &[], 0.96);
        let summary = sink.summary();
        assert!(summary.contains("verify_oracle_pass_ratio"), "{summary}");
    }

    #[test]
    fn in_memory_sink_refuses_to_write() {
        let sink = TelemetrySink::in_memory(TelemetryOptions::default());
        assert!(sink.write().is_err());
    }
}
