//! The [`TelemetryObserver`]: a [`SessionObserver`] that turns the
//! engine's callback stream into metrics, spans, JSONL events and live
//! progress — without touching the simulation.
//!
//! ## The observe-only invariant
//!
//! Everything here is write-only from the engine's point of view: the
//! observer updates its own shard, tracer and event buffer and returns
//! nothing. The `tests/determinism.rs` suite proves campaign reports and
//! [`Logbook`](serscale_core::trace::Logbook) traces are bit-identical
//! with this observer attached or absent, at any `--jobs` count.
//!
//! ## Hot-path budget
//!
//! Callbacks fire once per trial/upset, so series handles are resolved
//! through the registry **once per session** and cached in small linear
//! tables (≤8 entries each); the per-event cost is an atomic increment,
//! one formatted JSONL line and an uncontended mutex push. The
//! `campaign_throughput` bench pins the total overhead at ≤5%.

use std::sync::{Arc, Mutex};

use serscale_core::classify::{FailureClass, RunVerdict};
use serscale_core::session::StopReason;
use serscale_core::trace::{SessionObserver, WaveStats};
use serscale_soc::edac::{EdacRecord, EdacSeverity};
use serscale_soc::platform::OperatingPoint;
use serscale_types::{ArrayKind, CacheLevel, SimDuration, SimInstant, VoltageDomain};
use serscale_workload::Benchmark;

use crate::metrics::{Counter, Gauge, Histogram, Registry, Shard};
use crate::progress::Progress;
use crate::span::{SpanId, SpanLevel, Tracer};

/// Cumulative pool accounting for one worker slot (index = `worker`
/// label), carried across waves and sessions by the observer.
struct WorkerSlot {
    busy_nanos: u64,
    idle_nanos: u64,
    busy_gauge: Gauge,
    idle_gauge: Gauge,
    shards: Counter,
}

/// Cached gauge handles for one convergence cell, resolved once when
/// its operating point first appears (the `rel` series only once the
/// half-width turns finite, so an empty cell never exports a bogus 0).
struct CellGauges {
    /// `convergence_events{…,class}` for masked / due / sdc, in order.
    events: [Gauge; 3],
    rate: Gauge,
    lower: Gauge,
    upper: Gauge,
    rel: Option<Gauge>,
}

/// Per-session state: identity, rolling counts, and the cached series
/// handles every callback bumps without re-resolving labels.
struct SessionState {
    point: OperatingPoint,
    /// `"920mV@2.4 GHz"` — the label every series of this session carries.
    voltage: String,
    /// The same label pre-escaped as a JSON string literal.
    voltage_json: String,
    span: SpanId,
    last_run_start: Option<SimInstant>,
    upsets: u64,
    runs: u64,
    recovery_lost: SimDuration,
    trial_hist: Histogram,
    /// `runs_total{voltage,benchmark}` + the benchmark's JSON name,
    /// filled on first encounter (≤6 entries).
    run_counters: Vec<(Benchmark, Counter, String)>,
    /// `run_failures_total{voltage,class}` (≤3 entries).
    failure_counters: Vec<(FailureClass, Counter)>,
    /// `edac_events{voltage,domain,domain_mv,severity,level}` keyed by
    /// what determines the labels (≤8 entries).
    edac_counters: Vec<((CacheLevel, EdacSeverity), Counter)>,
    /// Array display names pre-escaped for the event stream (≤8 entries).
    array_json: Vec<(ArrayKind, String)>,
    recoveries: Counter,
    recovery_hist: Histogram,
    wave_latency: Histogram,
    wave_critical_path: Histogram,
    waves: Counter,
    wave_planned: Counter,
    wave_absorbed: Counter,
    trial_retries: Counter,
    quarantined_trials: Counter,
}

impl SessionState {
    fn new(shard: &Shard, point: OperatingPoint, span: SpanId) -> Self {
        let voltage = point.label();
        let voltage_json = crate::json::escape(&voltage);
        SessionState {
            point,
            span,
            last_run_start: None,
            upsets: 0,
            runs: 0,
            recovery_lost: SimDuration::ZERO,
            trial_hist: shard.histogram("trial_wall_time", &[("voltage", &voltage)]),
            run_counters: Vec::new(),
            failure_counters: Vec::new(),
            edac_counters: Vec::new(),
            array_json: Vec::new(),
            recoveries: shard.counter("recoveries_total", &[("voltage", &voltage)]),
            recovery_hist: shard.histogram("recovery_time_lost", &[("voltage", &voltage)]),
            wave_latency: shard.histogram("wave_merge_latency", &[("voltage", &voltage)]),
            wave_critical_path: shard.histogram("wave_critical_path", &[("voltage", &voltage)]),
            waves: shard.counter("waves_total", &[("voltage", &voltage)]),
            wave_planned: shard.counter("wave_trials_planned_total", &[("voltage", &voltage)]),
            wave_absorbed: shard.counter("wave_trials_absorbed_total", &[("voltage", &voltage)]),
            trial_retries: shard.counter("trial_retries", &[("voltage", &voltage)]),
            quarantined_trials: shard.counter("quarantined_trials", &[("voltage", &voltage)]),
            voltage,
            voltage_json,
        }
    }

    fn run_counter(
        &mut self,
        shard: &Shard,
        benchmark: Benchmark,
    ) -> &(Benchmark, Counter, String) {
        let pos = match self
            .run_counters
            .iter()
            .position(|(b, _, _)| *b == benchmark)
        {
            Some(pos) => pos,
            None => {
                let name = benchmark.to_string();
                let counter = shard.counter(
                    "runs_total",
                    &[("voltage", &self.voltage), ("benchmark", &name)],
                );
                self.run_counters
                    .push((benchmark, counter, crate::json::escape(&name)));
                self.run_counters.len() - 1
            }
        };
        &self.run_counters[pos]
    }

    fn failure_counter(&mut self, shard: &Shard, class: FailureClass) -> &Counter {
        let pos = match self.failure_counters.iter().position(|(c, _)| *c == class) {
            Some(pos) => pos,
            None => {
                let counter = shard.counter(
                    "run_failures_total",
                    &[("voltage", &self.voltage), ("class", class_name(class))],
                );
                self.failure_counters.push((class, counter));
                self.failure_counters.len() - 1
            }
        };
        &self.failure_counters[pos].1
    }

    fn edac_counter(&mut self, shard: &Shard, record: &EdacRecord) -> &Counter {
        let key = (record.cache_level(), record.severity);
        let pos = match self.edac_counters.iter().position(|(k, _)| *k == key) {
            Some(pos) => pos,
            None => {
                let domain = record.array.voltage_domain();
                let rail = match domain {
                    VoltageDomain::Soc => self.point.soc,
                    VoltageDomain::Pmd | VoltageDomain::Standby => self.point.pmd,
                };
                let counter = shard.counter(
                    "edac_events",
                    &[
                        ("voltage", &self.voltage),
                        ("domain", &domain.to_string()),
                        ("domain_mv", &rail.get().to_string()),
                        ("severity", &record.severity.to_string()),
                        ("level", &format!("{:?}", key.0)),
                    ],
                );
                self.edac_counters.push((key, counter));
                self.edac_counters.len() - 1
            }
        };
        &self.edac_counters[pos].1
    }

    fn array_json(&mut self, array: ArrayKind) -> &str {
        let pos = match self.array_json.iter().position(|(a, _)| *a == array) {
            Some(pos) => pos,
            None => {
                self.array_json
                    .push((array, crate::json::escape(&array.to_string())));
                self.array_json.len() - 1
            }
        };
        &self.array_json[pos].1
    }
}

fn class_name(class: FailureClass) -> &'static str {
    match class {
        FailureClass::Sdc => "sdc",
        FailureClass::AppCrash => "app_crash",
        FailureClass::SysCrash => "sys_crash",
    }
}

/// Translates [`SessionObserver`] callbacks into telemetry. Build one via
/// [`TelemetrySink::observer`](crate::export::TelemetrySink::observer);
/// each observer gets its own registry shard, so several may run on
/// different threads against one sink.
pub struct TelemetryObserver {
    registry: Registry,
    shard: Arc<Shard>,
    tracer: Arc<Tracer>,
    events: Arc<Mutex<String>>,
    /// Event lines buffered locally and flushed to the shared stream at
    /// session end, keeping the callback path lock-free.
    pending: String,
    events_counter: Counter,
    progress: Arc<Mutex<Progress>>,
    /// Parent for session spans (the sink's campaign span, if any).
    parent: SpanId,
    trial_spans: bool,
    /// The sink's shared convergence tracker (statistical plane).
    convergence: Arc<Mutex<crate::convergence::ConvergenceTracker>>,
    /// Cached convergence gauge handles, indexed `[point][cell]` in
    /// snapshot order (points append-only, cells fixed per point), so a
    /// session end re-renders the plane without re-resolving labels.
    convergence_gauges: Vec<Vec<CellGauges>>,
    /// `convergence_cells_total` / `convergence_resolved_cells`.
    convergence_headline: Option<(Gauge, Gauge)>,
    state: Option<SessionState>,
    /// Sim-seconds completed in *earlier* sessions (for progress/ETA).
    completed_sim_secs: f64,
    /// Per-worker busy/idle/shard accounting, cumulative across waves
    /// (indexed by worker slot; grows to the pool's `--jobs` width).
    workers: Vec<WorkerSlot>,
}

impl TelemetryObserver {
    pub(crate) fn new(
        registry: Registry,
        tracer: Arc<Tracer>,
        events: Arc<Mutex<String>>,
        progress: Arc<Mutex<Progress>>,
        parent: SpanId,
        trial_spans: bool,
        convergence: Arc<Mutex<crate::convergence::ConvergenceTracker>>,
    ) -> Self {
        let shard = registry.shard();
        let events_counter = shard.counter("telemetry_events_total", &[]);
        TelemetryObserver {
            registry,
            shard,
            tracer,
            events,
            pending: String::new(),
            events_counter,
            progress,
            parent,
            trial_spans,
            convergence,
            convergence_gauges: Vec::new(),
            convergence_headline: None,
            state: None,
            completed_sim_secs: 0.0,
            workers: Vec::new(),
        }
    }

    /// Folds one wave's [`PoolProfile`](serscale_core::parallel::PoolProfile)
    /// into the cumulative per-worker series. Host-clock data: the values
    /// vary run to run and with `--jobs`, unlike the simulation series.
    fn account_pool(&mut self, pool: &serscale_core::parallel::PoolProfile) {
        for (index, report) in pool.workers.iter().enumerate() {
            if self.workers.len() <= index {
                let label = self.workers.len().to_string();
                let labels = [("worker", label.as_str())];
                self.workers.push(WorkerSlot {
                    busy_nanos: 0,
                    idle_nanos: 0,
                    busy_gauge: self
                        .registry
                        .gauge(&self.shard, "worker_busy_seconds", &labels),
                    idle_gauge: self
                        .registry
                        .gauge(&self.shard, "worker_idle_seconds", &labels),
                    shards: self.shard.counter("worker_shards_total", &labels),
                });
            }
            let slot = &mut self.workers[index];
            slot.busy_nanos += report.busy_nanos;
            slot.idle_nanos += pool.wall_nanos.saturating_sub(report.busy_nanos);
            slot.busy_gauge.set(slot.busy_nanos as f64 / 1e9);
            slot.idle_gauge.set(slot.idle_nanos as f64 / 1e9);
            slot.shards.add(report.shards);
        }
    }

    fn push_event(&mut self, line: &str) {
        self.pending.push_str(line);
        self.pending.push('\n');
        self.events_counter.inc();
    }

    /// Moves buffered event lines into the shared stream (one lock per
    /// session, not per event).
    fn flush_events(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        self.events
            .lock()
            .expect("event buffer poisoned")
            .push_str(&self.pending);
        self.pending.clear();
    }

    /// Settles the previous trial's simulated wall time: consecutive run
    /// starts are exactly one trial apart on the merged session clock.
    fn settle_trial(&mut self, upto: SimInstant) {
        let Some(state) = &mut self.state else { return };
        if let Some(last) = state.last_run_start.take() {
            state.trial_hist.observe(upto.elapsed_since(last).as_secs());
            if self.trial_spans {
                // Trial spans run on the *simulated* clock (attr
                // `clock=sim`): sim seconds map to stream nanoseconds.
                self.tracer.record_complete(
                    SpanLevel::Trial,
                    &format!("trial@{last}"),
                    state.span,
                    (last.as_secs() * 1e9) as u64,
                    (upto.as_secs() * 1e9) as u64,
                    &[("clock", "sim")],
                );
            }
        }
    }

    /// Closes the convergence tracker's session at `at`, re-renders its
    /// Prometheus gauges for every operating point seen so far, and
    /// hands the progress reporter the headline (resolved/total cells,
    /// the widest-CI cell and its projected time-to-resolution).
    ///
    /// All values derive from simulation counts and the deterministic
    /// session clock, so the gauges are identical at any `--jobs`.
    fn publish_convergence(&mut self, at: SimInstant) {
        let snapshot = {
            let mut tracker = self
                .convergence
                .lock()
                .expect("convergence tracker poisoned");
            tracker.session_end(at);
            tracker.snapshot()
        };
        for (index, point) in snapshot.points.iter().enumerate() {
            if self.convergence_gauges.len() <= index {
                let voltage = point.voltage.as_str();
                let handles = point
                    .cells
                    .iter()
                    .map(|cell| {
                        let domain = cell.domain.to_string();
                        let array = cell.array.to_string();
                        let base = [
                            ("voltage", voltage),
                            ("domain", domain.as_str()),
                            ("array", array.as_str()),
                        ];
                        CellGauges {
                            events: ["masked", "due", "sdc"].map(|class| {
                                let labels = [base[0], base[1], base[2], ("class", class)];
                                self.registry
                                    .gauge(&self.shard, "convergence_events", &labels)
                            }),
                            rate: self.registry.gauge(
                                &self.shard,
                                "convergence_rate_per_hour",
                                &base,
                            ),
                            lower: self.registry.gauge(
                                &self.shard,
                                "convergence_ci_lower_per_hour",
                                &base,
                            ),
                            upper: self.registry.gauge(
                                &self.shard,
                                "convergence_ci_upper_per_hour",
                                &base,
                            ),
                            rel: None,
                        }
                    })
                    .collect();
                self.convergence_gauges.push(handles);
            }
            let handles = &mut self.convergence_gauges[index];
            for (cell, cached) in point.cells.iter().zip(handles.iter_mut()) {
                for (slot, count) in [cell.masked, cell.due, cell.sdc].into_iter().enumerate() {
                    cached.events[slot].set(count as f64);
                }
                cached.rate.set(cell.rate_per_hour);
                cached.lower.set(cell.ci_lower_per_hour);
                cached.upper.set(cell.ci_upper_per_hour);
                if cell.rel_halfwidth.is_finite() {
                    if cached.rel.is_none() {
                        let domain = cell.domain.to_string();
                        let array = cell.array.to_string();
                        cached.rel = Some(self.registry.gauge(
                            &self.shard,
                            "convergence_rel_halfwidth",
                            &[
                                ("voltage", point.voltage.as_str()),
                                ("domain", domain.as_str()),
                                ("array", array.as_str()),
                            ],
                        ));
                    }
                    cached
                        .rel
                        .as_ref()
                        .expect("just created")
                        .set(cell.rel_halfwidth);
                }
            }
        }
        if self.convergence_headline.is_none() {
            self.convergence_headline = Some((
                self.registry.gauge(&self.shard, "convergence_cells_total", &[]),
                self.registry
                    .gauge(&self.shard, "convergence_resolved_cells", &[]),
            ));
        }
        let (cells_total, cells_resolved) =
            self.convergence_headline.as_ref().expect("just created");
        cells_total.set(snapshot.cells_total() as f64);
        cells_resolved.set(snapshot.cells_resolved() as f64);
        let widest = snapshot.widest().map(|(point, cell)| {
            (
                format!("{} {}", point.voltage, cell.label()),
                cell.rel_halfwidth,
                cell.projected_seconds,
            )
        });
        self.progress
            .lock()
            .expect("progress poisoned")
            .set_convergence(
                snapshot.cells_resolved() as u64,
                snapshot.cells_total() as u64,
                widest,
            );
    }
}

impl Drop for TelemetryObserver {
    /// Flushes any event lines a truncated session left buffered, so the
    /// shared stream never silently loses the tail of an aborted run.
    fn drop(&mut self) {
        self.flush_events();
    }
}

impl SessionObserver for TelemetryObserver {
    fn on_session_start(&mut self, at: SimInstant, point: OperatingPoint) {
        let voltage = point.label();
        let pmd = point.pmd.get().to_string();
        let soc = point.soc.get().to_string();
        let freq = point.frequency.get().to_string();
        let span = self.tracer.enter(
            SpanLevel::Session,
            &format!("session {voltage}"),
            self.parent,
            &[
                ("pmd_mv", pmd.as_str()),
                ("soc_mv", soc.as_str()),
                ("freq_mhz", freq.as_str()),
            ],
        );
        self.shard
            .counter("sessions_total", &[("voltage", &voltage)])
            .inc();
        let state = SessionState::new(&self.shard, point, span);
        self.push_event(&format!(
            "{{\"event\":\"session_start\",\"t_s\":{},\"voltage\":{},\"pmd_mv\":{pmd},\
             \"soc_mv\":{soc},\"freq_mhz\":{freq}}}",
            crate::json::number(at.as_secs()),
            state.voltage_json,
        ));
        self.progress
            .lock()
            .expect("progress poisoned")
            .session_started(&state.voltage);
        self.convergence
            .lock()
            .expect("convergence tracker poisoned")
            .session_start(point);
        self.state = Some(state);
    }

    fn on_run(&mut self, start: SimInstant, benchmark: Benchmark, verdict: RunVerdict) {
        self.settle_trial(start);
        self.convergence
            .lock()
            .expect("convergence tracker poisoned")
            .run(verdict);
        let Some(state) = &mut self.state else { return };
        state.last_run_start = Some(start);
        state.runs += 1;
        let (_, counter, bench_json) = state.run_counter(&self.shard, benchmark);
        counter.inc();
        let bench_json = bench_json.clone();
        if let Some(class) = verdict.failure_class() {
            state.failure_counter(&self.shard, class).inc();
        }
        let (kind, notified) = match verdict {
            RunVerdict::Correct => ("ok", false),
            RunVerdict::Sdc {
                with_hw_notification,
            } => ("sdc", with_hw_notification),
            RunVerdict::AppCrash => ("app_crash", false),
            RunVerdict::SysCrash => ("sys_crash", false),
        };
        let line = format!(
            "{{\"event\":\"run\",\"t_s\":{},\"voltage\":{},\"benchmark\":{bench_json},\
             \"verdict\":\"{kind}\",\"ce_notified\":{notified}}}",
            crate::json::number(start.as_secs()),
            self.state.as_ref().expect("state set above").voltage_json,
        );
        self.push_event(&line);
        let upsets = self.state.as_ref().expect("state set above").upsets;
        self.progress
            .lock()
            .expect("progress poisoned")
            .trial_done(self.completed_sim_secs + start.as_secs(), upsets);
    }

    fn on_edac(&mut self, record: EdacRecord) {
        self.convergence
            .lock()
            .expect("convergence tracker poisoned")
            .edac(record.array, record.severity);
        let Some(state) = &mut self.state else { return };
        state.upsets += 1;
        state.edac_counter(&self.shard, &record).inc();
        let domain = record.array.voltage_domain();
        let severity = record.severity;
        let array_json = state.array_json(record.array).to_string();
        let line = format!(
            "{{\"event\":\"edac\",\"t_s\":{},\"voltage\":{},\"array\":{array_json},\
             \"domain\":\"{domain}\",\"severity\":\"{severity}\"}}",
            crate::json::number(record.time.as_secs()),
            state.voltage_json,
        );
        self.push_event(&line);
    }

    fn on_recovery(&mut self, start: SimInstant, duration: SimDuration) {
        let Some(state) = &mut self.state else { return };
        state.recovery_lost += duration;
        state.recoveries.inc();
        state.recovery_hist.observe(duration.as_secs());
        let line = format!(
            "{{\"event\":\"recovery\",\"t_s\":{},\"voltage\":{},\"duration_s\":{}}}",
            crate::json::number(start.as_secs()),
            state.voltage_json,
            crate::json::number(duration.as_secs()),
        );
        self.push_event(&line);
    }

    fn on_session_end(&mut self, at: SimInstant, reason: StopReason) {
        self.settle_trial(at);
        let Some(state) = self.state.take() else {
            return;
        };
        let voltage = &state.voltage;
        let minutes = at.as_secs() / 60.0;
        let upset_rate = if minutes > 0.0 {
            state.upsets as f64 / minutes
        } else {
            0.0
        };
        self.registry
            .gauge(&self.shard, "session_sim_seconds", &[("voltage", voltage)])
            .set(at.as_secs());
        self.registry
            .gauge(
                &self.shard,
                "session_upsets_per_minute",
                &[("voltage", voltage)],
            )
            .set(upset_rate);
        self.registry
            .gauge(
                &self.shard,
                "session_recovery_lost_seconds",
                &[("voltage", voltage)],
            )
            .set(state.recovery_lost.as_secs());
        let reason_text = format!("{reason:?}");
        self.tracer.annotate(
            state.span,
            &[
                ("stop", reason_text.as_str()),
                ("sim_seconds", &format!("{:.3}", at.as_secs())),
            ],
        );
        self.tracer.exit(state.span);
        self.push_event(&format!(
            "{{\"event\":\"session_end\",\"t_s\":{},\"voltage\":{},\"reason\":\"{reason_text}\",\
             \"runs\":{},\"upsets\":{}}}",
            crate::json::number(at.as_secs()),
            state.voltage_json,
            state.runs,
            state.upsets,
        ));
        self.flush_events();
        self.completed_sim_secs += at.as_secs();
        self.publish_convergence(at);
        self.progress
            .lock()
            .expect("progress poisoned")
            .session_ended(self.completed_sim_secs);
    }

    fn on_wave(&mut self, stats: WaveStats) {
        self.account_pool(&stats.pool);
        let Some(state) = &self.state else { return };
        state.wave_latency.observe(stats.host_nanos as f64 / 1e9);
        state
            .wave_critical_path
            .observe(stats.pool.critical_path_nanos() as f64 / 1e9);
        state.waves.inc();
        state.wave_planned.add(stats.planned as u64);
        state.wave_absorbed.add(stats.absorbed as u64);
        state.trial_retries.add(stats.retries);
        state.quarantined_trials.add(stats.quarantined);
        let now = self.tracer.now_ns();
        // The pool profile rides the span verbatim (exact integer nanos,
        // one entry per worker) so `repro inspect` can replay the trace
        // into the same `worker_busy_seconds` / `wave_critical_path`
        // numbers the live registry shows — attribute data only, the
        // engine never reads it back.
        let workers_busy_ns = stats
            .pool
            .workers
            .iter()
            .map(|w| w.busy_nanos.to_string())
            .collect::<Vec<_>>()
            .join(",");
        self.tracer.record_complete(
            SpanLevel::Wave,
            &format!("wave@{}", stats.first_trial),
            state.span,
            now.saturating_sub(stats.host_nanos),
            now,
            &[
                ("planned", &stats.planned.to_string()),
                ("absorbed", &stats.absorbed.to_string()),
                ("efficiency", &format!("{:.4}", stats.efficiency())),
                ("retries", &stats.retries.to_string()),
                ("quarantined", &stats.quarantined.to_string()),
                (
                    "critical_path_ns",
                    &stats.pool.critical_path_nanos().to_string(),
                ),
                ("wall_ns", &stats.pool.wall_nanos.to_string()),
                ("workers_busy_ns", &workers_busy_ns),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::{TelemetryOptions, TelemetrySink};
    use serscale_core::dut::DeviceUnderTest;
    use serscale_core::session::{SessionLimits, TestSession};
    use serscale_stats::SimRng;
    use serscale_types::Flux;

    fn run_session(observer: &mut TelemetryObserver, minutes: f64, seed: u64) {
        let point = OperatingPoint::vmin_2400();
        let dut = DeviceUnderTest::xgene2(point, DeviceUnderTest::paper_vmin(point.frequency));
        let mut session = TestSession::new(
            dut,
            Flux::per_cm2_s(1.5e6),
            SessionLimits::time_boxed(SimDuration::from_minutes(minutes)),
        );
        session.run_observed(&mut SimRng::seed_from(seed), observer);
    }

    #[test]
    fn observer_counts_match_an_independent_logbook() {
        let sink = TelemetrySink::in_memory(TelemetryOptions::default());
        let mut observer = sink.observer();
        run_session(&mut observer, 120.0, 11);

        let point = OperatingPoint::vmin_2400();
        let dut = DeviceUnderTest::xgene2(point, DeviceUnderTest::paper_vmin(point.frequency));
        let mut session = TestSession::new(
            dut,
            Flux::per_cm2_s(1.5e6),
            SessionLimits::time_boxed(SimDuration::from_minutes(120.0)),
        );
        let report = session.run(&mut SimRng::seed_from(11));

        let snap = sink.registry().snapshot();
        assert_eq!(snap.counter_total("runs_total", &[]), report.runs);
        assert_eq!(snap.counter_total("edac_events", &[]), report.memory_upsets);
        assert_eq!(
            snap.counter_total("run_failures_total", &[]),
            report.error_events()
        );
        // Every completed trial lands in the wall-time histogram: the
        // final one settles at session end.
        let key = crate::metrics::SeriesKey::new("trial_wall_time", &[("voltage", &point.label())]);
        assert_eq!(snap.histograms[&key].count, report.runs);
        assert_eq!(
            snap.gauge_value("session_sim_seconds", &[("voltage", &point.label())]),
            Some(report.duration.as_secs())
        );
    }

    #[test]
    fn per_domain_edac_counters_split_pmd_and_soc() {
        let sink = TelemetrySink::in_memory(TelemetryOptions::default());
        let mut observer = sink.observer();
        run_session(&mut observer, 200.0, 5);
        let snap = sink.registry().snapshot();
        let pmd = snap.counter_total("edac_events", &[("domain", "PMD")]);
        let soc = snap.counter_total("edac_events", &[("domain", "SoC")]);
        assert!(pmd > 0, "a 200-minute Vmin session upsets PMD arrays");
        assert!(soc > 0, "a 200-minute Vmin session upsets the L3");
        assert_eq!(pmd + soc, snap.counter_total("edac_events", &[]));
    }

    #[test]
    fn wave_accounting_reflects_speculation() {
        let sink = TelemetrySink::in_memory(TelemetryOptions::default());
        let mut observer = sink.observer();
        run_session(&mut observer, 30.0, 7);
        let snap = sink.registry().snapshot();
        let planned = snap.counter_total("wave_trials_planned_total", &[]);
        let absorbed = snap.counter_total("wave_trials_absorbed_total", &[]);
        assert!(planned >= absorbed, "{planned} < {absorbed}");
        assert_eq!(absorbed, snap.counter_total("runs_total", &[]));
        // Wave spans nest under the session span.
        let records = sink.tracer().records();
        let session_id = records
            .iter()
            .find(|r| r.level == SpanLevel::Session)
            .expect("session span")
            .id;
        assert!(records
            .iter()
            .filter(|r| r.level == SpanLevel::Wave)
            .all(|r| r.parent == session_id));
    }

    #[test]
    fn retry_and_quarantine_counters_surface() {
        use serscale_core::session::{ExecutionPlan, RetryPolicy};
        let sink = TelemetrySink::in_memory(TelemetryOptions::default());
        let mut observer = sink.observer();
        let point = OperatingPoint::nominal();
        let dut = DeviceUnderTest::xgene2(point, DeviceUnderTest::paper_vmin(point.frequency));
        let mut session = TestSession::new(
            dut,
            Flux::per_cm2_s(1.5e6),
            SessionLimits::time_boxed(SimDuration::from_minutes(5.0)),
        );
        // A zero trial timeout fails every attempt, so every trial is
        // retried once and then quarantined.
        let mut plan = ExecutionPlan::with_jobs(2);
        plan.retry = RetryPolicy {
            max_retries: 1,
            backoff: std::time::Duration::ZERO,
            timeout: Some(std::time::Duration::ZERO),
        };
        let report = session.run_planned(&mut SimRng::seed_from(9), plan, &mut observer);
        assert!(!report.quarantined_trials.is_empty());
        let snap = sink.registry().snapshot();
        assert_eq!(
            snap.counter_total("quarantined_trials", &[]),
            report.quarantined_trials.len() as u64
        );
        assert_eq!(
            snap.counter_total("trial_retries", &[]),
            report.trial_retries
        );
    }

    #[test]
    fn worker_utilization_series_cover_the_pool() {
        use serscale_core::session::ExecutionPlan;
        let sink = TelemetrySink::in_memory(TelemetryOptions::default());
        let mut observer = sink.observer();
        let point = OperatingPoint::vmin_2400();
        let dut = DeviceUnderTest::xgene2(point, DeviceUnderTest::paper_vmin(point.frequency));
        let mut session = TestSession::new(
            dut,
            Flux::per_cm2_s(1.5e6),
            SessionLimits::time_boxed(SimDuration::from_minutes(60.0)),
        );
        session.run_planned(
            &mut SimRng::seed_from(13),
            ExecutionPlan::with_jobs(2),
            &mut observer,
        );
        let snap = sink.registry().snapshot();
        let waves = snap.counter_total("waves_total", &[]);
        assert!(waves > 0, "a 60-minute session merges waves");
        // Every worker slot the pool actually ran (jobs clamp to the
        // host's cores, so this may be fewer than the requested 2)
        // surfaces cumulative busy/idle gauges and a shard counter.
        let workers = serscale_core::parallel::effective_workers(2);
        for worker in (0..workers).map(|w| w.to_string()) {
            let worker = worker.as_str();
            let busy = snap
                .gauge_value("worker_busy_seconds", &[("worker", worker)])
                .unwrap_or_else(|| panic!("worker {worker} busy gauge missing"));
            let idle = snap
                .gauge_value("worker_idle_seconds", &[("worker", worker)])
                .expect("idle gauge");
            assert!(busy >= 0.0 && idle >= 0.0, "worker {worker}: {busy}/{idle}");
        }
        assert!(snap.counter_total("worker_shards_total", &[]) > 0);
        let key =
            crate::metrics::SeriesKey::new("wave_critical_path", &[("voltage", &point.label())]);
        assert_eq!(
            snap.histograms[&key].count, waves,
            "every merged wave lands one critical-path observation"
        );
    }

    #[test]
    fn event_stream_is_valid_jsonl() {
        let sink = TelemetrySink::in_memory(TelemetryOptions::default());
        let mut observer = sink.observer();
        run_session(&mut observer, 45.0, 3);
        let events = sink.events_jsonl();
        let docs = crate::json::parse_lines(&events).expect("stream parses");
        assert_eq!(
            docs.len() as u64,
            sink.registry()
                .snapshot()
                .counter_total("telemetry_events_total", &[])
        );
        assert_eq!(
            docs[0]
                .get("event")
                .and_then(crate::json::JsonValue::as_str),
            Some("session_start")
        );
    }
}
