//! The statistical convergence plane: live per-operating-point
//! Garwood-CI estimators over the campaign's (voltage domain, array)
//! cells, plus the offline replay that reproduces them from a journal.
//!
//! The paper's deliverable is not trials per second but *converged
//! estimates*: event rates per array and voltage domain at each operating
//! point, with defensible 95 % confidence intervals (§3.5's Garwood
//! convention). This module tracks exactly those quantities while a
//! campaign runs — event counts by outcome class (masked/DUE/SDC),
//! live-time-normalized rates, Garwood bounds, the relative half-width
//! the "100 events ⇒ ±20 %" rule is phrased in, a resolved-at-target
//! flag, and projected events/trials/time to the target precision.
//!
//! ## Outcome classes
//!
//! EDAC records classify against the trial verdict they occurred in:
//!
//! * `CE` (corrected) → **masked** — the hardware scrubbed it.
//! * `UE` inside a trial whose verdict is SDC → **sdc** — the
//!   uncorrectable escaped into wrong output.
//! * any other `UE` → **due** — detected-uncorrectable; the run crashed
//!   or the error never reached architectural state.
//!
//! ## The determinism contract
//!
//! The tracker is driven from the engine's *canonical merge* callbacks
//! ([`serscale_core::trace::SessionObserver`]), which fire single-threaded
//! in trial order at any `--jobs`. All of its state is integer counts
//! plus one `f64` live-time accumulator per operating point, summed in
//! session order — the same order the journal records. [`replay`] walks
//! `journal.jsonl` through the identical arithmetic (`clock += wall_s`
//! per trial, including quarantined ones, which advance the clock but
//! carry no events), so the offline snapshot is **bit-identical** to the
//! live endpoint's final one. `tests/convergence_live.rs` enforces this
//! end to end, and the `streaming-garwood` verify oracle pins the
//! streaming counts to `serscale-stats`' batch Garwood implementation.

use std::collections::BTreeMap;
use std::path::Path;

use serscale_core::classify::RunVerdict;
use serscale_core::journal::{journal_path, read_journal, Record};
use serscale_soc::edac::EdacSeverity;
use serscale_soc::platform::OperatingPoint;
use serscale_stats::ci::{poisson_ci, poisson_relative_uncertainty};
use serscale_types::{ArrayKind, SimInstant, VoltageDomain};

use crate::json;

/// Confidence level of every interval the plane reports.
pub const CI_LEVEL: f64 = 0.95;

/// A cell counts as *resolved* once its relative CI half-width drops to
/// this target — ±10 %, i.e. roughly the paper's "100 events" rule
/// squared to four hundred events.
pub const TARGET_REL_HALFWIDTH: f64 = 0.10;

/// Upper bound of the events-to-target search; the ±10 % target needs
/// about 385 events, so this is pure runaway protection.
const EVENTS_SEARCH_CAP: u64 = 1_000_000;

/// Event counts of one (voltage domain, array) cell, by outcome class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CellCounts {
    /// Corrected (CE) events: masked by hardware.
    pub masked: u64,
    /// Uncorrected events in non-SDC trials: detected, not silent.
    pub due: u64,
    /// Uncorrected events in SDC trials: silently corrupted output.
    pub sdc: u64,
}

impl CellCounts {
    /// Total events in the cell.
    pub fn events(self) -> u64 {
        self.masked + self.due + self.sdc
    }
}

/// One operating point's accumulated state.
#[derive(Debug, Clone)]
struct PointState {
    point: OperatingPoint,
    voltage: String,
    sessions: u64,
    trials: u64,
    /// Beam-on simulated seconds, accumulated `+=` in session order —
    /// the exact f64 sequence the live session clock produces.
    live_secs: f64,
    cells: BTreeMap<ArrayKind, CellCounts>,
}

impl PointState {
    fn new(point: OperatingPoint) -> Self {
        let mut cells = BTreeMap::new();
        for array in ArrayKind::ALL {
            cells.insert(array, CellCounts::default());
        }
        PointState {
            point,
            voltage: point.label(),
            sessions: 0,
            trials: 0,
            live_secs: 0.0,
            cells,
        }
    }
}

/// Streams the campaign's callback data into per-cell counts and
/// live-time, and renders [`ConvergenceSnapshot`]s on demand.
///
/// Drive it either live (the [`TelemetryObserver`](crate::observer::TelemetryObserver)
/// calls [`session_start`](Self::session_start) / [`run`](Self::run) /
/// [`edac`](Self::edac) / [`session_end`](Self::session_end) in callback
/// order) or offline via [`replay`](Self::replay).
#[derive(Debug, Default)]
pub struct ConvergenceTracker {
    points: Vec<PointState>,
    current: Option<usize>,
    /// The verdict of the trial currently being absorbed; `on_run` fires
    /// before that trial's EDAC records, so this classifies them.
    current_verdict: Option<RunVerdict>,
}

impl ConvergenceTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// A session at `point` began. Points are keyed by their full
    /// (PMD mV, SoC mV, MHz) setting and kept in first-seen order — the
    /// same order a journal replays them in.
    pub fn session_start(&mut self, point: OperatingPoint) {
        let index = match self.points.iter().position(|p| p.point == point) {
            Some(index) => index,
            None => {
                self.points.push(PointState::new(point));
                self.points.len() - 1
            }
        };
        self.points[index].sessions += 1;
        self.current = Some(index);
        self.current_verdict = None;
    }

    /// One trial was absorbed with `verdict`; its EDAC records follow.
    pub fn run(&mut self, verdict: RunVerdict) {
        let Some(index) = self.current else { return };
        self.points[index].trials += 1;
        self.current_verdict = Some(verdict);
    }

    /// One EDAC record landed in the current trial.
    pub fn edac(&mut self, array: ArrayKind, severity: EdacSeverity) {
        let Some(index) = self.current else { return };
        let cell = self.points[index]
            .cells
            .entry(array)
            .or_insert_with(CellCounts::default);
        match severity {
            EdacSeverity::Corrected => cell.masked += 1,
            EdacSeverity::Uncorrected => {
                if matches!(self.current_verdict, Some(RunVerdict::Sdc { .. })) {
                    cell.sdc += 1;
                } else {
                    cell.due += 1;
                }
            }
        }
    }

    /// The current session ended at simulated instant `at` (the session
    /// clock, i.e. total beam-on wall time including quarantined trials).
    pub fn session_end(&mut self, at: SimInstant) {
        if let Some(index) = self.current.take() {
            self.points[index].live_secs += at.as_secs();
        }
        self.current_verdict = None;
    }

    /// Replays `dir`'s `journal.jsonl` through the same estimator
    /// arithmetic the live tracker runs: the session clock advances by
    /// every trial's `wall_s` (quarantined ones included), while only
    /// non-quarantined trials contribute runs and events — exactly what
    /// the live observer saw. The resulting snapshot is bit-identical to
    /// the live endpoint's final one for the same journal.
    ///
    /// # Errors
    ///
    /// Propagates I/O and journal-parse failures.
    pub fn replay(dir: &Path) -> std::io::Result<Self> {
        let mut tracker = ConvergenceTracker::new();
        let mut clock = SimInstant::EPOCH;
        for record in read_journal(&journal_path(dir))? {
            match record {
                Record::Campaign { .. } => {}
                Record::SessionStart { point, .. } => {
                    clock = SimInstant::EPOCH;
                    tracker.session_start(point);
                }
                Record::Trial { execution, .. } => {
                    clock += execution.outcome.wall_time;
                    if !execution.quarantined {
                        tracker.run(execution.outcome.verdict);
                        for record in &execution.outcome.edac {
                            tracker.edac(record.array, record.severity);
                        }
                    }
                }
                Record::SessionEnd { .. } => {
                    tracker.session_end(clock);
                    clock = SimInstant::EPOCH;
                }
            }
        }
        Ok(tracker)
    }

    /// The current estimates, computed fresh from the streamed counts.
    pub fn snapshot(&self) -> ConvergenceSnapshot {
        let mut points = Vec::with_capacity(self.points.len());
        for state in &self.points {
            let cells = state
                .cells
                .iter()
                .map(|(&array, &counts)| {
                    estimate_cell(array, counts, state.live_secs, state.trials)
                })
                .collect();
            points.push(PointEstimate {
                voltage: state.voltage.clone(),
                pmd_mv: state.point.pmd.get(),
                soc_mv: state.point.soc.get(),
                freq_mhz: state.point.frequency.get(),
                sessions: state.sessions,
                trials: state.trials,
                live_seconds: state.live_secs,
                cells,
            });
        }
        ConvergenceSnapshot {
            ci_level: CI_LEVEL,
            target_rel_halfwidth: TARGET_REL_HALFWIDTH,
            points,
        }
    }
}

/// Estimates one cell from its counts and the point's live time.
fn estimate_cell(array: ArrayKind, counts: CellCounts, live_secs: f64, trials: u64) -> CellEstimate {
    let events = counts.events();
    let hours = live_secs / 3600.0;
    let (rate, ci_lower, ci_upper) = if live_secs > 0.0 {
        let (lo, hi) = poisson_ci(events, CI_LEVEL);
        (events as f64 / hours, lo / hours, hi / hours)
    } else {
        (0.0, 0.0, 0.0)
    };
    let rel_halfwidth = poisson_relative_uncertainty(events);
    let resolved = rel_halfwidth <= TARGET_REL_HALFWIDTH;
    let events_to_target = events_to_target(events);
    // Zero-rate cells project to infinity; the clamp (the progress
    // ETA convention) turns that into an honest "unknown" instead of
    // NaN or a negative figure.
    let clamp = |x: f64| (x.is_finite() && x >= 0.0).then_some(x);
    let (projected_trials, projected_seconds) = match events_to_target {
        Some(k) => {
            let extra = k.saturating_sub(events) as f64;
            (
                clamp(extra * trials as f64 / events as f64),
                clamp(extra * live_secs / events as f64),
            )
        }
        None => (None, None),
    };
    CellEstimate {
        domain: array.voltage_domain(),
        array,
        masked: counts.masked,
        due: counts.due,
        sdc: counts.sdc,
        events,
        rate_per_hour: rate,
        ci_lower_per_hour: ci_lower,
        ci_upper_per_hour: ci_upper,
        rel_halfwidth,
        resolved,
        events_to_target,
        projected_trials,
        projected_seconds,
    }
}

/// The smallest event count at or above `events` whose relative
/// half-width meets [`TARGET_REL_HALFWIDTH`], or `None` if the search
/// cap is hit (it is not, for any sane target).
///
/// The half-width is monotone nonincreasing in the count, so the
/// unconditional answer for a below-target cell is a process-wide
/// constant (~385 events at ±10 %) computed once; cells already past
/// it confirm their own count directly. Snapshots are taken at every
/// session end and on every `/convergence` scrape, so this must not
/// cost a quantile search per cell.
fn events_to_target(events: u64) -> Option<u64> {
    static TARGET_K: std::sync::OnceLock<Option<u64>> = std::sync::OnceLock::new();
    let target = *TARGET_K.get_or_init(|| search_to_target(1));
    let floor = events.max(1);
    match target {
        Some(k) if floor <= k => Some(k),
        _ => search_to_target(floor),
    }
}

/// Linear search upward from `k` for the first count meeting the
/// target — the reference definition `events_to_target` memoizes.
fn search_to_target(mut k: u64) -> Option<u64> {
    while k <= EVENTS_SEARCH_CAP {
        if poisson_relative_uncertainty(k) <= TARGET_REL_HALFWIDTH {
            return Some(k);
        }
        k += 1;
    }
    None
}

/// One cell's full estimate, as the `/convergence` endpoint reports it.
#[derive(Debug, Clone, PartialEq)]
pub struct CellEstimate {
    /// The voltage domain powering the array.
    pub domain: VoltageDomain,
    /// The SRAM array.
    pub array: ArrayKind,
    /// Corrected (masked) events.
    pub masked: u64,
    /// Detected-uncorrectable events.
    pub due: u64,
    /// Silent-corruption events.
    pub sdc: u64,
    /// Total events (`masked + due + sdc`).
    pub events: u64,
    /// Events per live hour (0 before any live time accumulates).
    pub rate_per_hour: f64,
    /// Garwood lower bound on the hourly rate.
    pub ci_lower_per_hour: f64,
    /// Garwood upper bound on the hourly rate.
    pub ci_upper_per_hour: f64,
    /// Relative CI half-width (∞ at zero events).
    pub rel_halfwidth: f64,
    /// Whether the half-width meets [`TARGET_REL_HALFWIDTH`].
    pub resolved: bool,
    /// Total events needed to meet the target.
    pub events_to_target: Option<u64>,
    /// Additional trials projected to reach the target (clamped finite
    /// non-negative; `None` while the cell has no events).
    pub projected_trials: Option<f64>,
    /// Additional live seconds projected to reach the target (same
    /// clamping).
    pub projected_seconds: Option<f64>,
}

impl CellEstimate {
    /// `"PMD/L1D"` — the cell's display name within a point.
    pub fn label(&self) -> String {
        format!("{}/{}", self.domain, self.array)
    }
}

/// One operating point's estimates.
#[derive(Debug, Clone, PartialEq)]
pub struct PointEstimate {
    /// The operating-point label, e.g. `"920mV@2.4 GHz"`.
    pub voltage: String,
    /// PMD rail setting, millivolts.
    pub pmd_mv: u32,
    /// SoC rail setting, millivolts.
    pub soc_mv: u32,
    /// Core frequency, megahertz.
    pub freq_mhz: u32,
    /// Sessions observed at this point.
    pub sessions: u64,
    /// Trials absorbed at this point (quarantined ones excluded).
    pub trials: u64,
    /// Beam-on simulated seconds accumulated at this point.
    pub live_seconds: f64,
    /// Per-(domain, array) cells, in [`ArrayKind`] order.
    pub cells: Vec<CellEstimate>,
}

/// A full convergence snapshot: every point, every cell, plus the
/// headline resolved/total tally and the widest-CI cell.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceSnapshot {
    /// Confidence level of every interval ([`CI_LEVEL`]).
    pub ci_level: f64,
    /// The resolution target ([`TARGET_REL_HALFWIDTH`]).
    pub target_rel_halfwidth: f64,
    /// Per-operating-point estimates, in first-seen order.
    pub points: Vec<PointEstimate>,
}

impl ConvergenceSnapshot {
    /// Total cells across all points.
    pub fn cells_total(&self) -> usize {
        self.points.iter().map(|p| p.cells.len()).sum()
    }

    /// Cells whose half-width meets the target.
    pub fn cells_resolved(&self) -> usize {
        self.points
            .iter()
            .flat_map(|p| &p.cells)
            .filter(|c| c.resolved)
            .count()
    }

    /// The cell with the widest *finite* relative half-width — the most
    /// informative place to spend the next trial. Cells with zero events
    /// have no estimate at all yet, so they do not compete; `None` when
    /// no cell anywhere has events.
    pub fn widest(&self) -> Option<(&PointEstimate, &CellEstimate)> {
        let mut best: Option<(&PointEstimate, &CellEstimate)> = None;
        for point in &self.points {
            for cell in &point.cells {
                if cell.events == 0 {
                    continue;
                }
                if best.map_or(true, |(_, b)| cell.rel_halfwidth > b.rel_halfwidth) {
                    best = Some((point, cell));
                }
            }
        }
        best
    }

    /// The snapshot as one JSON document, ending in a newline. The
    /// rendering is byte-stable: identical snapshots produce identical
    /// bytes, so the live endpoint's final body, the journal replay and
    /// the CI reconciler can be compared with `cmp`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"ci_level\":{}", json::number(self.ci_level)));
        out.push_str(&format!(
            ",\"target_rel_halfwidth\":{}",
            json::number(self.target_rel_halfwidth)
        ));
        out.push_str(&format!(",\"cells_total\":{}", self.cells_total()));
        out.push_str(&format!(",\"cells_resolved\":{}", self.cells_resolved()));
        match self.widest() {
            Some((point, cell)) => {
                out.push_str(&format!(
                    ",\"widest\":{{\"voltage\":{},\"domain\":\"{}\",\"array\":\"{}\"",
                    json::escape(&point.voltage),
                    cell.domain,
                    cell.array,
                ));
                out.push_str(&format!(
                    ",\"rel_halfwidth\":{}",
                    json::number(cell.rel_halfwidth)
                ));
                match cell.projected_seconds {
                    Some(s) => out.push_str(&format!(
                        ",\"projected_seconds\":{}}}",
                        json::number(s)
                    )),
                    None => out.push_str(",\"projected_seconds\":null}"),
                }
            }
            None => out.push_str(",\"widest\":null"),
        }
        out.push_str(",\"points\":[");
        for (i, point) in self.points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"voltage\":{},\"pmd_mv\":{},\"soc_mv\":{},\"freq_mhz\":{}",
                json::escape(&point.voltage),
                point.pmd_mv,
                point.soc_mv,
                point.freq_mhz,
            ));
            out.push_str(&format!(",\"sessions\":{}", point.sessions));
            out.push_str(&format!(",\"trials\":{}", point.trials));
            out.push_str(&format!(
                ",\"live_seconds\":{}",
                json::number(point.live_seconds)
            ));
            out.push_str(",\"cells\":[");
            for (j, cell) in point.cells.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"domain\":\"{}\",\"array\":\"{}\"",
                    cell.domain, cell.array
                ));
                out.push_str(&format!(",\"masked\":{}", cell.masked));
                out.push_str(&format!(",\"due\":{}", cell.due));
                out.push_str(&format!(",\"sdc\":{}", cell.sdc));
                out.push_str(&format!(",\"events\":{}", cell.events));
                out.push_str(&format!(
                    ",\"rate_per_hour\":{}",
                    json::number(cell.rate_per_hour)
                ));
                out.push_str(&format!(
                    ",\"ci_lower_per_hour\":{}",
                    json::number(cell.ci_lower_per_hour)
                ));
                out.push_str(&format!(
                    ",\"ci_upper_per_hour\":{}",
                    json::number(cell.ci_upper_per_hour)
                ));
                // `number` renders the zero-event ∞ as JSON null.
                out.push_str(&format!(
                    ",\"rel_halfwidth\":{}",
                    json::number(cell.rel_halfwidth)
                ));
                out.push_str(&format!(",\"resolved\":{}", cell.resolved));
                match cell.events_to_target {
                    Some(k) => out.push_str(&format!(",\"events_to_target\":{k}")),
                    None => out.push_str(",\"events_to_target\":null"),
                }
                match cell.projected_trials {
                    Some(t) => out.push_str(&format!(
                        ",\"projected_trials\":{}",
                        json::number(t)
                    )),
                    None => out.push_str(",\"projected_trials\":null"),
                }
                match cell.projected_seconds {
                    Some(s) => out.push_str(&format!(
                        ",\"projected_seconds\":{}",
                        json::number(s)
                    )),
                    None => out.push_str(",\"projected_seconds\":null"),
                }
                out.push('}');
            }
            out.push_str("]}");
        }
        out.push_str("]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serscale_types::SimDuration;

    fn point() -> OperatingPoint {
        OperatingPoint::vmin_2400()
    }

    fn tracker_with_events(masked: u64, due: u64, sdc: u64, secs: f64) -> ConvergenceTracker {
        let mut t = ConvergenceTracker::new();
        t.session_start(point());
        for _ in 0..masked {
            t.run(RunVerdict::Correct);
            t.edac(ArrayKind::L1Data, EdacSeverity::Corrected);
        }
        for _ in 0..due {
            t.run(RunVerdict::AppCrash);
            t.edac(ArrayKind::L1Data, EdacSeverity::Uncorrected);
        }
        for _ in 0..sdc {
            t.run(RunVerdict::Sdc {
                with_hw_notification: false,
            });
            t.edac(ArrayKind::L1Data, EdacSeverity::Uncorrected);
        }
        t.session_end(SimInstant::EPOCH + SimDuration::from_secs(secs));
        t
    }

    #[test]
    fn outcome_classes_split_by_severity_and_verdict() {
        let snap = tracker_with_events(3, 2, 1, 3600.0).snapshot();
        let cell = snap.points[0]
            .cells
            .iter()
            .find(|c| c.array == ArrayKind::L1Data)
            .expect("L1D cell");
        assert_eq!((cell.masked, cell.due, cell.sdc), (3, 2, 1));
        assert_eq!(cell.events, 6);
        assert_eq!(snap.points[0].trials, 6);
        assert_eq!(snap.points[0].live_seconds, 3600.0);
        assert_eq!(cell.rate_per_hour, 6.0);
    }

    #[test]
    fn cell_cis_match_batch_garwood_exactly() {
        let snap = tracker_with_events(10, 5, 2, 7200.0).snapshot();
        let cell = snap.points[0]
            .cells
            .iter()
            .find(|c| c.array == ArrayKind::L1Data)
            .expect("L1D cell");
        let (lo, hi) = poisson_ci(17, CI_LEVEL);
        assert_eq!(cell.ci_lower_per_hour.to_bits(), (lo / 2.0).to_bits());
        assert_eq!(cell.ci_upper_per_hour.to_bits(), (hi / 2.0).to_bits());
        assert_eq!(
            cell.rel_halfwidth.to_bits(),
            poisson_relative_uncertainty(17).to_bits()
        );
    }

    #[test]
    fn zero_event_cells_stay_finite_and_unresolved() {
        let snap = tracker_with_events(0, 0, 0, 3600.0).snapshot();
        for cell in &snap.points[0].cells {
            assert_eq!(cell.events, 0);
            assert_eq!(cell.rate_per_hour, 0.0);
            assert_eq!(cell.ci_lower_per_hour, 0.0);
            assert!(cell.ci_upper_per_hour.is_finite());
            assert!(cell.rel_halfwidth.is_infinite());
            assert!(!cell.resolved);
            // The zero-rate projections clamp away, never NaN/negative.
            assert_eq!(cell.projected_trials, None);
            assert_eq!(cell.projected_seconds, None);
        }
        assert!(snap.widest().is_none(), "no events, no widest cell");
        assert_eq!(snap.cells_resolved(), 0);
        // And the JSON renders the infinite half-width as null.
        let doc = json::parse(snap.to_json().trim_end()).expect("snapshot parses");
        let first = |v: &json::JsonValue| match v {
            json::JsonValue::Array(items) => items.first().cloned(),
            _ => None,
        };
        let cell = doc
            .get("points")
            .and_then(first)
            .as_ref()
            .and_then(|p| p.get("cells"))
            .and_then(first)
            .expect("first cell");
        assert_eq!(cell.get("rel_halfwidth"), Some(&json::JsonValue::Null));
    }

    #[test]
    fn projections_shrink_as_events_accumulate() {
        let sparse = tracker_with_events(4, 0, 0, 3600.0).snapshot();
        let dense = tracker_with_events(100, 0, 0, 3600.0).snapshot();
        let cell_of = |snap: &ConvergenceSnapshot| {
            snap.points[0]
                .cells
                .iter()
                .find(|c| c.array == ArrayKind::L1Data)
                .cloned()
                .expect("L1D cell")
        };
        let (sparse, dense) = (cell_of(&sparse), cell_of(&dense));
        let (s_proj, d_proj) = (
            sparse.projected_seconds.expect("sparse projects"),
            dense.projected_seconds.expect("dense projects"),
        );
        assert!(s_proj > 0.0 && d_proj > 0.0);
        assert!(
            sparse.events_to_target.unwrap() == dense.events_to_target.unwrap(),
            "the target event count is a property of the target, not the cell"
        );
        assert!(
            d_proj < s_proj,
            "higher rate reaches the target sooner: {d_proj} vs {s_proj}"
        );
        // ~385 events meet the ±10% target.
        let k = dense.events_to_target.unwrap();
        assert!((300..500).contains(&k), "events_to_target = {k}");
        assert!(poisson_relative_uncertainty(k) <= TARGET_REL_HALFWIDTH);
        assert!(poisson_relative_uncertainty(k - 1) > TARGET_REL_HALFWIDTH);
    }

    #[test]
    fn resolved_cells_project_zero_additional_work() {
        let snap = tracker_with_events(400, 0, 0, 3600.0).snapshot();
        let cell = snap.points[0]
            .cells
            .iter()
            .find(|c| c.array == ArrayKind::L1Data)
            .expect("L1D cell");
        assert!(cell.resolved);
        assert_eq!(cell.events_to_target, Some(400));
        assert_eq!(cell.projected_trials, Some(0.0));
        assert_eq!(cell.projected_seconds, Some(0.0));
        assert_eq!(snap.cells_resolved(), 1);
    }

    #[test]
    fn widest_prefers_the_fewest_events() {
        let mut t = ConvergenceTracker::new();
        t.session_start(point());
        t.run(RunVerdict::Correct);
        for _ in 0..50 {
            t.edac(ArrayKind::L1Data, EdacSeverity::Corrected);
        }
        t.edac(ArrayKind::L2Unified, EdacSeverity::Corrected);
        t.session_end(SimInstant::EPOCH + SimDuration::from_secs(3600.0));
        let snap = t.snapshot();
        let (_, widest) = snap.widest().expect("events exist");
        assert_eq!(widest.array, ArrayKind::L2Unified, "1 event beats 50");
    }

    #[test]
    fn points_are_keyed_by_full_setting_in_first_seen_order() {
        let mut t = ConvergenceTracker::new();
        t.session_start(OperatingPoint::vmin_2400());
        t.session_end(SimInstant::EPOCH + SimDuration::from_secs(60.0));
        t.session_start(OperatingPoint::nominal());
        t.session_end(SimInstant::EPOCH + SimDuration::from_secs(30.0));
        // A second session at an already-seen point accumulates there.
        t.session_start(OperatingPoint::vmin_2400());
        t.session_end(SimInstant::EPOCH + SimDuration::from_secs(40.0));
        let snap = t.snapshot();
        assert_eq!(snap.points.len(), 2);
        assert_eq!(snap.points[0].voltage, OperatingPoint::vmin_2400().label());
        assert_eq!(snap.points[0].sessions, 2);
        assert_eq!(snap.points[0].live_seconds, 100.0);
        assert_eq!(snap.points[1].sessions, 1);
        assert_eq!(snap.cells_total(), 2 * ArrayKind::ALL.len());
    }

    #[test]
    fn snapshot_json_is_stable_and_parses() {
        let t = tracker_with_events(5, 1, 0, 1800.0);
        let a = t.snapshot().to_json();
        let b = t.snapshot().to_json();
        assert_eq!(a, b, "identical state renders identical bytes");
        assert!(a.ends_with('\n'));
        let doc = json::parse(a.trim_end()).expect("snapshot parses");
        assert_eq!(
            doc.get("ci_level").and_then(json::JsonValue::as_f64),
            Some(CI_LEVEL)
        );
        let widest = doc.get("widest").expect("widest present");
        assert!(
            widest.get("voltage").is_some(),
            "events exist, widest names a cell: {a}"
        );
    }
}
