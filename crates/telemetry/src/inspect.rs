//! Offline run forensics: `repro inspect` over a finished run's artifacts.
//!
//! A campaign leaves three kinds of evidence behind: the crash-safe
//! `journal.jsonl` (what the simulation decided), `spans.jsonl` (where
//! host time went) and `events.jsonl` (what the observer saw, in order).
//! This module replays them into a forensic report long after the process
//! and its live `/metrics` endpoint are gone:
//!
//! - **per-wave critical-path breakdown** — each session's waves with
//!   planned/absorbed counts, host duration, the pool's critical path and
//!   wall time, and the slowest waves called out;
//! - **worker-utilization timeline** — per-worker busy time summed from
//!   the exact integer nanosecond ledgers each wave span carries;
//! - **exact-quantile latency summaries** — nearest-rank quantiles over
//!   the raw samples, sharper than the live registry's log₂ histograms;
//! - **per-(voltage-domain, array) event attribution** — EDAC counts by
//!   severity, from `events.jsonl` when present, else from the journal;
//! - **collapsed-stack output** (`--folded`) — `a;b;c self_ns` lines for
//!   flamegraph tooling;
//! - **run comparison** (`--diff`) — headline deltas between two runs.
//!
//! ## Exact reconstruction contract
//!
//! The live observer accumulates each worker's busy time as integer
//! nanoseconds and publishes `worker_busy_seconds` as one final division
//! by 1e9; every wave span carries the same integers in its
//! `workers_busy_ns` attribute, so summing them here and dividing once
//! reproduces the gauge **bit-exactly**. Likewise `wave_critical_path`:
//! the live histogram's sum is a sequential f64 accumulation of
//! `critical_path_nanos / 1e9` in wave order within one observer shard,
//! and [`InspectReport::critical_path_series`] repeats that accumulation
//! in span-id order (the order `record_complete` assigned them), so the
//! reconstructed sums match the scraped ones to the last bit.
//! `tests/inspect_forensics.rs` enforces both.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use serscale_core::journal::{journal_path, read_journal, Record};

use crate::json::{self, JsonValue};

/// One span parsed back from `spans.jsonl`.
#[derive(Debug, Clone, PartialEq)]
pub struct InspectSpan {
    /// Hierarchy level (`campaign`, `sweep`, `session`, `wave`, `trial`).
    pub level: String,
    /// Span id, unique within the run.
    pub id: u64,
    /// Parent span id (0 = top-level).
    pub parent: u64,
    /// Human name, e.g. `"wave@128"`.
    pub name: String,
    /// Host nanoseconds from tracer epoch to entry.
    pub enter_ns: u64,
    /// Host nanoseconds from tracer epoch to exit.
    pub exit_ns: u64,
    /// Structured string attributes.
    pub attrs: BTreeMap<String, String>,
}

impl InspectSpan {
    /// The span's host duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.exit_ns.saturating_sub(self.enter_ns)
    }

    fn attr_u64(&self, key: &str) -> Option<u64> {
        self.attrs.get(key).and_then(|v| v.parse().ok())
    }
}

/// One session's wave-level breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionForensics {
    /// The operating-point label, e.g. `"920mV@2.4 GHz"`.
    pub voltage: String,
    /// The session span's id.
    pub span_id: u64,
    /// The session span's entry timestamp (orders the timeline).
    pub enter_ns: u64,
    /// Waves merged in this session.
    pub waves: u64,
    /// Trials the waves planned (speculation included).
    pub planned: u64,
    /// Trials the merge absorbed.
    pub absorbed: u64,
    /// Trial retries across the session.
    pub retries: u64,
    /// Trials quarantined across the session.
    pub quarantined: u64,
    /// Σ wave host duration, nanoseconds.
    pub host_ns: u64,
    /// Σ wave critical path (slowest worker per wave), nanoseconds.
    pub critical_path_ns: u64,
    /// Σ wave pool wall time, nanoseconds.
    pub wall_ns: u64,
    /// Per-worker busy nanoseconds within this session.
    pub worker_busy_ns: Vec<u64>,
    /// The slowest waves, `(name, duration_ns)`, worst first.
    pub slowest: Vec<(String, u64)>,
}

impl SessionForensics {
    /// Pool utilization across the session: busy time over wall time
    /// summed over the session's waves, per worker slot.
    pub fn utilization(&self) -> f64 {
        let busy: u64 = self.worker_busy_ns.iter().sum();
        let span = self
            .wall_ns
            .saturating_mul(self.worker_busy_ns.len() as u64);
        if span == 0 {
            return 0.0;
        }
        busy as f64 / span as f64
    }
}

/// One worker's campaign-wide ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerForensics {
    /// Worker slot index.
    pub index: usize,
    /// Total busy nanoseconds across every wave (exact integer sum).
    pub busy_ns: u64,
    /// Waves this worker appeared in.
    pub waves: u64,
}

impl WorkerForensics {
    /// The worker's busy time in seconds — one division of the exact
    /// integer total, reproducing the live `worker_busy_seconds` gauge
    /// bit for bit.
    pub fn busy_seconds(&self) -> f64 {
        self.busy_ns as f64 / 1e9
    }
}

/// The reconstructed `wave_critical_path{voltage=…}` histogram totals.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPathSeries {
    /// The voltage label the live series carries.
    pub voltage: String,
    /// Observation count (= waves at this voltage).
    pub count: u64,
    /// The histogram sum, accumulated in the live observation order.
    pub sum_seconds: f64,
}

/// Nearest-rank quantiles over one latency population.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSummary {
    /// Sample count.
    pub n: usize,
    /// Smallest sample.
    pub min: f64,
    /// 50th percentile (nearest rank).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Largest sample.
    pub max: f64,
}

impl QuantileSummary {
    /// Summarizes a sample population; `None` when it is empty.
    pub fn of(mut samples: Vec<f64>) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        samples.sort_by(f64::total_cmp);
        Some(QuantileSummary {
            n: samples.len(),
            min: samples[0],
            p50: exact_quantile(&samples, 0.50),
            p90: exact_quantile(&samples, 0.90),
            p99: exact_quantile(&samples, 0.99),
            max: samples[samples.len() - 1],
        })
    }
}

/// The nearest-rank quantile of an ascending-sorted, non-empty sample:
/// the smallest sample such that at least `q·n` samples are ≤ it. Exact —
/// no interpolation, no bucketing — which is the point of offline
/// forensics versus the live log₂ histograms.
///
/// # Panics
///
/// Panics on an empty slice; callers summarize through
/// [`QuantileSummary::of`], which handles emptiness.
pub fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of an empty population");
    let q = q.clamp(0.0, 1.0);
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// EDAC attribution for one (voltage domain, array) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct EdacAttribution {
    /// The voltage domain the array sits on (`PMD` / `SoC`).
    pub domain: String,
    /// The SRAM array name.
    pub array: String,
    /// Corrected-error count.
    pub corrected: u64,
    /// Uncorrected-error count.
    pub uncorrected: u64,
}

/// What the journal alone establishes about the run.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalForensics {
    /// Sessions the journal has any record of.
    pub sessions: u64,
    /// Absorbed trials.
    pub trials: u64,
    /// Verdict counts by wire name (`ok`, `sdc`, `app_crash`, `sys_crash`).
    pub verdicts: BTreeMap<String, u64>,
    /// Total trial retries.
    pub retries: u64,
    /// Quarantined trials.
    pub quarantined: u64,
    /// Journal bytes on disk.
    pub bytes: u64,
}

/// The full forensic read of one run directory.
#[derive(Debug, Clone, PartialEq)]
pub struct InspectReport {
    /// The directory inspected.
    pub dir: PathBuf,
    /// Every span, sorted by `(enter_ns, id)`.
    pub spans: Vec<InspectSpan>,
    /// Per-session wave breakdown, in timeline order.
    pub sessions: Vec<SessionForensics>,
    /// Per-worker campaign-wide ledgers.
    pub workers: Vec<WorkerForensics>,
    /// Reconstructed `wave_critical_path` histogram totals per voltage.
    pub critical_path_series: Vec<CriticalPathSeries>,
    /// Exact quantiles over wave host durations (seconds).
    pub wave_duration: Option<QuantileSummary>,
    /// Exact quantiles over wave critical paths (seconds).
    pub critical_path: Option<QuantileSummary>,
    /// Exact quantiles over journaled trial wall times (simulated
    /// seconds).
    pub trial_wall: Option<QuantileSummary>,
    /// EDAC attribution by (domain, array), sorted.
    pub edac: Vec<EdacAttribution>,
    /// Journal-derived facts, when a journal is present.
    pub journal: Option<JournalForensics>,
    /// Lines read from `events.jsonl` (0 when absent).
    pub event_lines: usize,
}

/// How many slowest waves each session breakdown lists.
const SLOWEST_WAVES: usize = 5;

/// True when `dir` holds at least one artifact this module can read.
pub fn has_artifacts(dir: &Path) -> bool {
    journal_path(dir).is_file()
        || dir.join("spans.jsonl").is_file()
        || dir.join("events.jsonl").is_file()
}

/// Replays a run directory's artifacts into an [`InspectReport`].
///
/// The directory may be a `--telemetry-out` export (`spans.jsonl`,
/// `events.jsonl`), a journal directory (`journal.jsonl`), or a control
/// plane job directory carrying all three; every section degrades
/// gracefully when its source file is absent.
///
/// # Errors
///
/// No artifact at all in `dir`, unreadable files, malformed JSONL, or a
/// journal whose mid-file digests fail (torn *tails* are forgiven, the
/// same tolerance recovery applies).
pub fn inspect_dir(dir: &Path) -> Result<InspectReport, String> {
    if !has_artifacts(dir) {
        return Err(format!(
            "{}: no journal.jsonl, spans.jsonl or events.jsonl to inspect",
            dir.display()
        ));
    }
    let spans = read_spans(&dir.join("spans.jsonl"))?;
    let (edac_from_events, event_lines) = read_events(&dir.join("events.jsonl"))?;
    let journal = read_journal_forensics(dir)?;

    let sessions = build_sessions(&spans);
    let workers = build_workers(&spans);
    let critical_path_series = build_critical_path_series(&spans);

    let wave_spans: Vec<&InspectSpan> = spans.iter().filter(|s| s.level == "wave").collect();
    let wave_duration = QuantileSummary::of(
        wave_spans
            .iter()
            .map(|s| s.duration_ns() as f64 / 1e9)
            .collect(),
    );
    let critical_path = QuantileSummary::of(
        wave_spans
            .iter()
            .filter_map(|s| s.attr_u64("critical_path_ns"))
            .map(|ns| ns as f64 / 1e9)
            .collect(),
    );
    let (journal, trial_wall, edac_from_journal) = match journal {
        Some((forensics, walls, edac)) => (Some(forensics), QuantileSummary::of(walls), edac),
        None => (None, None, Vec::new()),
    };
    // Events are the richer source (they carry the live domain labels);
    // the journal is the fallback when only the crash-safe artifact
    // survived.
    let edac = if event_lines > 0 {
        edac_from_events
    } else {
        edac_from_journal
    };

    Ok(InspectReport {
        dir: dir.to_path_buf(),
        spans,
        sessions,
        workers,
        critical_path_series,
        wave_duration,
        critical_path,
        trial_wall,
        edac,
        journal,
        event_lines,
    })
}

fn read_spans(path: &Path) -> Result<Vec<InspectSpan>, String> {
    if !path.is_file() {
        return Ok(Vec::new());
    }
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let docs = json::parse_lines(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut spans = Vec::with_capacity(docs.len());
    for (i, doc) in docs.iter().enumerate() {
        let field_u64 = |key: &str| {
            doc.get(key)
                .and_then(JsonValue::as_f64)
                .map(|v| v as u64)
                .ok_or_else(|| format!("{}: line {}: missing {key}", path.display(), i + 1))
        };
        let field_str = |key: &str| {
            doc.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("{}: line {}: missing {key}", path.display(), i + 1))
        };
        let mut attrs = BTreeMap::new();
        if let JsonValue::Object(map) = doc {
            for (key, value) in map {
                if matches!(key.as_str(), "span" | "name") {
                    continue;
                }
                if let Some(s) = value.as_str() {
                    attrs.insert(key.clone(), s.to_string());
                }
            }
        }
        spans.push(InspectSpan {
            level: field_str("span")?,
            id: field_u64("id")?,
            parent: field_u64("parent")?,
            name: field_str("name")?,
            enter_ns: field_u64("enter_ns")?,
            exit_ns: field_u64("exit_ns")?,
            attrs,
        });
    }
    spans.sort_by_key(|s| (s.enter_ns, s.id));
    Ok(spans)
}

type EventEdac = (Vec<EdacAttribution>, usize);

fn read_events(path: &Path) -> Result<EventEdac, String> {
    if !path.is_file() {
        return Ok((Vec::new(), 0));
    }
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let docs = json::parse_lines(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut counts: BTreeMap<(String, String), (u64, u64)> = BTreeMap::new();
    for doc in &docs {
        if doc.get("event").and_then(JsonValue::as_str) != Some("edac") {
            continue;
        }
        let domain = doc.get("domain").and_then(JsonValue::as_str).unwrap_or("?");
        let array = doc.get("array").and_then(JsonValue::as_str).unwrap_or("?");
        let slot = counts
            .entry((domain.to_string(), array.to_string()))
            .or_default();
        match doc.get("severity").and_then(JsonValue::as_str) {
            Some("UE") => slot.1 += 1,
            _ => slot.0 += 1,
        }
    }
    Ok((collect_edac(counts), docs.len()))
}

type JournalRead = Option<(JournalForensics, Vec<f64>, Vec<EdacAttribution>)>;

fn read_journal_forensics(dir: &Path) -> Result<JournalRead, String> {
    let path = journal_path(dir);
    if !path.is_file() {
        return Ok(None);
    }
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    let records = read_journal(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut forensics = JournalForensics {
        sessions: 0,
        trials: 0,
        verdicts: BTreeMap::new(),
        retries: 0,
        quarantined: 0,
        bytes,
    };
    let mut walls = Vec::new();
    let mut counts: BTreeMap<(String, String), (u64, u64)> = BTreeMap::new();
    for record in &records {
        match record {
            Record::Campaign { .. } | Record::SessionEnd { .. } => {}
            Record::SessionStart { .. } => forensics.sessions += 1,
            Record::Trial { execution, .. } => {
                forensics.trials += 1;
                forensics.retries += u64::from(execution.retries);
                forensics.quarantined += u64::from(execution.quarantined);
                let verdict = format!("{:?}", execution.outcome.verdict);
                let verdict = verdict
                    .split(|c: char| !c.is_ascii_alphanumeric())
                    .next()
                    .unwrap_or("?")
                    .to_string();
                *forensics.verdicts.entry(verdict).or_default() += 1;
                walls.push(execution.outcome.wall_time.as_secs());
                for edac in &execution.outcome.edac {
                    let slot = counts
                        .entry((
                            edac.array.voltage_domain().to_string(),
                            edac.array.to_string(),
                        ))
                        .or_default();
                    match edac.severity {
                        serscale_soc::edac::EdacSeverity::Uncorrected => slot.1 += 1,
                        serscale_soc::edac::EdacSeverity::Corrected => slot.0 += 1,
                    }
                }
            }
        }
    }
    Ok(Some((forensics, walls, collect_edac(counts))))
}

fn collect_edac(counts: BTreeMap<(String, String), (u64, u64)>) -> Vec<EdacAttribution> {
    counts
        .into_iter()
        .map(|((domain, array), (ce, ue))| EdacAttribution {
            domain,
            array,
            corrected: ce,
            uncorrected: ue,
        })
        .collect()
}

/// The voltage label of a session span (`"session 920mV@2.4 GHz"` →
/// `"920mV@2.4 GHz"`).
fn session_voltage(span: &InspectSpan) -> String {
    span.name
        .strip_prefix("session ")
        .unwrap_or(&span.name)
        .to_string()
}

fn build_sessions(spans: &[InspectSpan]) -> Vec<SessionForensics> {
    let mut sessions: Vec<SessionForensics> = spans
        .iter()
        .filter(|s| s.level == "session")
        .map(|s| SessionForensics {
            voltage: session_voltage(s),
            span_id: s.id,
            enter_ns: s.enter_ns,
            waves: 0,
            planned: 0,
            absorbed: 0,
            retries: 0,
            quarantined: 0,
            host_ns: 0,
            critical_path_ns: 0,
            wall_ns: 0,
            worker_busy_ns: Vec::new(),
            slowest: Vec::new(),
        })
        .collect();
    for wave in spans.iter().filter(|s| s.level == "wave") {
        let Some(session) = sessions.iter_mut().find(|s| s.span_id == wave.parent) else {
            continue;
        };
        session.waves += 1;
        session.planned += wave.attr_u64("planned").unwrap_or(0);
        session.absorbed += wave.attr_u64("absorbed").unwrap_or(0);
        session.retries += wave.attr_u64("retries").unwrap_or(0);
        session.quarantined += wave.attr_u64("quarantined").unwrap_or(0);
        session.host_ns += wave.duration_ns();
        session.critical_path_ns += wave.attr_u64("critical_path_ns").unwrap_or(0);
        session.wall_ns += wave.attr_u64("wall_ns").unwrap_or(0);
        for (i, busy) in worker_busy_list(wave).into_iter().enumerate() {
            if session.worker_busy_ns.len() <= i {
                session.worker_busy_ns.resize(i + 1, 0);
            }
            session.worker_busy_ns[i] += busy;
        }
        session
            .slowest
            .push((wave.name.clone(), wave.duration_ns()));
    }
    for session in &mut sessions {
        session
            .slowest
            .sort_by_key(|(_, ns)| std::cmp::Reverse(*ns));
        session.slowest.truncate(SLOWEST_WAVES);
    }
    sessions.sort_by_key(|s| (s.enter_ns, s.span_id));
    sessions
}

fn worker_busy_list(wave: &InspectSpan) -> Vec<u64> {
    wave.attrs
        .get("workers_busy_ns")
        .map(|list| {
            list.split(',')
                .filter_map(|tok| tok.trim().parse().ok())
                .collect()
        })
        .unwrap_or_default()
}

fn build_workers(spans: &[InspectSpan]) -> Vec<WorkerForensics> {
    let mut workers: Vec<WorkerForensics> = Vec::new();
    for wave in spans.iter().filter(|s| s.level == "wave") {
        for (i, busy) in worker_busy_list(wave).into_iter().enumerate() {
            if workers.len() <= i {
                workers.push(WorkerForensics {
                    index: workers.len(),
                    busy_ns: 0,
                    waves: 0,
                });
            }
            workers[i].busy_ns += busy;
            workers[i].waves += 1;
        }
    }
    workers
}

fn build_critical_path_series(spans: &[InspectSpan]) -> Vec<CriticalPathSeries> {
    let voltage_of: BTreeMap<u64, String> = spans
        .iter()
        .filter(|s| s.level == "session")
        .map(|s| (s.id, session_voltage(s)))
        .collect();
    // The live histogram accumulates its f64 sum in observation order;
    // span ids are assigned in that same order, so replaying waves sorted
    // by id reproduces the accumulation (and its rounding) exactly.
    let mut waves: Vec<&InspectSpan> = spans.iter().filter(|s| s.level == "wave").collect();
    waves.sort_by_key(|s| s.id);
    let mut series: Vec<CriticalPathSeries> = Vec::new();
    for wave in waves {
        let Some(voltage) = voltage_of.get(&wave.parent) else {
            continue;
        };
        let Some(critical_ns) = wave.attr_u64("critical_path_ns") else {
            continue;
        };
        let slot = match series.iter_mut().find(|s| &s.voltage == voltage) {
            Some(slot) => slot,
            None => {
                series.push(CriticalPathSeries {
                    voltage: voltage.clone(),
                    count: 0,
                    sum_seconds: 0.0,
                });
                series.last_mut().expect("just pushed")
            }
        };
        slot.count += 1;
        slot.sum_seconds += critical_ns as f64 / 1e9;
    }
    series.sort_by(|a, b| a.voltage.cmp(&b.voltage));
    series
}

impl InspectReport {
    /// Total busy nanoseconds across every worker (exact integer sum).
    pub fn total_busy_ns(&self) -> u64 {
        self.workers.iter().map(|w| w.busy_ns).sum()
    }

    /// Renders the human forensic report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== repro inspect: {} ==", self.dir.display());
        let _ = writeln!(
            out,
            "sources: {} spans, {} event lines, journal {}",
            self.spans.len(),
            self.event_lines,
            match &self.journal {
                Some(j) => format!("{} bytes", j.bytes),
                None => "absent".to_string(),
            }
        );

        if let Some(journal) = &self.journal {
            let _ = writeln!(out, "\n-- journal --");
            let _ = writeln!(
                out,
                "sessions {}, trials {}, retries {}, quarantined {}",
                journal.sessions, journal.trials, journal.retries, journal.quarantined
            );
            for (verdict, n) in &journal.verdicts {
                let _ = writeln!(out, "  verdict {verdict}: {n}");
            }
        }

        if !self.sessions.is_empty() {
            let _ = writeln!(out, "\n-- sessions: wave critical-path breakdown --");
            for s in &self.sessions {
                let _ = writeln!(
                    out,
                    "session {} (span {}): {} waves, planned {}, absorbed {}, \
                     retries {}, quarantined {}",
                    s.voltage, s.span_id, s.waves, s.planned, s.absorbed, s.retries, s.quarantined
                );
                let _ = writeln!(
                    out,
                    "  host {:.3} ms, critical path {:.3} ms, wall {:.3} ms, \
                     utilization {:.1}%",
                    s.host_ns as f64 / 1e6,
                    s.critical_path_ns as f64 / 1e6,
                    s.wall_ns as f64 / 1e6,
                    s.utilization() * 100.0
                );
                for (name, ns) in &s.slowest {
                    let _ = writeln!(out, "  slowest: {name} {:.3} ms", *ns as f64 / 1e6);
                }
            }
        }

        if !self.workers.is_empty() {
            let _ = writeln!(out, "\n-- worker utilization --");
            let total = self.total_busy_ns().max(1);
            for w in &self.workers {
                let _ = writeln!(
                    out,
                    "worker {}: busy {:.9} s over {} waves ({:.1}% of pool busy time)",
                    w.index,
                    w.busy_seconds(),
                    w.waves,
                    w.busy_ns as f64 / total as f64 * 100.0
                );
            }
        }

        let quantile_line = |out: &mut String, label: &str, q: &Option<QuantileSummary>| {
            if let Some(q) = q {
                let _ = writeln!(
                    out,
                    "{label}: n={} min={:.6} p50={:.6} p90={:.6} p99={:.6} max={:.6}",
                    q.n, q.min, q.p50, q.p90, q.p99, q.max
                );
            }
        };
        if self.wave_duration.is_some() || self.critical_path.is_some() || self.trial_wall.is_some()
        {
            let _ = writeln!(out, "\n-- exact latency quantiles --");
            quantile_line(&mut out, "wave host seconds", &self.wave_duration);
            quantile_line(&mut out, "wave critical-path seconds", &self.critical_path);
            quantile_line(&mut out, "trial wall sim-seconds", &self.trial_wall);
        }

        if !self.edac.is_empty() {
            let _ = writeln!(out, "\n-- EDAC attribution (domain / array) --");
            for e in &self.edac {
                let _ = writeln!(
                    out,
                    "{} / {}: CE {}, UE {}",
                    e.domain, e.array, e.corrected, e.uncorrected
                );
            }
        }

        if !self.workers.is_empty() || !self.critical_path_series.is_empty() {
            let _ = writeln!(out, "\n-- live-metric reconstruction (exact) --");
            for w in &self.workers {
                let _ = writeln!(
                    out,
                    "worker_busy_seconds{{worker=\"{}\"}} = {:e}",
                    w.index,
                    w.busy_seconds()
                );
            }
            for s in &self.critical_path_series {
                let _ = writeln!(
                    out,
                    "wave_critical_path_sum{{voltage=\"{}\"}} = {:e} (count {})",
                    s.voltage, s.sum_seconds, s.count
                );
            }
        }
        out
    }

    /// Renders collapsed stacks (`a;b;c self_ns`, one line per span with
    /// nonzero self time) for flamegraph tooling. Semicolons inside span
    /// names become commas so the separator stays unambiguous.
    pub fn folded(&self) -> String {
        let by_id: BTreeMap<u64, &InspectSpan> = self.spans.iter().map(|s| (s.id, s)).collect();
        let mut child_ns: BTreeMap<u64, u64> = BTreeMap::new();
        for span in &self.spans {
            *child_ns.entry(span.parent).or_default() += span.duration_ns();
        }
        let mut out = String::new();
        for span in &self.spans {
            let self_ns = span
                .duration_ns()
                .saturating_sub(child_ns.get(&span.id).copied().unwrap_or(0));
            if self_ns == 0 {
                continue;
            }
            let mut path = vec![span.name.replace(';', ",")];
            let mut cursor = span.parent;
            // Depth cap guards against a cyclic (hand-corrupted) file.
            for _ in 0..16 {
                let Some(parent) = by_id.get(&cursor) else {
                    break;
                };
                path.push(parent.name.replace(';', ","));
                cursor = parent.parent;
            }
            path.reverse();
            let _ = writeln!(out, "{} {self_ns}", path.join(";"));
        }
        out
    }
}

/// Renders the headline deltas between two runs, `a` first.
pub fn render_diff(a: &InspectReport, b: &InspectReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== repro inspect --diff ==\nA: {}\nB: {}",
        a.dir.display(),
        b.dir.display()
    );
    let count =
        |r: &InspectReport, f: fn(&SessionForensics) -> u64| r.sessions.iter().map(f).sum::<u64>();
    let lines: Vec<(&str, f64, f64)> = vec![
        ("sessions", a.sessions.len() as f64, b.sessions.len() as f64),
        (
            "waves",
            count(a, |s| s.waves) as f64,
            count(b, |s| s.waves) as f64,
        ),
        (
            "planned trials",
            count(a, |s| s.planned) as f64,
            count(b, |s| s.planned) as f64,
        ),
        (
            "absorbed trials",
            count(a, |s| s.absorbed) as f64,
            count(b, |s| s.absorbed) as f64,
        ),
        (
            "worker busy seconds",
            a.total_busy_ns() as f64 / 1e9,
            b.total_busy_ns() as f64 / 1e9,
        ),
        (
            "journal trials",
            a.journal.as_ref().map_or(0.0, |j| j.trials as f64),
            b.journal.as_ref().map_or(0.0, |j| j.trials as f64),
        ),
        (
            "EDAC corrected",
            a.edac.iter().map(|e| e.corrected).sum::<u64>() as f64,
            b.edac.iter().map(|e| e.corrected).sum::<u64>() as f64,
        ),
        (
            "EDAC uncorrected",
            a.edac.iter().map(|e| e.uncorrected).sum::<u64>() as f64,
            b.edac.iter().map(|e| e.uncorrected).sum::<u64>() as f64,
        ),
    ];
    for (label, va, vb) in lines {
        let _ = writeln!(out, "{label}: {va} -> {vb} (delta {})", vb - va);
    }
    let voltages: std::collections::BTreeSet<&str> = a
        .critical_path_series
        .iter()
        .chain(&b.critical_path_series)
        .map(|s| s.voltage.as_str())
        .collect();
    for voltage in voltages {
        let pick = |r: &InspectReport| {
            r.critical_path_series
                .iter()
                .find(|s| s.voltage == voltage)
                .map_or(0.0, |s| s.sum_seconds)
        };
        let (va, vb) = (pick(a), pick(b));
        let _ = writeln!(
            out,
            "critical path sum @ {voltage}: {va:.6} -> {vb:.6} (delta {:.6})",
            vb - va
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(
        level: &str,
        id: u64,
        parent: u64,
        name: &str,
        enter: u64,
        exit: u64,
        attrs: &[(&str, &str)],
    ) -> InspectSpan {
        InspectSpan {
            level: level.to_string(),
            id,
            parent,
            name: name.to_string(),
            enter_ns: enter,
            exit_ns: exit,
            attrs: attrs
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }

    fn sample_spans() -> Vec<InspectSpan> {
        vec![
            span("campaign", 1, 0, "campaign", 0, 1000, &[]),
            span("session", 2, 1, "session 920mV@2.4 GHz", 10, 500, &[]),
            span(
                "wave",
                3,
                2,
                "wave@0",
                20,
                120,
                &[
                    ("planned", "8"),
                    ("absorbed", "6"),
                    ("critical_path_ns", "90"),
                    ("wall_ns", "100"),
                    ("workers_busy_ns", "90,60"),
                ],
            ),
            span(
                "wave",
                4,
                2,
                "wave@6",
                130,
                330,
                &[
                    ("planned", "8"),
                    ("absorbed", "8"),
                    ("critical_path_ns", "180"),
                    ("wall_ns", "200"),
                    ("workers_busy_ns", "150,180"),
                ],
            ),
        ]
    }

    #[test]
    fn sessions_aggregate_their_waves() {
        let sessions = build_sessions(&sample_spans());
        assert_eq!(sessions.len(), 1);
        let s = &sessions[0];
        assert_eq!(s.voltage, "920mV@2.4 GHz");
        assert_eq!(s.waves, 2);
        assert_eq!(s.planned, 16);
        assert_eq!(s.absorbed, 14);
        assert_eq!(s.critical_path_ns, 270);
        assert_eq!(s.wall_ns, 300);
        assert_eq!(s.worker_busy_ns, vec![240, 240]);
        assert_eq!(s.slowest[0].0, "wave@6", "slowest wave first");
    }

    #[test]
    fn workers_sum_exact_integer_nanos() {
        let workers = build_workers(&sample_spans());
        assert_eq!(workers.len(), 2);
        assert_eq!(workers[0].busy_ns, 240);
        assert_eq!(workers[1].busy_ns, 240);
        assert_eq!(workers[0].busy_seconds(), 240.0 / 1e9);
    }

    #[test]
    fn critical_path_series_accumulates_in_id_order() {
        let series = build_critical_path_series(&sample_spans());
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].count, 2);
        // Sequential accumulation: (90/1e9) + (180/1e9), in that order.
        assert_eq!(series[0].sum_seconds, 90.0 / 1e9 + 180.0 / 1e9);
    }

    #[test]
    fn nearest_rank_quantiles_are_exact() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(exact_quantile(&sorted, 0.0), 1.0);
        assert_eq!(exact_quantile(&sorted, 0.25), 1.0);
        assert_eq!(exact_quantile(&sorted, 0.5), 2.0);
        assert_eq!(exact_quantile(&sorted, 0.75), 3.0);
        assert_eq!(exact_quantile(&sorted, 0.76), 4.0);
        assert_eq!(exact_quantile(&sorted, 1.0), 4.0);
        assert_eq!(exact_quantile(&[7.0], 0.5), 7.0);
    }

    #[test]
    fn folded_output_is_rooted_and_weighted_by_self_time() {
        let report = InspectReport {
            dir: PathBuf::from("x"),
            spans: sample_spans(),
            sessions: Vec::new(),
            workers: Vec::new(),
            critical_path_series: Vec::new(),
            wave_duration: None,
            critical_path: None,
            trial_wall: None,
            edac: Vec::new(),
            journal: None,
            event_lines: 0,
        };
        let folded = report.folded();
        let lines: Vec<&str> = folded.lines().collect();
        assert!(lines.contains(&"campaign;session 920mV@2.4 GHz;wave@0 100"));
        assert!(lines.contains(&"campaign;session 920mV@2.4 GHz;wave@6 200"));
        // session self time: 490 - (100 + 200) = 190.
        assert!(lines.contains(&"campaign;session 920mV@2.4 GHz 190"));
        // campaign self time: 1000 - 490 = 510.
        assert!(lines.contains(&"campaign 510"));
        for line in lines {
            let (stack, weight) = line.rsplit_once(' ').expect("weighted line");
            assert!(!stack.is_empty());
            weight.parse::<u64>().expect("integer weight");
        }
    }

    #[test]
    fn inspecting_an_empty_dir_is_an_error() {
        let dir = std::env::temp_dir().join(format!("serscale-inspect-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let err = inspect_dir(&dir).unwrap_err();
        assert!(err.contains("no journal.jsonl"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
