//! JSON wire format for platform specs: the mapping behind
//! `repro --platform <file>` and the `POST /campaigns` `"platform"`
//! field's future file-based cousin.
//!
//! The shape mirrors [`crate::control`]'s campaign-spec mapping: a parsed
//! JSON document is lowered field-by-field onto the permissive
//! [`RawPlatformSpec`] carrier (unknown keys are rejected so a typo'd
//! field cannot silently fall back to a default), and all *value*
//! judgment lives in `PlatformSpec::try_from` in `serscale-soc`.
//! [`platform_to_json`] renders the normalization inverse: parsing its
//! output reproduces the validated spec exactly, the property the schema
//! fuzz suite pins for both built-in platforms.

use std::collections::BTreeMap;

use serscale_soc::spec::{
    RawArraySpec, RawCampaignPointSpec, RawPhysicsSpec, RawPowerSpec, RawRailSpec, RawVminAnchors,
};
use serscale_soc::{PlatformSpec, RawPlatformSpec, SpecError};

use crate::json::{self, JsonValue};

/// Parses and validates a JSON platform document.
///
/// # Errors
///
/// A [`SpecError`] naming the offending field: JSON syntax errors come
/// back on the pseudo-field `body`, type errors and unknown fields on
/// their dotted path, and range errors from the soc schema's `TryFrom`.
pub fn parse_platform(body: &str) -> Result<PlatformSpec, SpecError> {
    let doc =
        json::parse(body).map_err(|e| SpecError::new("body", format!("not valid JSON: {e}")))?;
    let raw = raw_platform_from_json(&doc)?;
    PlatformSpec::try_from(raw)
}

fn kind(value: &JsonValue) -> &'static str {
    match value {
        JsonValue::Null => "null",
        JsonValue::Bool(_) => "a boolean",
        JsonValue::Number(_) => "a number",
        JsonValue::String(_) => "a string",
        JsonValue::Array(_) => "an array",
        JsonValue::Object(_) => "an object",
    }
}

fn want_number(field: &str, value: &JsonValue) -> Result<f64, SpecError> {
    value
        .as_f64()
        .ok_or_else(|| SpecError::new(field, format!("expected a number, got {}", kind(value))))
}

fn want_string(field: &str, value: &JsonValue) -> Result<String, SpecError> {
    value
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| SpecError::new(field, format!("expected a string, got {}", kind(value))))
}

fn want_object<'a>(
    field: &str,
    value: &'a JsonValue,
) -> Result<&'a BTreeMap<String, JsonValue>, SpecError> {
    match value {
        JsonValue::Object(map) => Ok(map),
        other => Err(SpecError::new(
            field,
            format!("expected an object, got {}", kind(other)),
        )),
    }
}

fn want_array<'a>(field: &str, value: &'a JsonValue) -> Result<&'a Vec<JsonValue>, SpecError> {
    match value {
        JsonValue::Array(items) => Ok(items),
        other => Err(SpecError::new(
            field,
            format!("expected an array, got {}", kind(other)),
        )),
    }
}

fn unknown_field(field: &str, known: &str) -> SpecError {
    SpecError::new(field, format!("unknown field; known fields are {known}"))
}

fn rail_from_json(field: &str, doc: &JsonValue) -> Result<RawRailSpec, SpecError> {
    let mut raw = RawRailSpec::default();
    for (key, value) in want_object(field, doc)? {
        let path = format!("{field}.{key}");
        match key.as_str() {
            "nominal_mv" => raw.nominal_mv = Some(want_number(&path, value)?),
            "floor_mv" => raw.floor_mv = Some(want_number(&path, value)?),
            _ => return Err(unknown_field(&path, "nominal_mv, floor_mv")),
        }
    }
    Ok(raw)
}

fn array_from_json(at: usize, doc: &JsonValue) -> Result<RawArraySpec, SpecError> {
    let field = format!("arrays[{at}]");
    let mut raw = RawArraySpec::default();
    for (key, value) in want_object(&field, doc)? {
        let path = format!("{field}.{key}");
        match key.as_str() {
            "kind" => raw.kind = Some(want_string(&path, value)?),
            "scope" => raw.scope = Some(want_string(&path, value)?),
            "bytes" => raw.bytes = Some(want_number(&path, value)?),
            "entries" => raw.entries = Some(want_number(&path, value)?),
            "protection" => raw.protection = Some(want_string(&path, value)?),
            "interleave" => raw.interleave = Some(want_number(&path, value)?),
            "note" => raw.note = Some(want_string(&path, value)?),
            _ => {
                return Err(unknown_field(
                    &path,
                    "kind, scope, bytes, entries, protection, interleave, note",
                ))
            }
        }
    }
    Ok(raw)
}

fn campaign_point_from_json(at: usize, doc: &JsonValue) -> Result<RawCampaignPointSpec, SpecError> {
    let field = format!("campaign[{at}]");
    let mut raw = RawCampaignPointSpec::default();
    for (key, value) in want_object(&field, doc)? {
        let path = format!("{field}.{key}");
        match key.as_str() {
            "label" => raw.label = Some(want_string(&path, value)?),
            "pmd_mv" => raw.pmd_mv = Some(want_number(&path, value)?),
            "soc_mv" => raw.soc_mv = Some(want_number(&path, value)?),
            "freq_mhz" => raw.freq_mhz = Some(want_number(&path, value)?),
            "minutes" => raw.minutes = Some(want_number(&path, value)?),
            _ => {
                return Err(unknown_field(
                    &path,
                    "label, pmd_mv, soc_mv, freq_mhz, minutes",
                ))
            }
        }
    }
    Ok(raw)
}

fn vmin_from_json(doc: &JsonValue) -> Result<RawVminAnchors, SpecError> {
    let mut raw = RawVminAnchors::default();
    for (key, value) in want_object("vmin", doc)? {
        let path = format!("vmin.{key}");
        match key.as_str() {
            "low_freq_mhz" => raw.low_freq_mhz = Some(want_number(&path, value)?),
            "low_mv" => raw.low_mv = Some(want_number(&path, value)?),
            "high_freq_mhz" => raw.high_freq_mhz = Some(want_number(&path, value)?),
            "high_mv" => raw.high_mv = Some(want_number(&path, value)?),
            _ => {
                return Err(unknown_field(
                    &path,
                    "low_freq_mhz, low_mv, high_freq_mhz, high_mv",
                ))
            }
        }
    }
    Ok(raw)
}

fn physics_from_json(doc: &JsonValue) -> Result<RawPhysicsSpec, SpecError> {
    let mut raw = RawPhysicsSpec::default();
    for (key, value) in want_object("physics", doc)? {
        let path = format!("physics.{key}");
        let slot = match key.as_str() {
            "sram_sigma_bit_cm2" => &mut raw.sram_sigma_bit_cm2,
            "sram_voltage_sensitivity" => &mut raw.sram_voltage_sensitivity,
            "mbu_p_extra" => &mut raw.mbu_p_extra,
            "mbu_max_cluster" => &mut raw.mbu_max_cluster,
            "logic_sigma_ctrl_cm2" => &mut raw.logic_sigma_ctrl_cm2,
            "logic_sigma_data_cm2" => &mut raw.logic_sigma_data_cm2,
            "logic_voltage_sensitivity" => &mut raw.logic_voltage_sensitivity,
            "logic_amplification" => &mut raw.logic_amplification,
            "logic_margin_tau_mv" => &mut raw.logic_margin_tau_mv,
            "logic_frequency_gamma" => &mut raw.logic_frequency_gamma,
            "timing_vc_at_fmax_mv" => &mut raw.timing_vc_at_fmax_mv,
            "timing_slope_mv_per_mhz" => &mut raw.timing_slope_mv_per_mhz,
            "timing_sigma_at_fmax_mv" => &mut raw.timing_sigma_at_fmax_mv,
            "timing_sigma_slope_mv" => &mut raw.timing_sigma_slope_mv,
            "detect_tlb" => &mut raw.detect_tlb,
            "detect_l1" => &mut raw.detect_l1,
            "detect_l2" => &mut raw.detect_l2,
            "detect_l3" => &mut raw.detect_l3,
            _ => {
                return Err(unknown_field(
                    &path,
                    "the physics calibration constants (see RawPhysicsSpec)",
                ))
            }
        };
        *slot = Some(want_number(&path, value)?);
    }
    Ok(raw)
}

fn power_from_json(doc: &JsonValue) -> Result<RawPowerSpec, SpecError> {
    let mut raw = RawPowerSpec::default();
    for (key, value) in want_object("power", doc)? {
        let path = format!("power.{key}");
        let slot = match key.as_str() {
            "pmd_dynamic_w" => &mut raw.pmd_dynamic_w,
            "pmd_static_w" => &mut raw.pmd_static_w,
            "soc_dynamic_w" => &mut raw.soc_dynamic_w,
            "soc_static_w" => &mut raw.soc_static_w,
            _ => {
                return Err(unknown_field(
                    &path,
                    "pmd_dynamic_w, pmd_static_w, soc_dynamic_w, soc_static_w",
                ))
            }
        };
        *slot = Some(want_number(&path, value)?);
    }
    Ok(raw)
}

/// Maps a parsed JSON document onto the permissive platform carrier.
/// Unknown fields are rejected; value validation happens later in
/// `PlatformSpec::try_from`.
///
/// # Errors
///
/// A [`SpecError`] for non-object documents, unknown fields, or
/// wrongly-typed values.
pub fn raw_platform_from_json(doc: &JsonValue) -> Result<RawPlatformSpec, SpecError> {
    let JsonValue::Object(map) = doc else {
        return Err(SpecError::new(
            "body",
            format!("expected a JSON object, got {}", kind(doc)),
        ));
    };
    let mut raw = RawPlatformSpec::default();
    for (key, value) in map {
        match key.as_str() {
            "name" => raw.name = Some(want_string("name", value)?),
            "description" => raw.description = Some(want_string("description", value)?),
            "isa" => raw.isa = Some(want_string("isa", value)?),
            "pipeline" => raw.pipeline = Some(want_string("pipeline", value)?),
            "technology" => raw.technology = Some(want_string("technology", value)?),
            "cores" => raw.cores = Some(want_number("cores", value)?),
            "cores_per_pmd" => raw.cores_per_pmd = Some(want_number("cores_per_pmd", value)?),
            "tlb_entry_bytes" => {
                raw.tlb_entry_bytes = Some(want_number("tlb_entry_bytes", value)?);
            }
            "arrays" => {
                let items = want_array("arrays", value)?;
                let mut arrays = Vec::with_capacity(items.len());
                for (at, item) in items.iter().enumerate() {
                    arrays.push(array_from_json(at, item)?);
                }
                raw.arrays = Some(arrays);
            }
            "pmd_rail" => raw.pmd_rail = Some(rail_from_json("pmd_rail", value)?),
            "soc_rail" => raw.soc_rail = Some(rail_from_json("soc_rail", value)?),
            "standby_mv" => raw.standby_mv = Some(want_number("standby_mv", value)?),
            "freq_min_mhz" => raw.freq_min_mhz = Some(want_number("freq_min_mhz", value)?),
            "freq_max_mhz" => raw.freq_max_mhz = Some(want_number("freq_max_mhz", value)?),
            "campaign" => {
                let items = want_array("campaign", value)?;
                let mut points = Vec::with_capacity(items.len());
                for (at, item) in items.iter().enumerate() {
                    points.push(campaign_point_from_json(at, item)?);
                }
                raw.campaign = Some(points);
            }
            "vmin" => raw.vmin = Some(vmin_from_json(value)?),
            "physics" => raw.physics = Some(physics_from_json(value)?),
            "power" => raw.power = Some(power_from_json(value)?),
            "dvfs_floor_mv" => raw.dvfs_floor_mv = Some(want_number("dvfs_floor_mv", value)?),
            "sweep_floor_mv" => raw.sweep_floor_mv = Some(want_number("sweep_floor_mv", value)?),
            unknown => {
                return Err(SpecError::new(
                    if unknown.is_empty() { "body" } else { unknown },
                    format!(
                        "unknown field {unknown:?}; known fields are name, description, isa, \
                         pipeline, technology, cores, cores_per_pmd, tlb_entry_bytes, arrays, \
                         pmd_rail, soc_rail, standby_mv, freq_min_mhz, freq_max_mhz, campaign, \
                         vmin, physics, power, dvfs_floor_mv, sweep_floor_mv"
                    ),
                ));
            }
        }
    }
    Ok(raw)
}

fn push_str_field(out: &mut String, key: &str, value: &Option<String>) {
    if let Some(value) = value {
        if !out.ends_with('{') {
            out.push(',');
        }
        out.push_str(&format!("\"{key}\":{}", json::escape(value)));
    }
}

fn push_num_field(out: &mut String, key: &str, value: Option<f64>) {
    if let Some(value) = value {
        if !out.ends_with('{') {
            out.push(',');
        }
        out.push_str(&format!("\"{key}\":{}", json::number(value)));
    }
}

fn rail_json(raw: &RawRailSpec) -> String {
    let mut out = String::from("{");
    push_num_field(&mut out, "nominal_mv", raw.nominal_mv);
    push_num_field(&mut out, "floor_mv", raw.floor_mv);
    out.push('}');
    out
}

/// Renders a validated platform spec back to its normalized JSON
/// document. A round-trip through [`parse_platform`] reproduces the spec
/// exactly — the property the platform schema fuzz suite pins for both
/// built-ins.
pub fn platform_to_json(spec: &PlatformSpec) -> String {
    let raw = RawPlatformSpec::from(spec);
    let mut out = String::from("{");
    push_str_field(&mut out, "name", &raw.name);
    push_str_field(&mut out, "description", &raw.description);
    push_str_field(&mut out, "isa", &raw.isa);
    push_str_field(&mut out, "pipeline", &raw.pipeline);
    push_str_field(&mut out, "technology", &raw.technology);
    push_num_field(&mut out, "cores", raw.cores);
    push_num_field(&mut out, "cores_per_pmd", raw.cores_per_pmd);
    push_num_field(&mut out, "tlb_entry_bytes", raw.tlb_entry_bytes);
    if let Some(arrays) = &raw.arrays {
        out.push_str(",\"arrays\":[");
        for (at, a) in arrays.iter().enumerate() {
            if at > 0 {
                out.push(',');
            }
            let mut entry = String::from("{");
            push_str_field(&mut entry, "kind", &a.kind);
            push_str_field(&mut entry, "scope", &a.scope);
            push_num_field(&mut entry, "bytes", a.bytes);
            push_num_field(&mut entry, "entries", a.entries);
            push_str_field(&mut entry, "protection", &a.protection);
            push_num_field(&mut entry, "interleave", a.interleave);
            push_str_field(&mut entry, "note", &a.note);
            entry.push('}');
            out.push_str(&entry);
        }
        out.push(']');
    }
    if let Some(rail) = &raw.pmd_rail {
        out.push_str(&format!(",\"pmd_rail\":{}", rail_json(rail)));
    }
    if let Some(rail) = &raw.soc_rail {
        out.push_str(&format!(",\"soc_rail\":{}", rail_json(rail)));
    }
    push_num_field(&mut out, "standby_mv", raw.standby_mv);
    push_num_field(&mut out, "freq_min_mhz", raw.freq_min_mhz);
    push_num_field(&mut out, "freq_max_mhz", raw.freq_max_mhz);
    if let Some(points) = &raw.campaign {
        out.push_str(",\"campaign\":[");
        for (at, c) in points.iter().enumerate() {
            if at > 0 {
                out.push(',');
            }
            let mut entry = String::from("{");
            push_str_field(&mut entry, "label", &c.label);
            push_num_field(&mut entry, "pmd_mv", c.pmd_mv);
            push_num_field(&mut entry, "soc_mv", c.soc_mv);
            push_num_field(&mut entry, "freq_mhz", c.freq_mhz);
            push_num_field(&mut entry, "minutes", c.minutes);
            entry.push('}');
            out.push_str(&entry);
        }
        out.push(']');
    }
    if let Some(vmin) = &raw.vmin {
        let mut entry = String::from("{");
        push_num_field(&mut entry, "low_freq_mhz", vmin.low_freq_mhz);
        push_num_field(&mut entry, "low_mv", vmin.low_mv);
        push_num_field(&mut entry, "high_freq_mhz", vmin.high_freq_mhz);
        push_num_field(&mut entry, "high_mv", vmin.high_mv);
        entry.push('}');
        out.push_str(&format!(",\"vmin\":{entry}"));
    }
    if let Some(p) = &raw.physics {
        let mut entry = String::from("{");
        push_num_field(&mut entry, "sram_sigma_bit_cm2", p.sram_sigma_bit_cm2);
        push_num_field(
            &mut entry,
            "sram_voltage_sensitivity",
            p.sram_voltage_sensitivity,
        );
        push_num_field(&mut entry, "mbu_p_extra", p.mbu_p_extra);
        push_num_field(&mut entry, "mbu_max_cluster", p.mbu_max_cluster);
        push_num_field(&mut entry, "logic_sigma_ctrl_cm2", p.logic_sigma_ctrl_cm2);
        push_num_field(&mut entry, "logic_sigma_data_cm2", p.logic_sigma_data_cm2);
        push_num_field(
            &mut entry,
            "logic_voltage_sensitivity",
            p.logic_voltage_sensitivity,
        );
        push_num_field(&mut entry, "logic_amplification", p.logic_amplification);
        push_num_field(&mut entry, "logic_margin_tau_mv", p.logic_margin_tau_mv);
        push_num_field(&mut entry, "logic_frequency_gamma", p.logic_frequency_gamma);
        push_num_field(&mut entry, "timing_vc_at_fmax_mv", p.timing_vc_at_fmax_mv);
        push_num_field(
            &mut entry,
            "timing_slope_mv_per_mhz",
            p.timing_slope_mv_per_mhz,
        );
        push_num_field(
            &mut entry,
            "timing_sigma_at_fmax_mv",
            p.timing_sigma_at_fmax_mv,
        );
        push_num_field(&mut entry, "timing_sigma_slope_mv", p.timing_sigma_slope_mv);
        push_num_field(&mut entry, "detect_tlb", p.detect_tlb);
        push_num_field(&mut entry, "detect_l1", p.detect_l1);
        push_num_field(&mut entry, "detect_l2", p.detect_l2);
        push_num_field(&mut entry, "detect_l3", p.detect_l3);
        entry.push('}');
        out.push_str(&format!(",\"physics\":{entry}"));
    }
    if let Some(p) = &raw.power {
        let mut entry = String::from("{");
        push_num_field(&mut entry, "pmd_dynamic_w", p.pmd_dynamic_w);
        push_num_field(&mut entry, "pmd_static_w", p.pmd_static_w);
        push_num_field(&mut entry, "soc_dynamic_w", p.soc_dynamic_w);
        push_num_field(&mut entry, "soc_static_w", p.soc_static_w);
        entry.push('}');
        out.push_str(&format!(",\"power\":{entry}"));
    }
    push_num_field(&mut out, "dvfs_floor_mv", raw.dvfs_floor_mv);
    push_num_field(&mut out, "sweep_floor_mv", raw.sweep_floor_mv);
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_round_trip_through_the_json_wire() {
        for name in PlatformSpec::BUILTIN_NAMES {
            let spec = PlatformSpec::builtin(name).expect("builtin");
            let rendered = platform_to_json(&spec);
            let reparsed = parse_platform(&rendered)
                .unwrap_or_else(|e| panic!("{name} failed to reparse: {e}\n{rendered}"));
            assert_eq!(reparsed, spec, "{name} must round-trip byte-faithfully");
        }
    }

    #[test]
    fn unknown_fields_are_rejected() {
        let err = parse_platform("{\"cpus\":8}").expect_err("typo field");
        assert_eq!(err.field, "cpus");
        assert!(err.reason.contains("known fields"), "{err}");
    }

    #[test]
    fn non_json_bodies_land_on_the_body_field() {
        for body in ["[1]", "7", "not json", ""] {
            let err = parse_platform(body).expect_err(body);
            assert_eq!(err.field, "body", "{body} → {err}");
        }
    }
}
