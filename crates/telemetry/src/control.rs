//! Campaign-as-a-service: the read-write control plane behind
//! `POST /campaigns`.
//!
//! [`ControlPlane`] turns the one-shot campaign engine into a long-lived
//! multi-tenant service: JSON specs are validated through
//! [`serscale_core::spec`]'s `TryFrom<RawCampaignSpec>` schema, queued on
//! a [`FairQueue`] (FIFO within a tenant, round-robin across tenants) and
//! executed by a small pool of runner threads, several campaigns at a
//! time.
//!
//! ## Per-campaign isolation
//!
//! Every job owns a private [`TelemetrySink`] (its own metrics registry,
//! tracer, event stream and progress state), its own journal directory
//! and its own RNG root (the spec's seed — every stream below it is
//! counter-derived). Nothing about a job's execution reads another job's
//! state, which is why a report produced under concurrency is
//! bit-identical to the same spec run solo: `tests/control_plane.rs`
//! asserts exactly that, byte for byte, against the one-shot CLI path.
//!
//! ## Cancellation and resume
//!
//! `DELETE /campaigns/{id}` fires the job's
//! [`CancelToken`]; the engine observes it at the next wave boundary
//! ([`Campaign::try_run_recoverable`]), where the journal is synced and
//! resumable. Resubmitting the same spec with `"resume": <id>` re-opens
//! the cancelled job's journal through
//! [`start_or_resume`] and reproduces the uninterrupted report bit for
//! bit — cancellation deliberately rides the crash-recovery path instead
//! of inventing a second lifecycle.
//!
//! ## Quarantine
//!
//! A panicking campaign (engine assertion, poisoned journal directory)
//! is caught on its runner thread, marked `failed`, and the runner moves
//! on — one tenant's pathological spec cannot stall another tenant's
//! queue. This mirrors the worker pool's drain-then-resume semantics one
//! level up.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use serscale_core::campaign::{Campaign, CampaignRunOptions};
use serscale_core::journal::{config_fingerprint, journal_path, start_or_resume};
use serscale_core::report::golden_summary;
use serscale_core::scheduler::{CancelToken, Cancelled, FairQueue};
use serscale_core::session::RetryPolicy;
use serscale_core::spec::{CampaignSpec, RawCampaignSpec, RawSessionSpec, SpecError};

use crate::export::{TelemetryOptions, TelemetrySink};
use crate::json::{self, JsonValue};

/// Upper bound on queued + live jobs a control plane will hold before
/// refusing submissions (backpressure, and a memory bound: job state is
/// kept for the server's lifetime so reports stay fetchable).
const MAX_JOBS: usize = 1024;

/// Tuning for a [`ControlPlane`].
#[derive(Debug, Clone, Default)]
pub struct ControlPlaneOptions {
    /// Runner threads, i.e. campaigns executing concurrently
    /// (`0` = default of 2).
    pub max_concurrent: usize,
    /// Worker threads per campaign when the spec does not override
    /// (`0` = default of 1).
    pub default_jobs: usize,
    /// Directory for per-job journals (`state/job-<id>/`). Without one,
    /// jobs run unjournaled and cancelled jobs cannot be resumed.
    pub state_dir: Option<PathBuf>,
    /// Start with the queue paused: jobs are accepted but no runner picks
    /// one up until [`ControlPlane::set_paused`]`(false)`. Lets tests
    /// (and operators) stage a backlog deterministically.
    pub start_paused: bool,
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobState {
    Queued,
    Running,
    /// Cancel requested while running; the engine will stop at the next
    /// wave boundary.
    Cancelling,
    Done,
    Cancelled,
    Failed,
}

impl JobState {
    fn label(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Cancelling => "cancelling",
            JobState::Done => "done",
            JobState::Cancelled => "cancelled",
            JobState::Failed => "failed",
        }
    }

    fn terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Cancelled | JobState::Failed
        )
    }
}

struct JobEntry {
    spec: CampaignSpec,
    state: JobState,
    cancel: CancelToken,
    /// The job's private telemetry: own registry, tracer, event stream.
    sink: Arc<TelemetrySink>,
    journal_dir: Option<PathBuf>,
    resumed_trials: u64,
    /// The bit-stable golden report, once the job is done.
    report: Option<String>,
    error: Option<String>,
    /// Failure-injection flag (see [`ControlPlane::submit_poison`]).
    poison: bool,
    /// Completion sequence number (order across all jobs), once terminal.
    completed_seq: Option<u64>,
    /// When the job entered the fair queue (host clock; attribution only,
    /// never part of the deterministic artifacts).
    queued_at: Instant,
    /// When a runner dequeued the job, once it has.
    started_at: Option<Instant>,
    /// When the job reached a terminal state, once it has.
    finished_at: Option<Instant>,
}

struct Shared {
    queue: FairQueue<u64>,
    jobs: BTreeMap<u64, JobEntry>,
    next_id: u64,
    next_completed: u64,
    /// Most recently started (running) job, for the `/campaign` alias.
    last_started: Option<u64>,
    paused: bool,
    shutdown: bool,
}

struct ControlInner {
    state: Mutex<Shared>,
    wake: Condvar,
    default_jobs: usize,
    state_dir: Option<PathBuf>,
    /// Server-level sink for fleet counters (`campaigns_submitted_total`
    /// etc.); per-job telemetry lives in each job's own sink.
    metrics: Mutex<Option<Arc<TelemetrySink>>>,
}

/// An HTTP-shaped control-plane error: a status code and a JSON body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControlError {
    /// HTTP status the server should answer with.
    pub status: u16,
    /// JSON error document (`{"error":{...}}`).
    pub body: String,
}

impl ControlError {
    fn bad_request(err: &SpecError) -> Self {
        ControlError {
            status: 400,
            body: format!(
                "{{\"error\":{{\"field\":{},\"reason\":{}}}}}",
                json::escape(&err.field),
                json::escape(&err.reason)
            ),
        }
    }

    fn simple(status: u16, reason: &str) -> Self {
        ControlError {
            status,
            body: format!("{{\"error\":{{\"reason\":{}}}}}", json::escape(reason)),
        }
    }
}

/// The campaign service: queue, runner pool, and job registry. See the
/// module docs for the isolation and cancellation contracts.
pub struct ControlPlane {
    inner: Arc<ControlInner>,
    runners: Mutex<Vec<JoinHandle<()>>>,
}

impl ControlPlane {
    /// Starts the runner pool and returns the service handle. Share it
    /// with a server via
    /// [`TelemetrySink::serve_control`](crate::export::TelemetrySink::serve_control).
    pub fn start(options: ControlPlaneOptions) -> Arc<Self> {
        let max_concurrent = if options.max_concurrent == 0 {
            2
        } else {
            options.max_concurrent
        };
        let inner = Arc::new(ControlInner {
            state: Mutex::new(Shared {
                queue: FairQueue::new(),
                jobs: BTreeMap::new(),
                next_id: 1,
                next_completed: 0,
                last_started: None,
                paused: options.start_paused,
                shutdown: false,
            }),
            wake: Condvar::new(),
            default_jobs: if options.default_jobs == 0 {
                1
            } else {
                options.default_jobs
            },
            state_dir: options.state_dir,
            metrics: Mutex::new(None),
        });
        let runners = (0..max_concurrent)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("serscale-campaign-runner-{i}"))
                    .spawn(move || runner_loop(&inner))
                    .expect("spawn campaign runner")
            })
            .collect();
        Arc::new(ControlPlane {
            inner,
            runners: Mutex::new(runners),
        })
    }

    /// Attaches a server-level sink for fleet counters
    /// (`campaigns_submitted_total`, `campaigns_completed_total{outcome}`).
    pub fn attach_metrics(&self, sink: Arc<TelemetrySink>) {
        *self.inner.metrics.lock().expect("metrics cell poisoned") = Some(sink);
    }

    /// Submits a JSON campaign spec (the `POST /campaigns` body) and
    /// returns the acceptance document.
    ///
    /// # Errors
    ///
    /// `400` with a structured `{"error":{"field","reason"}}` body when
    /// the document is malformed or a field fails validation; `409` for
    /// an unusable `resume` target; `503` when shutting down or full.
    pub fn submit(&self, body: &str) -> Result<String, ControlError> {
        let spec = parse_spec(body).map_err(|e| ControlError::bad_request(&e))?;
        let id = self.submit_spec(spec)?;
        Ok(format!(
            "{{\"id\":{id},\"status\":\"queued\",\"url\":\"/campaigns/{id}\"}}"
        ))
    }

    /// Queues an already-validated spec; returns the job id. The HTTP
    /// path goes through [`submit`](Self::submit); this is the in-process
    /// entry tests and embedders use.
    ///
    /// # Errors
    ///
    /// As [`submit`](Self::submit), minus spec validation.
    pub fn submit_spec(&self, spec: CampaignSpec) -> Result<u64, ControlError> {
        self.enqueue(spec, false)
    }

    /// Queues a job whose runner panics instead of running a campaign —
    /// the failure-injection hook behind the quarantine tests (a
    /// panicking campaign must not stall other tenants' queues).
    ///
    /// # Errors
    ///
    /// As [`submit_spec`](Self::submit_spec).
    pub fn submit_poison(&self, tenant: &str) -> Result<u64, ControlError> {
        let mut spec = CampaignSpec::try_from(RawCampaignSpec::default()).expect("default spec");
        spec.tenant = tenant.to_string();
        spec.name = "poison".to_string();
        self.enqueue(spec, true)
    }

    fn enqueue(&self, spec: CampaignSpec, poison: bool) -> Result<u64, ControlError> {
        let mut state = self.lock();
        if state.shutdown {
            return Err(ControlError::simple(
                503,
                "server is draining; resubmit elsewhere",
            ));
        }
        if state.jobs.len() >= MAX_JOBS {
            return Err(ControlError::simple(503, "job table full"));
        }
        // A resume submission adopts the cancelled job's journal so
        // `start_or_resume` replays its absorbed trials.
        let journal_dir = match spec.resume {
            Some(resume_id) => {
                let old = state.jobs.get(&resume_id).ok_or_else(|| {
                    ControlError::simple(409, &format!("resume target {resume_id} does not exist"))
                })?;
                if !matches!(old.state, JobState::Cancelled | JobState::Failed) {
                    return Err(ControlError::simple(
                        409,
                        &format!(
                            "resume target {resume_id} is {}; only cancelled or failed jobs resume",
                            old.state.label()
                        ),
                    ));
                }
                let dir = old.journal_dir.clone().ok_or_else(|| {
                    ControlError::simple(
                        409,
                        &format!("resume target {resume_id} ran without a journal"),
                    )
                })?;
                if config_fingerprint(&old.spec.config()) != config_fingerprint(&spec.config()) {
                    return Err(ControlError::simple(
                        409,
                        &format!(
                            "spec does not match resume target {resume_id}: \
                             the journal is fingerprint-locked to its configuration"
                        ),
                    ));
                }
                Some(dir)
            }
            None => {
                let id = state.next_id;
                self.inner
                    .state_dir
                    .as_ref()
                    .map(|dir| dir.join(format!("job-{id}")))
            }
        };
        let id = state.next_id;
        state.next_id += 1;
        let tenant = spec.tenant.clone();
        state.jobs.insert(
            id,
            JobEntry {
                spec,
                state: JobState::Queued,
                cancel: CancelToken::new(),
                sink: Arc::new(TelemetrySink::in_memory(TelemetryOptions::default())),
                journal_dir,
                resumed_trials: 0,
                report: None,
                error: None,
                poison,
                completed_seq: None,
                queued_at: Instant::now(),
                started_at: None,
                finished_at: None,
            },
        );
        state.queue.push(&tenant, id);
        let depth = state.queue.len();
        drop(state);
        self.count("campaigns_submitted_total", &[]);
        self.count(
            "tenant_jobs_total",
            &[("tenant", &tenant), ("phase", "queued")],
        );
        fleet_gauge(&self.inner, "queue_depth", &[], depth as f64);
        self.inner.wake.notify_all();
        Ok(id)
    }

    /// Cancels a job: a queued job is cancelled immediately; a running
    /// job's token fires and the engine stops at the next wave boundary
    /// (status `cancelling` until it does). Terminal jobs are left
    /// untouched. Returns the job's status document.
    ///
    /// # Errors
    ///
    /// `404` for an unknown id.
    pub fn cancel(&self, id: u64) -> Result<String, ControlError> {
        let mut state = self.lock();
        let entry = state
            .jobs
            .get(&id)
            .ok_or_else(|| ControlError::simple(404, &format!("no job {id}")))?;
        match entry.state {
            JobState::Queued => {
                state.queue.remove(|&queued| queued == id);
                let depth = state.queue.len();
                let seq = state.next_completed;
                state.next_completed += 1;
                let entry = state.jobs.get_mut(&id).expect("entry present");
                entry.state = JobState::Cancelled;
                entry.completed_seq = Some(seq);
                entry.finished_at = Some(Instant::now());
                let tenant = entry.spec.tenant.clone();
                drop(state);
                self.count("campaigns_completed_total", &[("outcome", "cancelled")]);
                self.count(
                    "tenant_jobs_total",
                    &[("tenant", &tenant), ("phase", "completed")],
                );
                fleet_gauge(&self.inner, "queue_depth", &[], depth as f64);
                refresh_completed_share(&self.inner);
                self.inner.wake.notify_all();
            }
            JobState::Running => {
                entry.cancel.cancel();
                state.jobs.get_mut(&id).expect("entry present").state = JobState::Cancelling;
                drop(state);
            }
            _ => drop(state),
        }
        Ok(self.status_json(id).expect("job still present"))
    }

    /// The `GET /campaigns` listing: every job, oldest first, as a JSON
    /// array of status documents.
    pub fn list_json(&self) -> String {
        let ids: Vec<u64> = self.lock().jobs.keys().copied().collect();
        let docs: Vec<String> = ids
            .into_iter()
            .filter_map(|id| self.status_json(id))
            .collect();
        format!("[{}]", docs.join(","))
    }

    /// The `GET /campaigns/{id}` status document, if the job exists. The
    /// shape is a superset of the legacy `/campaign` cell, so the alias
    /// can serve it unchanged.
    pub fn status_json(&self, id: u64) -> Option<String> {
        let (spec, job_state, cancel_requested, sink, journal_dir, resumed, error, seq, stamps) = {
            let state = self.lock();
            let entry = state.jobs.get(&id)?;
            (
                entry.spec.clone(),
                entry.state,
                entry.cancel.is_cancelled(),
                Arc::clone(&entry.sink),
                entry.journal_dir.clone(),
                entry.resumed_trials,
                entry.error.clone(),
                entry.completed_seq,
                (entry.queued_at, entry.started_at, entry.finished_at),
            )
        };
        let snapshot = sink.registry().snapshot();
        let fingerprint = config_fingerprint(&spec.config());
        let mut out = format!(
            "{{\"id\":{id},\"name\":{},\"tenant\":{},\"platform\":{},\"status\":{}",
            json::escape(&spec.name),
            json::escape(&spec.tenant),
            json::escape(&spec.platform.name),
            json::escape(job_state.label()),
        );
        out.push_str(&format!(",\"done\":{}", job_state.terminal()));
        out.push_str(&format!(",\"cancel_requested\":{cancel_requested}"));
        out.push_str(&format!(",\"config_fingerprint\":\"{fingerprint:016x}\""));
        match &journal_dir {
            Some(dir) => out.push_str(&format!(
                ",\"journal\":{}",
                json::escape(&journal_path(dir).display().to_string())
            )),
            None => out.push_str(",\"journal\":null"),
        }
        out.push_str(&format!(",\"resumed_trials\":{resumed}"));
        out.push_str(&format!(",\"seed\":{}", spec.seed));
        out.push_str(&format!(",\"scale\":{}", json::number(spec.scale)));
        match spec.jobs {
            Some(jobs) => out.push_str(&format!(",\"jobs\":{jobs}")),
            None => out.push_str(&format!(",\"jobs\":{}", self.inner.default_jobs)),
        }
        out.push_str(&format!(
            ",\"trials_done\":{}",
            snapshot.counter_total("runs_total", &[])
        ));
        out.push_str(&format!(
            ",\"waves_merged\":{}",
            snapshot.counter_total("waves_total", &[])
        ));
        out.push_str(&format!(
            ",\"trials_retried\":{}",
            snapshot.counter_total("trial_retries", &[])
        ));
        out.push_str(&format!(
            ",\"quarantined_trials\":{}",
            snapshot.counter_total("quarantined_trials", &[])
        ));
        // Resource attribution: what this campaign cost the service.
        // Worker busy-seconds come from the pool profile the observer
        // mirrors into per-worker gauges; wall/queue-wait clocks are host
        // time (attribution only, never part of the deterministic report).
        let busy: f64 = snapshot
            .gauges
            .iter()
            .filter(|(key, _)| key.name == "worker_busy_seconds")
            .map(|(_, v)| *v)
            .sum();
        out.push_str(&format!(",\"worker_busy_seconds\":{}", json::number(busy)));
        let (queued_at, started_at, finished_at) = stamps;
        let queue_wait = started_at
            .unwrap_or_else(Instant::now)
            .saturating_duration_since(queued_at);
        out.push_str(&format!(
            ",\"queue_wait_seconds\":{}",
            json::number(queue_wait.as_secs_f64())
        ));
        match started_at {
            Some(started) => {
                let end = finished_at.unwrap_or_else(Instant::now);
                out.push_str(&format!(
                    ",\"wall_seconds\":{}",
                    json::number(end.saturating_duration_since(started).as_secs_f64())
                ));
            }
            None => out.push_str(",\"wall_seconds\":null"),
        }
        let journal_bytes = journal_dir
            .as_ref()
            .and_then(|dir| std::fs::metadata(journal_path(dir)).ok())
            .map(|meta| meta.len());
        match journal_bytes {
            Some(bytes) => out.push_str(&format!(",\"journal_bytes\":{bytes}")),
            None => out.push_str(",\"journal_bytes\":null"),
        }
        match seq {
            Some(seq) => out.push_str(&format!(",\"completed_seq\":{seq}")),
            None => out.push_str(",\"completed_seq\":null"),
        }
        match &error {
            Some(e) => out.push_str(&format!(",\"error\":{}", json::escape(e))),
            None => out.push_str(",\"error\":null"),
        }
        out.push('}');
        Some(out)
    }

    /// The finished job's bit-stable report (the
    /// [`golden_summary`] rendering — byte-identical to the same spec run
    /// solo through the CLI).
    ///
    /// # Errors
    ///
    /// `404` for an unknown id, `409` while the job is not `done`.
    pub fn report_text(&self, id: u64) -> Result<String, ControlError> {
        let state = self.lock();
        let entry = state
            .jobs
            .get(&id)
            .ok_or_else(|| ControlError::simple(404, &format!("no job {id}")))?;
        match (&entry.report, entry.state) {
            (Some(report), _) => Ok(report.clone()),
            (None, s) => Err(ControlError::simple(
                409,
                &format!("job {id} is {}; no report yet", s.label()),
            )),
        }
    }

    /// The job's telemetry event stream so far, plus whether the job has
    /// reached a terminal state (the `/campaigns/{id}/events` poll).
    pub fn events_snapshot(&self, id: u64) -> Option<(String, bool)> {
        let (sink, terminal) = {
            let state = self.lock();
            let entry = state.jobs.get(&id)?;
            (Arc::clone(&entry.sink), entry.state.terminal())
        };
        Some((sink.events_jsonl(), terminal))
    }

    /// The job's convergence snapshot, tenant-labeled like the resource
    /// bill (the `/campaigns/{id}/convergence` endpoint): the private
    /// sink's statistical-plane document wrapped with the campaign id
    /// and submitting tenant.
    pub fn convergence_json(&self, id: u64) -> Option<String> {
        let (sink, tenant) = {
            let state = self.lock();
            let entry = state.jobs.get(&id)?;
            (Arc::clone(&entry.sink), entry.spec.tenant.clone())
        };
        let snapshot = sink.convergence_json();
        Some(format!(
            "{{\"campaign\":{id},\"tenant\":{},\"convergence\":{}}}\n",
            json::escape(&tenant),
            snapshot.trim_end(),
        ))
    }

    /// The job the legacy `/campaign` endpoint aliases to: the most
    /// recently started job, falling back to the newest submission.
    pub fn current(&self) -> Option<u64> {
        let state = self.lock();
        state
            .last_started
            .or_else(|| state.jobs.keys().next_back().copied())
    }

    /// Pauses or resumes job dispatch. Queued jobs stay queued while
    /// paused; running jobs are unaffected.
    pub fn set_paused(&self, paused: bool) {
        self.lock().paused = paused;
        self.inner.wake.notify_all();
    }

    /// Whether the job exists and has reached a terminal state.
    pub fn is_terminal(&self, id: u64) -> bool {
        self.lock()
            .jobs
            .get(&id)
            .is_some_and(|entry| entry.state.terminal())
    }

    /// The job's lifecycle label (`queued`, `running`, `done`, ...), if
    /// the job exists.
    pub fn state_label(&self, id: u64) -> Option<&'static str> {
        self.lock().jobs.get(&id).map(|entry| entry.state.label())
    }

    /// The tenant that submitted the job, if the job exists. The access
    /// log uses this to attribute requests touching `/campaigns/{id}`.
    pub fn tenant_of(&self, id: u64) -> Option<String> {
        self.lock()
            .jobs
            .get(&id)
            .map(|entry| entry.spec.tenant.clone())
    }

    /// Jobs currently waiting in the fair queue.
    pub fn queue_depth(&self) -> usize {
        self.lock().queue.len()
    }

    /// Tenants with running (or cancelling) jobs and how many each has,
    /// sorted by tenant — the `/healthz` load-balancer view.
    pub fn running_by_tenant(&self) -> Vec<(String, u64)> {
        let state = self.lock();
        let mut per: BTreeMap<String, u64> = BTreeMap::new();
        for entry in state.jobs.values() {
            if matches!(entry.state, JobState::Running | JobState::Cancelling) {
                *per.entry(entry.spec.tenant.clone()).or_insert(0) += 1;
            }
        }
        per.into_iter().collect()
    }

    /// The `GET /tenants` document: per-tenant usage totals aggregated
    /// over every job the service has seen, sorted by tenant. Worker
    /// busy-seconds and trial counts come from each job's private sink;
    /// journal bytes from the job directories on disk.
    pub fn tenants_json(&self) -> String {
        let jobs: Vec<(String, JobState, Arc<TelemetrySink>, Option<PathBuf>)> = {
            let state = self.lock();
            state
                .jobs
                .values()
                .map(|entry| {
                    (
                        entry.spec.tenant.clone(),
                        entry.state,
                        Arc::clone(&entry.sink),
                        entry.journal_dir.clone(),
                    )
                })
                .collect()
        };
        #[derive(Default)]
        struct TenantTotals {
            queued: u64,
            running: u64,
            done: u64,
            cancelled: u64,
            failed: u64,
            trials: u64,
            busy_seconds: f64,
            journal_bytes: u64,
        }
        let mut per: BTreeMap<String, TenantTotals> = BTreeMap::new();
        for (tenant, job_state, sink, journal_dir) in jobs {
            let totals = per.entry(tenant).or_default();
            match job_state {
                JobState::Queued => totals.queued += 1,
                JobState::Running | JobState::Cancelling => totals.running += 1,
                JobState::Done => totals.done += 1,
                JobState::Cancelled => totals.cancelled += 1,
                JobState::Failed => totals.failed += 1,
            }
            let snapshot = sink.registry().snapshot();
            totals.trials += snapshot.counter_total("runs_total", &[]);
            totals.busy_seconds += snapshot
                .gauges
                .iter()
                .filter(|(key, _)| key.name == "worker_busy_seconds")
                .map(|(_, v)| *v)
                .sum::<f64>();
            totals.journal_bytes += journal_dir
                .as_ref()
                .and_then(|dir| std::fs::metadata(journal_path(dir)).ok())
                .map_or(0, |meta| meta.len());
        }
        let docs: Vec<String> = per
            .into_iter()
            .map(|(tenant, t)| {
                format!(
                    "{{\"tenant\":{},\"queued\":{},\"running\":{},\"done\":{},\
                     \"cancelled\":{},\"failed\":{},\"trials\":{},\
                     \"worker_busy_seconds\":{},\"journal_bytes\":{}}}",
                    json::escape(&tenant),
                    t.queued,
                    t.running,
                    t.done,
                    t.cancelled,
                    t.failed,
                    t.trials,
                    json::number(t.busy_seconds),
                    t.journal_bytes,
                )
            })
            .collect();
        format!("[{}]", docs.join(","))
    }

    /// Begins a graceful drain: no new submissions are accepted, queued
    /// jobs stay queued, and each runner exits after its current
    /// campaign. Unblocks [`wait_shutdown`](Self::wait_shutdown).
    pub fn request_shutdown(&self) {
        self.lock().shutdown = true;
        self.inner.wake.notify_all();
    }

    /// Blocks until [`request_shutdown`](Self::request_shutdown) is
    /// called (or `timeout` elapses, when given). Returns whether
    /// shutdown was requested — the `repro serve` main thread parks here.
    pub fn wait_shutdown(&self, timeout: Option<Duration>) -> bool {
        let deadline = timeout.map(|t| std::time::Instant::now() + t);
        let mut state = self.lock();
        while !state.shutdown {
            state = match deadline {
                Some(deadline) => {
                    let now = std::time::Instant::now();
                    if now >= deadline {
                        return false;
                    }
                    self.inner
                        .wake
                        .wait_timeout(state, deadline - now)
                        .expect("control state poisoned")
                        .0
                }
                None => self.inner.wake.wait(state).expect("control state poisoned"),
            };
        }
        true
    }

    /// Waits until the queue is empty and no job is running, or `timeout`
    /// elapses. Returns whether the plane went idle. (Primarily for
    /// tests; the HTTP path polls per-job status instead.)
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.lock();
        loop {
            let busy = !state.queue.is_empty()
                || state
                    .jobs
                    .values()
                    .any(|e| matches!(e.state, JobState::Running | JobState::Cancelling));
            if !busy {
                return true;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return false;
            }
            state = self
                .inner
                .wake
                .wait_timeout(state, deadline - now)
                .expect("control state poisoned")
                .0;
        }
    }

    /// Joins the runner pool after a shutdown request. In-flight
    /// campaigns finish; queued jobs remain queued (and resumable via
    /// their journals on a later server).
    pub fn drain(&self) {
        self.request_shutdown();
        let handles: Vec<JoinHandle<()>> = self
            .runners
            .lock()
            .expect("runner handles poisoned")
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Shared> {
        self.inner.state.lock().expect("control state poisoned")
    }

    fn count(&self, name: &str, labels: &[(&str, &str)]) {
        fleet_count(&self.inner, name, labels, 1);
    }
}

/// Bumps a counter on the server-level sink, when one is attached.
fn fleet_count(inner: &ControlInner, name: &str, labels: &[(&str, &str)], by: u64) {
    if let Some(sink) = inner
        .metrics
        .lock()
        .expect("metrics cell poisoned")
        .as_ref()
    {
        sink.add_counter(name, labels, by);
    }
}

/// Sets a gauge on the server-level sink, when one is attached.
fn fleet_gauge(inner: &ControlInner, name: &str, labels: &[(&str, &str)], value: f64) {
    if let Some(sink) = inner
        .metrics
        .lock()
        .expect("metrics cell poisoned")
        .as_ref()
    {
        sink.set_gauge(name, labels, value);
    }
}

/// Records a histogram observation on the server-level sink, when one is
/// attached.
fn fleet_observe(inner: &ControlInner, name: &str, labels: &[(&str, &str)], value: f64) {
    if let Some(sink) = inner
        .metrics
        .lock()
        .expect("metrics cell poisoned")
        .as_ref()
    {
        sink.observe_histogram(name, labels, value);
    }
}

/// Refreshes the `tenant_completed_share{tenant}` fairness series: each
/// tenant's fraction of all jobs that have reached a terminal state. A
/// fair scheduler keeps concurrently-active tenants' shares converging
/// instead of letting one tenant starve the rest.
fn refresh_completed_share(inner: &ControlInner) {
    let shares: Vec<(String, f64)> = {
        let state = inner.state.lock().expect("control state poisoned");
        let mut per: BTreeMap<String, u64> = BTreeMap::new();
        for entry in state.jobs.values() {
            if entry.state.terminal() {
                *per.entry(entry.spec.tenant.clone()).or_insert(0) += 1;
            }
        }
        let total: u64 = per.values().sum();
        per.into_iter()
            .map(|(tenant, n)| (tenant, n as f64 / total.max(1) as f64))
            .collect()
    };
    for (tenant, share) in shares {
        fleet_gauge(
            inner,
            "tenant_completed_share",
            &[("tenant", &tenant)],
            share,
        );
    }
}

impl Drop for ControlPlane {
    fn drop(&mut self) {
        self.drain();
    }
}

fn runner_loop(inner: &Arc<ControlInner>) {
    loop {
        let (job, tenant, queue_wait, depth) = {
            let mut state = inner.state.lock().expect("control state poisoned");
            loop {
                if state.shutdown {
                    return;
                }
                if !state.paused {
                    if let Some((tenant, id)) = state.queue.pop() {
                        let depth = state.queue.len();
                        let now = Instant::now();
                        let entry = state.jobs.get_mut(&id).expect("queued job exists");
                        entry.state = JobState::Running;
                        entry.started_at = Some(now);
                        let wait = now.saturating_duration_since(entry.queued_at);
                        state.last_started = Some(id);
                        break (id, tenant, wait, depth);
                    }
                }
                state = inner.wake.wait(state).expect("control state poisoned");
            }
        };
        fleet_gauge(inner, "queue_depth", &[], depth as f64);
        fleet_count(
            inner,
            "tenant_jobs_total",
            &[("tenant", &tenant), ("phase", "started")],
            1,
        );
        fleet_observe(
            inner,
            "queue_wait_seconds",
            &[("tenant", &tenant)],
            queue_wait.as_secs_f64(),
        );
        run_job(inner, job);
    }
}

/// What one job execution produced.
enum JobOutcome {
    Done(String),
    Cancelled,
    Failed(String),
}

fn run_job(inner: &Arc<ControlInner>, id: u64) {
    let (spec, cancel, sink, journal_dir, poison) = {
        let state = inner.state.lock().expect("control state poisoned");
        let entry = state.jobs.get(&id).expect("running job exists");
        (
            entry.spec.clone(),
            entry.cancel.clone(),
            Arc::clone(&entry.sink),
            entry.journal_dir.clone(),
            entry.poison,
        )
    };
    let jobs = spec.jobs.map_or(inner.default_jobs, |j| j as usize);
    let mut resumed_trials = 0u64;
    // A panicking campaign must not take the runner thread down with it:
    // catch, quarantine as `failed`, move on to the next tenant's job.
    let caught = catch_unwind(AssertUnwindSafe(|| -> Result<JobOutcome, String> {
        if poison {
            panic!("poison job {id}: injected failure");
        }
        let campaign = Campaign::new(spec.config());
        sink.set_campaign_status(|status| {
            status.platform = Some(spec.platform.name.clone());
            status.config_fingerprint = Some(config_fingerprint(campaign.config()));
        });
        let mut observer = sink.observer();
        let outcome = match &journal_dir {
            Some(dir) => {
                let (mut writer, recovered) = start_or_resume(dir, campaign.config())
                    .map_err(|e| format!("journal at {}: {e}", dir.display()))?;
                resumed_trials = recovered.as_ref().map_or(0, |r| r.trials_recovered());
                sink.set_campaign_status(|status| {
                    status.journal = Some(journal_path(dir).display().to_string());
                    status.resumed_trials = resumed_trials;
                });
                let result = campaign.try_run_recoverable(
                    CampaignRunOptions {
                        jobs,
                        retry: RetryPolicy::standard(),
                        journal: Some(&mut writer),
                        recovered: recovered.as_ref(),
                        cancel: Some(cancel.clone()),
                    },
                    &mut observer,
                );
                drop(writer); // durable sync before the status flips
                result
            }
            None => campaign.try_run_recoverable(
                CampaignRunOptions {
                    cancel: Some(cancel.clone()),
                    ..CampaignRunOptions::with_jobs(jobs)
                },
                &mut observer,
            ),
        };
        Ok(match outcome {
            Ok(report) => JobOutcome::Done(golden_summary(&report)),
            Err(Cancelled) => JobOutcome::Cancelled,
        })
    }));
    let outcome = match caught {
        Ok(Ok(outcome)) => outcome,
        Ok(Err(io_error)) => JobOutcome::Failed(io_error),
        Err(panic) => {
            let reason = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic (non-string payload)".to_string());
            JobOutcome::Failed(format!("campaign panicked: {reason}"))
        }
    };
    // Drop the run's host-side telemetry next to its journal so `repro
    // inspect` can do offline forensics on service-submitted campaigns
    // too. Best-effort and observe-only: these files feed no engine path,
    // and a full disk must not flip a finished campaign to failed.
    if let Some(dir) = &journal_dir {
        let _ = std::fs::create_dir_all(dir);
        let spans = sink.tracer().to_jsonl();
        if !spans.is_empty() {
            let _ = std::fs::write(dir.join("spans.jsonl"), spans);
        }
        let events = sink.events_jsonl();
        if !events.is_empty() {
            let _ = std::fs::write(dir.join("events.jsonl"), events);
        }
    }
    let (outcome_label, tenant, run_seconds, quarantined) = {
        let mut state = inner.state.lock().expect("control state poisoned");
        let seq = state.next_completed;
        state.next_completed += 1;
        let entry = state.jobs.get_mut(&id).expect("running job exists");
        entry.resumed_trials = resumed_trials;
        entry.completed_seq = Some(seq);
        let now = Instant::now();
        entry.finished_at = Some(now);
        let run_seconds = entry.started_at.map_or(0.0, |started| {
            now.saturating_duration_since(started).as_secs_f64()
        });
        let label = match outcome {
            JobOutcome::Done(report) => {
                entry.report = Some(report);
                entry.state = JobState::Done;
                "done"
            }
            JobOutcome::Cancelled => {
                entry.state = JobState::Cancelled;
                "cancelled"
            }
            JobOutcome::Failed(error) => {
                entry.error = Some(error);
                entry.state = JobState::Failed;
                "failed"
            }
        };
        entry.sink.set_campaign_status(|status| status.done = true);
        let quarantined = entry
            .sink
            .registry()
            .snapshot()
            .counter_total("quarantined_trials", &[]);
        (label, entry.spec.tenant.clone(), run_seconds, quarantined)
    };
    fleet_count(
        inner,
        "campaigns_completed_total",
        &[("outcome", outcome_label)],
        1,
    );
    fleet_count(
        inner,
        "tenant_jobs_total",
        &[("tenant", &tenant), ("phase", "completed")],
        1,
    );
    fleet_observe(
        inner,
        "job_run_seconds",
        &[("tenant", &tenant)],
        run_seconds,
    );
    if quarantined > 0 {
        fleet_count(
            inner,
            "tenant_quarantined_trials_total",
            &[("tenant", &tenant)],
            quarantined,
        );
    }
    refresh_completed_share(inner);
    inner.wake.notify_all();
}

// ---------------------------------------------------------------------------
// JSON ↔ spec mapping (the wire format of `POST /campaigns`).

/// Parses and validates a `POST /campaigns` body into a [`CampaignSpec`].
///
/// # Errors
///
/// A [`SpecError`] naming the offending field: JSON syntax errors come
/// back on the pseudo-field `body`, type errors and unknown fields on
/// their dotted path, and range errors from the schema's `TryFrom`.
pub fn parse_spec(body: &str) -> Result<CampaignSpec, SpecError> {
    let doc = json::parse(body).map_err(|e| SpecError {
        field: "body".to_string(),
        reason: format!("not valid JSON: {e}"),
    })?;
    let raw = raw_spec_from_json(&doc)?;
    CampaignSpec::try_from(raw)
}

fn want_number(field: &str, value: &JsonValue) -> Result<f64, SpecError> {
    value.as_f64().ok_or_else(|| SpecError {
        field: field.to_string(),
        reason: format!("expected a number, got {}", kind(value)),
    })
}

fn want_string(field: &str, value: &JsonValue) -> Result<String, SpecError> {
    value.as_str().map(str::to_string).ok_or_else(|| SpecError {
        field: field.to_string(),
        reason: format!("expected a string, got {}", kind(value)),
    })
}

fn kind(value: &JsonValue) -> &'static str {
    match value {
        JsonValue::Null => "null",
        JsonValue::Bool(_) => "a boolean",
        JsonValue::Number(_) => "a number",
        JsonValue::String(_) => "a string",
        JsonValue::Array(_) => "an array",
        JsonValue::Object(_) => "an object",
    }
}

/// Maps a parsed JSON document onto the permissive carrier. Unknown
/// fields are rejected (a typo like `"sclae"` must not silently select
/// defaults); value validation happens later in `TryFrom`.
///
/// # Errors
///
/// A [`SpecError`] for non-object documents, unknown fields, or
/// wrongly-typed values.
pub fn raw_spec_from_json(doc: &JsonValue) -> Result<RawCampaignSpec, SpecError> {
    let JsonValue::Object(map) = doc else {
        return Err(SpecError {
            field: "body".to_string(),
            reason: format!("expected a JSON object, got {}", kind(doc)),
        });
    };
    let mut raw = RawCampaignSpec::default();
    for (key, value) in map {
        match key.as_str() {
            "name" => raw.name = Some(want_string("name", value)?),
            "tenant" => raw.tenant = Some(want_string("tenant", value)?),
            "platform" => raw.platform = Some(want_string("platform", value)?),
            "seed" => raw.seed = Some(want_number("seed", value)?),
            "scale" => raw.scale = Some(want_number("scale", value)?),
            "jobs" => raw.jobs = Some(want_number("jobs", value)?),
            "vmin_trials" => raw.vmin_trials = Some(want_number("vmin_trials", value)?),
            "resume" => raw.resume = Some(want_number("resume", value)?),
            "sessions" => {
                let JsonValue::Array(items) = value else {
                    return Err(SpecError {
                        field: "sessions".to_string(),
                        reason: format!("expected an array, got {}", kind(value)),
                    });
                };
                let mut sessions = Vec::with_capacity(items.len());
                for (at, item) in items.iter().enumerate() {
                    sessions.push(raw_session_from_json(at, item)?);
                }
                raw.sessions = Some(sessions);
            }
            unknown => {
                // An empty key would make an unlocatable error; anchor it
                // on the document instead.
                return Err(SpecError {
                    field: if unknown.is_empty() {
                        "body".to_string()
                    } else {
                        unknown.to_string()
                    },
                    reason: format!(
                        "unknown field {unknown:?}; known fields are name, tenant, platform, \
                         seed, scale, jobs, vmin_trials, sessions, resume"
                    ),
                });
            }
        }
    }
    Ok(raw)
}

fn raw_session_from_json(at: usize, doc: &JsonValue) -> Result<RawSessionSpec, SpecError> {
    let JsonValue::Object(map) = doc else {
        return Err(SpecError {
            field: format!("sessions[{at}]"),
            reason: format!("expected an object, got {}", kind(doc)),
        });
    };
    let mut raw = RawSessionSpec::default();
    let mut seen = [false; 4];
    for (key, value) in map {
        let field = format!("sessions[{at}].{key}");
        match key.as_str() {
            "pmd_mv" => {
                raw.pmd_mv = want_number(&field, value)?;
                seen[0] = true;
            }
            "soc_mv" => {
                raw.soc_mv = want_number(&field, value)?;
                seen[1] = true;
            }
            "freq_mhz" => {
                raw.freq_mhz = want_number(&field, value)?;
                seen[2] = true;
            }
            "minutes" => {
                raw.minutes = want_number(&field, value)?;
                seen[3] = true;
            }
            unknown => {
                return Err(SpecError {
                    field: format!("sessions[{at}].{unknown}"),
                    reason: "unknown field; sessions take pmd_mv, soc_mv, freq_mhz, minutes"
                        .to_string(),
                })
            }
        }
    }
    if let Some((_, name)) = seen
        .iter()
        .zip(["pmd_mv", "soc_mv", "freq_mhz", "minutes"])
        .find(|(seen, _)| !**seen)
    {
        return Err(SpecError {
            field: format!("sessions[{at}].{name}"),
            reason: "missing; sessions need pmd_mv, soc_mv, freq_mhz and minutes".to_string(),
        });
    }
    Ok(raw)
}

/// Renders a validated spec back to its normalized JSON document. A
/// round-trip through [`parse_spec`] reproduces the spec exactly — the
/// property the schema fuzz suite pins.
pub fn spec_to_json(spec: &CampaignSpec) -> String {
    let mut out = format!(
        "{{\"name\":{},\"tenant\":{},\"seed\":{}",
        json::escape(&spec.name),
        json::escape(&spec.tenant),
        spec.seed
    );
    if spec.platform != serscale_soc::PlatformSpec::xgene2() {
        out.push_str(&format!(
            ",\"platform\":{}",
            json::escape(&spec.platform.name)
        ));
    }
    if spec.sessions.is_none() {
        out.push_str(&format!(",\"scale\":{}", json::number(spec.scale)));
    }
    if let Some(jobs) = spec.jobs {
        out.push_str(&format!(",\"jobs\":{jobs}"));
    }
    if let Some(trials) = spec.vmin_trials {
        out.push_str(&format!(",\"vmin_trials\":{trials}"));
    }
    if let Some(sessions) = &spec.sessions {
        out.push_str(",\"sessions\":[");
        for (at, (point, limits)) in sessions.iter().enumerate() {
            if at > 0 {
                out.push(',');
            }
            let minutes = limits
                .max_duration
                .map_or(0.0, serscale_types::SimDuration::as_minutes);
            out.push_str(&format!(
                "{{\"pmd_mv\":{},\"soc_mv\":{},\"freq_mhz\":{},\"minutes\":{}}}",
                point.pmd.get(),
                point.soc.get(),
                point.frequency.get(),
                json::number(minutes)
            ));
        }
        out.push(']');
    }
    if let Some(resume) = spec.resume {
        out.push_str(&format!(",\"resume\":{resume}"));
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec(tenant: &str, seed: u64) -> CampaignSpec {
        let raw = RawCampaignSpec {
            tenant: Some(tenant.to_string()),
            seed: Some(seed as f64),
            scale: Some(0.001),
            ..Default::default()
        };
        CampaignSpec::try_from(raw).expect("valid spec")
    }

    #[test]
    fn spec_json_round_trips() {
        let spec = tiny_spec("acme", 7);
        let rendered = spec_to_json(&spec);
        let reparsed = parse_spec(&rendered).expect("normalized spec reparses");
        assert_eq!(reparsed, spec);
    }

    #[test]
    fn unknown_fields_are_rejected() {
        let err = parse_spec("{\"sclae\":0.5}").expect_err("typo field");
        assert_eq!(err.field, "sclae");
        assert!(err.reason.contains("known fields"), "{err}");
    }

    #[test]
    fn non_object_bodies_are_rejected() {
        for body in ["[1,2]", "42", "\"hi\"", "null", "{nope", ""] {
            let err = parse_spec(body).expect_err(body);
            assert_eq!(err.field, "body", "{body} → {err}");
        }
    }

    #[test]
    fn jobs_run_to_done_and_report_matches_solo() {
        let control = ControlPlane::start(ControlPlaneOptions::default());
        let spec = tiny_spec("t", 11);
        let id = control.submit_spec(spec.clone()).expect("queued");
        assert!(control.wait_idle(Duration::from_secs(60)), "job finished");
        let report = control.report_text(id).expect("done");
        let solo = golden_summary(&Campaign::new(spec.config()).run_parallel(1));
        assert_eq!(report, solo, "service report must equal the solo run");
        let status = control.status_json(id).expect("status");
        let doc = json::parse(&status).expect("status parses");
        assert_eq!(doc.get("status").and_then(JsonValue::as_str), Some("done"));
        assert_eq!(doc.get("done"), Some(&JsonValue::Bool(true)));
    }

    #[test]
    fn queued_jobs_cancel_immediately_and_poison_jobs_quarantine() {
        // One runner, paused: build a deterministic backlog.
        let control = ControlPlane::start(ControlPlaneOptions {
            max_concurrent: 1,
            start_paused: true,
            ..Default::default()
        });
        let poison = control.submit_poison("a").expect("poison queued");
        let a = control.submit_spec(tiny_spec("a", 1)).expect("queued");
        let b = control.submit_spec(tiny_spec("b", 2)).expect("queued");
        let doomed = control.submit_spec(tiny_spec("b", 3)).expect("queued");
        let cancelled = control.cancel(doomed).expect("cancel queued job");
        assert!(
            cancelled.contains("\"status\":\"cancelled\""),
            "{cancelled}"
        );
        control.set_paused(false);
        assert!(control.wait_idle(Duration::from_secs(120)), "drained");
        // The poison job failed; everyone else's work still completed.
        let poison_status = control.status_json(poison).expect("status");
        assert!(
            poison_status.contains("\"status\":\"failed\""),
            "{poison_status}"
        );
        assert!(
            poison_status.contains("injected failure"),
            "{poison_status}"
        );
        for id in [a, b] {
            assert!(control.report_text(id).is_ok(), "job {id} finished");
        }
        assert!(
            control.report_text(doomed).is_err(),
            "cancelled job has no report"
        );
    }

    #[test]
    fn two_tenants_complete_within_the_fairness_bound() {
        // 2 tenants × k jobs on one runner, staged while paused: strict
        // round-robin dispatch means completions alternate a,b,a,b...
        // even though tenant a submitted its whole batch first.
        let k = 3;
        let control = ControlPlane::start(ControlPlaneOptions {
            max_concurrent: 1,
            start_paused: true,
            ..Default::default()
        });
        let mut ids = Vec::new();
        for i in 0..k {
            ids.push((control.submit_spec(tiny_spec("a", i)).expect("queued"), "a"));
        }
        for i in 0..k {
            ids.push((control.submit_spec(tiny_spec("b", i)).expect("queued"), "b"));
        }
        control.set_paused(false);
        assert!(control.wait_idle(Duration::from_secs(300)), "drained");
        let mut order: Vec<(u64, &str)> = ids
            .iter()
            .map(|&(id, tenant)| {
                let status = control.status_json(id).expect("status");
                let doc = json::parse(&status).expect("parses");
                let seq =
                    doc.get("completed_seq")
                        .and_then(JsonValue::as_f64)
                        .expect("terminal jobs carry a completion seq") as u64;
                (seq, tenant)
            })
            .collect();
        order.sort_unstable();
        let tenants: Vec<&str> = order.iter().map(|&(_, t)| t).collect();
        // Fairness bound for 2 tenants: no tenant completes twice in a row
        // while the other still has queued work — i.e. strict alternation.
        assert_eq!(tenants, vec!["a", "b", "a", "b", "a", "b"], "{order:?}");
    }

    #[test]
    fn shutdown_refuses_new_submissions() {
        let control = ControlPlane::start(ControlPlaneOptions::default());
        control.request_shutdown();
        let err = control
            .submit_spec(tiny_spec("t", 1))
            .expect_err("draining");
        assert_eq!(err.status, 503);
        control.drain();
    }

    #[test]
    fn resume_is_platform_locked() {
        // An X-Gene journal must not resume as a Zynq campaign: the
        // platform is part of the config fingerprint the journal is
        // locked to.
        let state_dir = std::env::temp_dir().join(format!(
            "serscale-control-platform-lock-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&state_dir);
        std::fs::create_dir_all(&state_dir).expect("state dir");
        let control = ControlPlane::start(ControlPlaneOptions {
            state_dir: Some(state_dir.clone()),
            start_paused: true,
            ..Default::default()
        });
        let xgene = control.submit_spec(tiny_spec("t", 5)).expect("queued");
        control.cancel(xgene).expect("cancel queued job");
        let mut zynq = CampaignSpec::try_from(RawCampaignSpec {
            tenant: Some("t".to_string()),
            seed: Some(5.0),
            scale: Some(0.001),
            platform: Some("zynq-mpsoc".to_string()),
            ..Default::default()
        })
        .expect("valid spec");
        zynq.resume = Some(xgene);
        let err = control.submit_spec(zynq).expect_err("platform mismatch");
        assert_eq!(err.status, 409, "{}", err.body);
        assert!(err.body.contains("fingerprint-locked"), "{}", err.body);
        // The same spec on the same platform is accepted.
        let mut again = tiny_spec("t", 5);
        again.resume = Some(xgene);
        control.submit_spec(again).expect("same platform resumes");
        control.drain();
        let _ = std::fs::remove_dir_all(&state_dir);
    }

    #[test]
    fn resume_validates_its_target() {
        let control = ControlPlane::start(ControlPlaneOptions::default());
        let mut spec = tiny_spec("t", 5);
        spec.resume = Some(999);
        let err = control.submit_spec(spec).expect_err("unknown target");
        assert_eq!(err.status, 409);
        // A completed (not cancelled) job is not resumable either.
        let done = control.submit_spec(tiny_spec("t", 6)).expect("queued");
        assert!(control.wait_idle(Duration::from_secs(60)));
        let mut spec = tiny_spec("t", 6);
        spec.resume = Some(done);
        let err = control
            .submit_spec(spec)
            .expect_err("done is not resumable");
        assert_eq!(err.status, 409, "{}", err.body);
    }
}
