//! The oracle abstraction: a [`StatOracle`] encodes one mechanistic
//! invariant of the simulator as an executable check, and an
//! [`OracleContext`] tells it how hard to try.
//!
//! Oracles are *statistical* where the underlying claim is statistical
//! (expected counts, rates) and *exact* where the claim is exact
//! (bit-identical reports, ECC algebra). Statistical checks accept or
//! reject through the confidence-interval helpers of `serscale-stats`, so
//! they hold across seeds — the convention TESTING.md documents.

use std::fmt;

/// Which of the three oracle families a check belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OracleFamily {
    /// Metamorphic relations: transform the input, predict the output
    /// shift (fluence doubling, voltage monotonicity, domain isolation,
    /// spectrum rescaling).
    Metamorphic,
    /// Differential execution: the same campaign through independent
    /// engines must agree bit for bit.
    Differential,
    /// Exhaustive ECC algebra: SECDED correction/detection and
    /// interleaving distance over every codeword position.
    Ecc,
}

impl fmt::Display for OracleFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OracleFamily::Metamorphic => "metamorphic",
            OracleFamily::Differential => "differential",
            OracleFamily::Ecc => "ecc",
        };
        f.write_str(s)
    }
}

/// How much work an oracle may spend: the number of independent seeds per
/// statistical arm, the simulated length of each probe session, and the
/// fraction of the paper campaign the differential oracles replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialBudget {
    /// Independent seeds pooled per statistical arm.
    pub seeds: u64,
    /// Simulated minutes per probe session.
    pub session_minutes: f64,
    /// Fraction of the paper campaign replayed by differential oracles.
    pub campaign_fraction: f64,
    /// The budget's name (for reports).
    pub name: &'static str,
}

impl TrialBudget {
    /// The CI budget: a few seconds of wall clock.
    pub const fn small() -> Self {
        TrialBudget {
            seeds: 3,
            session_minutes: 60.0,
            campaign_fraction: 0.004,
            name: "small",
        }
    }

    /// A tighter-interval budget for local runs.
    pub const fn medium() -> Self {
        TrialBudget {
            seeds: 6,
            session_minutes: 150.0,
            campaign_fraction: 0.01,
            name: "medium",
        }
    }

    /// The overnight budget.
    pub const fn large() -> Self {
        TrialBudget {
            seeds: 12,
            session_minutes: 400.0,
            campaign_fraction: 0.03,
            name: "large",
        }
    }

    /// Parses a budget name as accepted by `repro verify --budget`.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "small" => Some(Self::small()),
            "medium" => Some(Self::medium()),
            "large" => Some(Self::large()),
            _ => None,
        }
    }
}

/// Everything an oracle needs to run: the master seed its probes fork
/// from and the trial budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OracleContext {
    /// Master seed; each oracle derives its probe seeds from it.
    pub seed: u64,
    /// How much work to spend.
    pub budget: TrialBudget,
}

impl OracleContext {
    /// A context with the given seed and budget.
    pub const fn new(seed: u64, budget: TrialBudget) -> Self {
        OracleContext { seed, budget }
    }

    /// The probe seed for the `index`-th arm of an oracle, decorrelated
    /// from other oracles by the oracle's name.
    pub fn probe_seed(&self, oracle: &str, index: u64) -> u64 {
        // FNV-1a over the oracle name, mixed with the master seed and arm
        // index — cheap, stable, and collision-free for our handful of
        // oracle names.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in oracle.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^ self.seed.rotate_left(17) ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15)
    }
}

/// One pass/fail check inside an oracle's report.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckResult {
    /// Short check name (stable, machine-friendly).
    pub name: String,
    /// Did the invariant hold?
    pub passed: bool,
    /// Human-readable evidence: counts, intervals, p-values.
    pub detail: String,
}

impl CheckResult {
    /// A check result.
    pub fn new(name: impl Into<String>, passed: bool, detail: impl Into<String>) -> Self {
        CheckResult {
            name: name.into(),
            passed,
            detail: detail.into(),
        }
    }
}

/// The outcome of running one oracle.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleReport {
    /// The oracle's name.
    pub name: String,
    /// Its family.
    pub family: OracleFamily,
    /// The invariant it encodes, in one sentence.
    pub claim: String,
    /// The individual checks.
    pub checks: Vec<CheckResult>,
}

impl OracleReport {
    /// True iff every check passed.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    /// The checks that failed.
    pub fn violations(&self) -> impl Iterator<Item = &CheckResult> {
        self.checks.iter().filter(|c| !c.passed)
    }
}

/// An executable invariant of the simulator.
pub trait StatOracle {
    /// Stable oracle name (used in reports and verdict JSON).
    fn name(&self) -> &'static str;
    /// Which family the oracle belongs to.
    fn family(&self) -> OracleFamily;
    /// The invariant, in one sentence.
    fn claim(&self) -> &'static str;
    /// Runs the oracle under the given context.
    fn run(&self, ctx: &OracleContext) -> OracleReport;

    /// Builds a report skeleton for this oracle.
    fn report(&self, checks: Vec<CheckResult>) -> OracleReport {
        OracleReport {
            name: self.name().to_string(),
            family: self.family(),
            claim: self.claim().to_string(),
            checks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_parse_round_trip() {
        for name in ["small", "medium", "large"] {
            let b = TrialBudget::parse(name).expect("known budget");
            assert_eq!(b.name, name);
        }
        assert!(TrialBudget::parse("enormous").is_none());
    }

    #[test]
    fn probe_seeds_are_decorrelated() {
        let ctx = OracleContext::new(42, TrialBudget::small());
        let a = ctx.probe_seed("fluence-doubling", 0);
        let b = ctx.probe_seed("fluence-doubling", 1);
        let c = ctx.probe_seed("domain-isolation", 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // And stable across calls.
        assert_eq!(a, ctx.probe_seed("fluence-doubling", 0));
    }

    #[test]
    fn report_pass_fail_accounting() {
        let report = OracleReport {
            name: "x".into(),
            family: OracleFamily::Ecc,
            claim: "c".into(),
            checks: vec![
                CheckResult::new("ok", true, ""),
                CheckResult::new("bad", false, "boom"),
            ],
        };
        assert!(!report.passed());
        assert_eq!(report.violations().count(), 1);
    }
}
