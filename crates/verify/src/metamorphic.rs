//! Metamorphic oracles: transform the campaign input, predict the output
//! shift from the paper's mechanism, and accept only if the simulator
//! agrees within confidence bounds.
//!
//! Every statistical check here normalizes counts by *live execution
//! time* (the per-benchmark beam-on run time, excluding crash recovery)
//! rather than wall-clock session time. Crash recovery is dead time for
//! the EDAC harvest, so wall-clock rates carry a few-percent systematic
//! that shifts when flux or duration changes; per-live-second counts are
//! exactly Poisson and make the metamorphic predictions sharp.

use serscale_beam::{BeamFacility, BeamPosition, NeutronSpectrum, WeibullResponse};
use serscale_core::dut::DeviceUnderTest;
use serscale_core::session::{SessionLimits, SessionReport, TestSession};
use serscale_soc::platform::OperatingPoint;
use serscale_sram::SoftErrorModel;
use serscale_stats::{poisson_rate_test, SimRng};
use serscale_types::{CrossSection, Flux, Millivolts, SimDuration, VoltageDomain};

use crate::oracle::{CheckResult, OracleContext, OracleFamily, OracleReport, StatOracle};

/// Statistical rate checks accept while the two-sided equality p-value
/// stays above this. 10⁻³ is far below any plausible sampling fluctuation
/// at our budgets, yet a mechanism defect (a factor-2 rate error) drives
/// the p-value to ~0 immediately.
pub const RATE_P_FLOOR: f64 = 1e-3;

/// How a model's per-bit cross-section responds to supply voltage,
/// relative to its nominal calibration point.
///
/// [`SoftErrorModel`] implements this by delegating to its Qcrit∝V law;
/// the trait exists so the monotonicity oracle can also run against test
/// doubles — the suite's own meta-test feeds it a deliberately *inverted*
/// response and asserts the oracle rejects it (see this module's tests).
pub trait VoltageResponse {
    /// σ(v) / σ(v_nominal).
    fn sigma_ratio(&self, voltage: Millivolts) -> f64;
}

impl VoltageResponse for SoftErrorModel {
    fn sigma_ratio(&self, voltage: Millivolts) -> f64 {
        SoftErrorModel::sigma_ratio(self, voltage)
    }
}

/// Checks that lowering Vdd never lowers the per-bit cross-section over
/// an exhaustive 5 mV sweep of the plausible supply range.
///
/// Exposed as a free function (rather than buried in the oracle) so the
/// meta-test can aim it at a defective [`VoltageResponse`].
pub fn check_sigma_monotonic(model: &dyn VoltageResponse, label: &str) -> CheckResult {
    let mut last: Option<(u32, f64)> = None;
    for mv in (0..=90).map(|i| 1050 - 5 * i) {
        let ratio = model.sigma_ratio(Millivolts::new(mv));
        if !(ratio.is_finite() && ratio > 0.0) {
            return CheckResult::new(
                format!("sigma-monotonic-{label}"),
                false,
                format!("σ-ratio at {mv} mV is {ratio}, not a positive finite number"),
            );
        }
        if let Some((prev_mv, prev_ratio)) = last {
            // Sweeping downward in voltage: σ must not decrease.
            if ratio < prev_ratio * (1.0 - 1e-12) {
                return CheckResult::new(
                    format!("sigma-monotonic-{label}"),
                    false,
                    format!(
                        "σ-ratio fell from {prev_ratio:.6} at {prev_mv} mV to \
                         {ratio:.6} at {mv} mV — lowering Vdd lowered the cross-section"
                    ),
                );
            }
        }
        last = Some((mv, ratio));
    }
    CheckResult::new(
        format!("sigma-monotonic-{label}"),
        true,
        "σ(v)/σ(v₀) non-increasing in v over 600–1050 mV in 5 mV steps".to_string(),
    )
}

/// The TNF halo working flux, as the campaign computes it.
fn working_flux() -> Flux {
    BeamFacility::tnf().flux_at(BeamPosition::halo(BeamPosition::PAPER_HALO_TRANSMISSION))
}

/// Runs one probe session and returns its report.
fn probe_session(point: OperatingPoint, flux_scale: f64, minutes: f64, seed: u64) -> SessionReport {
    let base = working_flux();
    let flux = Flux::per_cm2_s(base.as_per_cm2_s() * flux_scale);
    let dut = DeviceUnderTest::xgene2(point, DeviceUnderTest::paper_vmin(point.frequency));
    let limits = SessionLimits::time_boxed(SimDuration::from_minutes(minutes));
    let mut session = TestSession::new(dut, flux, limits);
    let mut rng = SimRng::seed_from(seed);
    session.run(&mut rng)
}

/// Live (beam-on, non-recovery) execution minutes of a session.
fn live_minutes(report: &SessionReport) -> f64 {
    report
        .per_benchmark
        .values()
        .map(|s| s.execution_time.as_minutes())
        .sum()
}

/// Pools memory-upset counts and live exposure across seeds.
fn pooled_upsets(reports: &[SessionReport]) -> (u64, f64) {
    let n = reports.iter().map(|r| r.memory_upsets).sum();
    let t = reports.iter().map(live_minutes).sum();
    (n, t)
}

/// A two-sided Poisson rate-equality check between two pooled arms, with
/// `scale` multiplying the first arm's exposure (so "arm 1 at double flux"
/// is tested by doubling its exposure).
fn rate_equality_check(
    name: &str,
    n1: u64,
    t1_minutes: f64,
    scale1: f64,
    n2: u64,
    t2_minutes: f64,
) -> CheckResult {
    if n1 + n2 == 0 {
        return CheckResult::new(
            name.to_string(),
            false,
            "no upsets observed in either arm — budget too small to decide".to_string(),
        );
    }
    let cmp = poisson_rate_test(
        n1,
        SimDuration::from_minutes(t1_minutes * scale1),
        n2,
        SimDuration::from_minutes(t2_minutes),
    );
    CheckResult::new(
        name.to_string(),
        cmp.p_value >= RATE_P_FLOOR,
        format!(
            "{n1} upsets / {:.1} scaled live min vs {n2} / {:.1} live min: \
             rate ratio {:.3}, p = {:.2e} (floor {RATE_P_FLOOR:.0e})",
            t1_minutes * scale1,
            t2_minutes,
            cmp.rate_ratio,
            cmp.p_value,
        ),
    )
}

/// Doubling the flux (hence the fluence) doubles the expected upset
/// count; per-live-minute rates normalized by the flux ratio agree.
pub struct FluenceDoubling;

impl StatOracle for FluenceDoubling {
    fn name(&self) -> &'static str {
        "fluence-doubling"
    }

    fn family(&self) -> OracleFamily {
        OracleFamily::Metamorphic
    }

    fn claim(&self) -> &'static str {
        "Doubling fluence doubles expected upsets within CI bounds"
    }

    fn run(&self, ctx: &OracleContext) -> OracleReport {
        let b = ctx.budget;
        let mut base = Vec::new();
        let mut doubled_flux = Vec::new();
        let mut doubled_time = Vec::new();
        for i in 0..b.seeds {
            let point = OperatingPoint::nominal();
            base.push(probe_session(
                point,
                1.0,
                b.session_minutes,
                ctx.probe_seed(self.name(), 3 * i),
            ));
            doubled_flux.push(probe_session(
                point,
                2.0,
                b.session_minutes,
                ctx.probe_seed(self.name(), 3 * i + 1),
            ));
            doubled_time.push(probe_session(
                point,
                1.0,
                2.0 * b.session_minutes,
                ctx.probe_seed(self.name(), 3 * i + 2),
            ));
        }
        let (n0, t0) = pooled_upsets(&base);
        let (nf, tf) = pooled_upsets(&doubled_flux);
        let (nt, tt) = pooled_upsets(&doubled_time);
        let checks = vec![
            // The double-flux arm per (flux × live-minute) ≡ the base arm
            // per live-minute: its exposure counts double.
            rate_equality_check("double-flux-doubles-upsets", nf, tf, 2.0, n0, t0),
            // Doubling duration leaves the per-live-minute rate unchanged.
            rate_equality_check("double-duration-same-rate", n0, t0, 1.0, nt, tt),
        ];
        self.report(checks)
    }
}

/// Lowering Vdd never lowers the per-bit cross-section — at the model
/// level (exhaustive sweep) and at the DUT level (every array instance).
pub struct VoltageMonotonicity;

impl StatOracle for VoltageMonotonicity {
    fn name(&self) -> &'static str {
        "voltage-monotonicity"
    }

    fn family(&self) -> OracleFamily {
        OracleFamily::Metamorphic
    }

    fn claim(&self) -> &'static str {
        "Lowering Vdd never lowers per-bit cross-section"
    }

    fn run(&self, _ctx: &OracleContext) -> OracleReport {
        let mut checks = vec![check_sigma_monotonic(&SoftErrorModel::tech_28nm(), "28nm")];

        // DUT level: stepping nominal → vmin_2400 → vmin_900 must never
        // shrink any array's observable cross-section once its own domain
        // voltage drops, and must leave it exactly alone otherwise.
        let points = [
            OperatingPoint::nominal(),
            OperatingPoint::safe(),
            OperatingPoint::vmin_2400(),
        ];
        let mut ok = true;
        let mut detail = String::new();
        for pair in points.windows(2) {
            let (hi, lo) = (pair[0], pair[1]);
            let dut_hi = DeviceUnderTest::xgene2(hi, DeviceUnderTest::paper_vmin(hi.frequency));
            let dut_lo = DeviceUnderTest::xgene2(lo, DeviceUnderTest::paper_vmin(lo.frequency));
            for (a, b) in dut_hi.soc().arrays().zip(dut_lo.soc().arrays()) {
                let s_hi = dut_hi.observable_sigma(a, 1.0).as_cm2();
                let s_lo = dut_lo.observable_sigma(b, 1.0).as_cm2();
                if s_lo < s_hi * (1.0 - 1e-12) {
                    ok = false;
                    detail = format!(
                        "{:?} {:?} σ fell {s_hi:.3e} → {s_lo:.3e} cm² going {} → {}",
                        a.kind(),
                        a.owner(),
                        hi.label(),
                        lo.label(),
                    );
                    break;
                }
            }
        }
        if ok {
            detail = "every array instance's observable σ is non-decreasing along \
                      nominal → safe → vmin_2400"
                .to_string();
        }
        checks.push(CheckResult::new("dut-sigma-monotonic", ok, detail));
        self.report(checks)
    }
}

/// Undervolting one domain perturbs only that domain's structures: at
/// vmin_900 the SoC rail holds 950 mV, so L3 must be untouched while
/// every PMD array's cross-section rises.
pub struct DomainIsolation;

impl StatOracle for DomainIsolation {
    fn name(&self) -> &'static str {
        "domain-isolation"
    }

    fn family(&self) -> OracleFamily {
        OracleFamily::Metamorphic
    }

    fn claim(&self) -> &'static str {
        "Per-domain undervolting perturbs only that domain's structures"
    }

    fn run(&self, ctx: &OracleContext) -> OracleReport {
        let nominal = OperatingPoint::nominal();
        let v790 = OperatingPoint::vmin_900();
        let dut_nom =
            DeviceUnderTest::xgene2(nominal, DeviceUnderTest::paper_vmin(nominal.frequency));
        let dut_790 = DeviceUnderTest::xgene2(v790, DeviceUnderTest::paper_vmin(v790.frequency));

        // Exact layer: σ per array instance.
        let mut soc_ok = true;
        let mut pmd_ok = true;
        let mut detail = String::new();
        for (a, b) in dut_nom.soc().arrays().zip(dut_790.soc().arrays()) {
            let s_nom = dut_nom.observable_sigma(a, 1.0).as_cm2();
            let s_790 = dut_790.observable_sigma(b, 1.0).as_cm2();
            match a.array().voltage_domain() {
                VoltageDomain::Pmd => {
                    if s_790 <= s_nom {
                        pmd_ok = false;
                        detail = format!(
                            "PMD array {:?} σ did not rise at 790 mV: {s_nom:.3e} → {s_790:.3e}",
                            a.kind()
                        );
                    }
                }
                VoltageDomain::Soc | VoltageDomain::Standby => {
                    if s_790 != s_nom {
                        soc_ok = false;
                        detail = format!(
                            "SoC-domain array {:?} σ moved despite its rail holding: \
                             {s_nom:.3e} → {s_790:.3e}",
                            a.kind()
                        );
                    }
                }
            }
        }
        let mut checks = vec![
            CheckResult::new(
                "soc-arrays-untouched",
                soc_ok,
                if soc_ok {
                    "every SoC-domain array σ identical at vmin_900 and nominal".to_string()
                } else {
                    detail.clone()
                },
            ),
            CheckResult::new(
                "pmd-arrays-perturbed",
                pmd_ok,
                if pmd_ok {
                    "every PMD-domain array σ strictly above nominal at 790 mV".to_string()
                } else {
                    detail.clone()
                },
            ),
        ];

        // Statistical layer: the observed L3 EDAC rate must be flux-
        // consistent between nominal and vmin_900, while PMD-domain
        // structures (TLB + L1 + L2) climb.
        let b = ctx.budget;
        let mut nom_reports = Vec::new();
        let mut v790_reports = Vec::new();
        for i in 0..b.seeds {
            nom_reports.push(probe_session(
                nominal,
                1.0,
                b.session_minutes,
                ctx.probe_seed(self.name(), 2 * i),
            ));
            v790_reports.push(probe_session(
                v790,
                1.0,
                b.session_minutes,
                ctx.probe_seed(self.name(), 2 * i + 1),
            ));
        }
        let level_count = |reports: &[SessionReport], level: serscale_types::CacheLevel| -> u64 {
            reports
                .iter()
                .flat_map(|r| r.edac_per_level.iter())
                .filter(|((l, _), _)| *l == level)
                .map(|(_, n)| *n)
                .sum()
        };
        let t_nom: f64 = nom_reports.iter().map(live_minutes).sum();
        let t_790: f64 = v790_reports.iter().map(live_minutes).sum();
        let l3_nom = level_count(&nom_reports, serscale_types::CacheLevel::L3);
        let l3_790 = level_count(&v790_reports, serscale_types::CacheLevel::L3);
        checks.push(rate_equality_check(
            "l3-rate-unchanged",
            l3_nom,
            t_nom,
            1.0,
            l3_790,
            t_790,
        ));
        let pmd_levels = [
            serscale_types::CacheLevel::Tlb,
            serscale_types::CacheLevel::L1,
            serscale_types::CacheLevel::L2,
        ];
        let pmd_nom: u64 = pmd_levels
            .iter()
            .map(|l| level_count(&nom_reports, *l))
            .sum();
        let pmd_790: u64 = pmd_levels
            .iter()
            .map(|l| level_count(&v790_reports, *l))
            .sum();
        let pmd_rate_nom = pmd_nom as f64 / t_nom;
        let pmd_rate_790 = pmd_790 as f64 / t_790;
        checks.push(CheckResult::new(
            "pmd-rate-rises",
            pmd_rate_790 > pmd_rate_nom,
            format!(
                "PMD-domain EDAC rate {pmd_rate_nom:.4}/min at nominal vs \
                 {pmd_rate_790:.4}/min at 790 mV ({pmd_nom} vs {pmd_790} events)"
            ),
        ));
        self.report(checks)
    }
}

/// Flux-spectrum rescaling commutes with session splitting, and the
/// spectrum fold is linear in the response.
pub struct SpectrumRescaling;

impl StatOracle for SpectrumRescaling {
    fn name(&self) -> &'static str {
        "spectrum-rescaling"
    }

    fn family(&self) -> OracleFamily {
        OracleFamily::Metamorphic
    }

    fn claim(&self) -> &'static str {
        "Flux-spectrum rescaling commutes with session splitting"
    }

    fn run(&self, ctx: &OracleContext) -> OracleReport {
        let b = ctx.budget;
        let point = OperatingPoint::nominal();

        // One long session at base flux vs the same beam time split into
        // two sessions at 1.5× flux: per-(flux × live-minute) rates agree.
        let mut long = Vec::new();
        let mut split = Vec::new();
        for i in 0..b.seeds {
            long.push(probe_session(
                point,
                1.0,
                2.0 * b.session_minutes,
                ctx.probe_seed(self.name(), 3 * i),
            ));
            split.push(probe_session(
                point,
                1.5,
                b.session_minutes,
                ctx.probe_seed(self.name(), 3 * i + 1),
            ));
            split.push(probe_session(
                point,
                1.5,
                b.session_minutes,
                ctx.probe_seed(self.name(), 3 * i + 2),
            ));
        }
        let (n_long, t_long) = pooled_upsets(&long);
        let (n_split, t_split) = pooled_upsets(&split);
        let mut checks = vec![rate_equality_check(
            "rescaled-split-sessions-match",
            n_split,
            t_split,
            1.5,
            n_long,
            t_long,
        )];

        // Fold linearity: scaling the Weibull saturation cross-section by
        // c scales the spectrum-folded σ_eff by exactly c.
        let spectrum = NeutronSpectrum::atmospheric();
        let base = WeibullResponse::tech_28nm();
        let folded = spectrum.fold(&base).as_cm2();
        let scaled = WeibullResponse::new(
            CrossSection::cm2(base.sigma_sat().as_cm2() * 3.0),
            3.0,
            20.0,
            1.5,
        );
        let folded_scaled = spectrum.fold(&scaled).as_cm2();
        let lin_err = (folded_scaled - 3.0 * folded).abs() / (3.0 * folded);
        checks.push(CheckResult::new(
            "fold-linear-in-response",
            lin_err < 1e-9,
            format!("3×σ_sat fold vs 3×fold relative error {lin_err:.2e}"),
        ));

        // Threshold monotonicity: a harder turn-on threshold can only
        // shrink the folded σ_eff.
        let harder = spectrum
            .fold(&WeibullResponse::new(base.sigma_sat(), 30.0, 20.0, 1.5))
            .as_cm2();
        checks.push(CheckResult::new(
            "fold-threshold-monotonic",
            harder < folded,
            format!("σ_eff {folded:.3e} cm² at E₀=3 MeV vs {harder:.3e} at E₀=30 MeV"),
        ));
        self.report(checks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::TrialBudget;

    fn ctx() -> OracleContext {
        OracleContext::new(0x5e45_ca1e, TrialBudget::small())
    }

    #[test]
    fn fluence_doubling_holds() {
        let report = FluenceDoubling.run(&ctx());
        assert!(report.passed(), "{:#?}", report.checks);
    }

    #[test]
    fn voltage_monotonicity_holds() {
        let report = VoltageMonotonicity.run(&ctx());
        assert!(report.passed(), "{:#?}", report.checks);
    }

    #[test]
    fn domain_isolation_holds() {
        let report = DomainIsolation.run(&ctx());
        assert!(report.passed(), "{:#?}", report.checks);
    }

    #[test]
    fn spectrum_rescaling_holds() {
        let report = SpectrumRescaling.run(&ctx());
        assert!(report.passed(), "{:#?}", report.checks);
    }

    /// The suite's own meta-test: a deliberately inverted Qcrit∝V law —
    /// σ *falling* as Vdd drops — must be caught by the monotonicity
    /// oracle. This is the acceptance criterion that the oracles detect
    /// injected defects rather than vacuously passing.
    #[test]
    fn flipped_qcrit_sign_is_caught() {
        struct FlippedQcrit;
        impl VoltageResponse for FlippedQcrit {
            fn sigma_ratio(&self, voltage: Millivolts) -> f64 {
                // The 28 nm law with the exponent's sign flipped.
                let v0 = 980.0;
                (3.2 * (f64::from(voltage.get()) / v0 - 1.0)).exp()
            }
        }
        let verdict = check_sigma_monotonic(&FlippedQcrit, "flipped");
        assert!(
            !verdict.passed,
            "inverted voltage law slipped past the oracle: {}",
            verdict.detail
        );
        assert!(verdict.detail.contains("lowering Vdd lowered"));

        // And the genuine law passes the very same check.
        assert!(check_sigma_monotonic(&SoftErrorModel::tech_28nm(), "real").passed);
    }
}
