//! The suite verdict: every oracle's checks, renderable for humans and
//! serializable to a small, stable JSON document for CI.
//!
//! The JSON writer is hand-rolled: the workspace's vendored `serde` is a
//! no-op marker-trait stand-in (no serializer ships with it), and the
//! verdict schema is flat enough that string building is the simpler,
//! dependency-free choice.

use std::fmt::Write as _;

use crate::oracle::{OracleFamily, OracleReport};

/// The outcome of one full `repro verify` run.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteVerdict {
    /// The master seed the oracles forked from.
    pub seed: u64,
    /// The budget name the suite ran under.
    pub budget: String,
    /// Every oracle's report, in execution order.
    pub oracles: Vec<OracleReport>,
}

/// One exported verdict gauge: `(name, labels, value)`.
pub type HeadlineGauge = (String, Vec<(String, String)>, f64);

impl SuiteVerdict {
    /// True iff every check of every oracle passed.
    pub fn all_green(&self) -> bool {
        self.oracles.iter().all(OracleReport::passed)
    }

    /// Total number of individual checks.
    pub fn check_count(&self) -> usize {
        self.oracles.iter().map(|o| o.checks.len()).sum()
    }

    /// Number of failing checks.
    pub fn violation_count(&self) -> usize {
        self.oracles.iter().map(|o| o.violations().count()).sum()
    }

    /// Renders a human-readable summary table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "verification suite — seed {}, budget {}",
            self.seed, self.budget
        );
        for family in [
            OracleFamily::Metamorphic,
            OracleFamily::Differential,
            OracleFamily::Ecc,
        ] {
            let oracles: Vec<_> = self.oracles.iter().filter(|o| o.family == family).collect();
            if oracles.is_empty() {
                continue;
            }
            let _ = writeln!(out, "\n[{family}]");
            for oracle in oracles {
                let mark = if oracle.passed() { "PASS" } else { "FAIL" };
                let _ = writeln!(out, "  {mark}  {} — {}", oracle.name, oracle.claim);
                for check in &oracle.checks {
                    let mark = if check.passed { "ok " } else { "VIOLATION" };
                    let _ = writeln!(out, "         {mark} {}: {}", check.name, check.detail);
                }
            }
        }
        let _ = writeln!(
            out,
            "\n{} checks, {} violations — {}",
            self.check_count(),
            self.violation_count(),
            if self.all_green() { "ALL GREEN" } else { "RED" }
        );
        out
    }

    /// The verdict's headline numbers as `(gauge name, labels, value)`
    /// rows, ready to export as telemetry gauges (`repro verify
    /// --telemetry-out` feeds them straight into the metrics snapshot).
    /// Pass/fail flags are encoded as 1.0/0.0.
    pub fn headline_gauges(&self) -> Vec<HeadlineGauge> {
        let mut out = vec![
            (
                "verify_all_green".to_string(),
                Vec::new(),
                if self.all_green() { 1.0 } else { 0.0 },
            ),
            (
                "verify_checks_total".to_string(),
                Vec::new(),
                self.check_count() as f64,
            ),
            (
                "verify_violations_total".to_string(),
                Vec::new(),
                self.violation_count() as f64,
            ),
        ];
        for family in [
            OracleFamily::Metamorphic,
            OracleFamily::Differential,
            OracleFamily::Ecc,
        ] {
            let oracles = self.oracles.iter().filter(|o| o.family == family);
            let violations: usize = oracles.map(|o| o.violations().count()).sum();
            out.push((
                "verify_violations".to_string(),
                vec![("family".to_string(), family.to_string())],
                violations as f64,
            ));
        }
        out
    }

    /// Serializes the verdict to JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"seed\":{},\"budget\":{},\"all_green\":{},\"checks\":{},\"violations\":{},",
            self.seed,
            json_string(&self.budget),
            self.all_green(),
            self.check_count(),
            self.violation_count(),
        );
        out.push_str("\"oracles\":[");
        for (i, oracle) in self.oracles.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":{},\"family\":{},\"claim\":{},\"passed\":{},\"checks\":[",
                json_string(&oracle.name),
                json_string(&oracle.family.to_string()),
                json_string(&oracle.claim),
                oracle.passed(),
            );
            for (j, check) in oracle.checks.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"name\":{},\"passed\":{},\"detail\":{}}}",
                    json_string(&check.name),
                    check.passed,
                    json_string(&check.detail),
                );
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

/// Escapes a string into a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::CheckResult;

    fn verdict(passed: bool) -> SuiteVerdict {
        SuiteVerdict {
            seed: 7,
            budget: "small".into(),
            oracles: vec![OracleReport {
                name: "demo".into(),
                family: OracleFamily::Ecc,
                claim: "a \"quoted\" claim".into(),
                checks: vec![CheckResult::new("c1", passed, "line1\nline2")],
            }],
        }
    }

    #[test]
    fn green_accounting() {
        assert!(verdict(true).all_green());
        let red = verdict(false);
        assert!(!red.all_green());
        assert_eq!(red.check_count(), 1);
        assert_eq!(red.violation_count(), 1);
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let json = verdict(false).to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"all_green\":false"));
        assert!(json.contains("a \\\"quoted\\\" claim"));
        assert!(json.contains("line1\\nline2"));
        // Balanced braces/brackets (a cheap structural sanity check).
        let opens = json.matches('{').count() + json.matches('[').count();
        let closes = json.matches('}').count() + json.matches(']').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn headline_gauges_cover_the_verdict() {
        let gauges = verdict(false).headline_gauges();
        let find = |name: &str| {
            gauges
                .iter()
                .find(|(n, labels, _)| n == name && labels.is_empty())
                .map(|(_, _, v)| *v)
        };
        assert_eq!(find("verify_all_green"), Some(0.0));
        assert_eq!(find("verify_checks_total"), Some(1.0));
        assert_eq!(find("verify_violations_total"), Some(1.0));
        let ecc = gauges
            .iter()
            .find(|(n, labels, _)| {
                n == "verify_violations" && labels.iter().any(|(_, v)| v == "ecc")
            })
            .map(|(_, _, v)| *v);
        assert_eq!(ecc, Some(1.0));
    }

    #[test]
    fn render_mentions_every_check() {
        let text = verdict(false).render();
        assert!(text.contains("FAIL"));
        assert!(text.contains("VIOLATION"));
        assert!(text.contains("demo"));
        assert!(text.contains("RED"));
    }
}
