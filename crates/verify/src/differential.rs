//! Differential oracles: the same campaign executed through independent
//! engine paths must agree bit for bit.
//!
//! Three paths exist in `serscale-core`:
//!
//! 1. the **naive reference executor** (`run_reference`) — one trial at a
//!    time, absorbed immediately, no speculation;
//! 2. the **sequential wave engine** (`run`) — speculative waves merged in
//!    canonical trial order, one worker;
//! 3. the **parallel wave engine** (`run_parallel(jobs)`) — the same
//!    engine sharded over a worker pool.
//!
//! Because every trial's physics derives from a counter-based stream keyed
//! only by (session seed, trial index), all three must produce identical
//! [`SessionReport`](serscale_core::session::SessionReport)s *and*
//! identical event traces. Any divergence — a speculation leak past a
//! stopping rule, a merge reordering, a worker-count-dependent draw —
//! shows up here as an inequality, with no statistics needed.

use serscale_core::campaign::{Campaign, CampaignConfig, CampaignReport, CampaignRunOptions};
use serscale_core::dut::DeviceUnderTest;
use serscale_core::journal::{journal_path, start_or_resume};
use serscale_core::session::{SessionLimits, TestSession};
use serscale_core::trace::Logbook;
use serscale_soc::platform::OperatingPoint;
use serscale_soc::{PlatformSpec, RawPlatformSpec};
use serscale_stats::SimRng;
use serscale_types::{Flux, SimDuration};

use crate::oracle::{CheckResult, OracleContext, OracleFamily, OracleReport, StatOracle};

/// The worker counts the parallel engine is differentially tested at:
/// below, at, and above the typical core count, plus the degenerate 1.
const JOBS: [usize; 4] = [1, 2, 3, 8];

fn campaign_config(ctx: &OracleContext, oracle: &str) -> CampaignConfig {
    let mut config = CampaignConfig::paper_scaled(ctx.budget.campaign_fraction);
    config.seed = ctx.probe_seed(oracle, 0);
    config
}

fn summarize(report: &CampaignReport) -> String {
    let events: u64 = report.sessions.iter().map(|s| s.error_events()).sum();
    let upsets: u64 = report.sessions.iter().map(|s| s.memory_upsets).sum();
    format!(
        "{} sessions, {upsets} memory upsets, {events} error events",
        report.sessions.len()
    )
}

/// Sequential path, parallel engine at several worker counts, and the
/// naive reference executor produce bit-identical campaign reports.
pub struct EngineEquivalence;

impl StatOracle for EngineEquivalence {
    fn name(&self) -> &'static str {
        "engine-equivalence"
    }

    fn family(&self) -> OracleFamily {
        OracleFamily::Differential
    }

    fn claim(&self) -> &'static str {
        "Reference, sequential and parallel engines agree bit for bit"
    }

    fn run(&self, ctx: &OracleContext) -> OracleReport {
        let campaign = Campaign::new(campaign_config(ctx, self.name()));
        let reference = campaign.run_reference();
        let mut checks = vec![CheckResult::new(
            "reference-baseline",
            reference.sessions.iter().any(|s| s.memory_upsets > 0),
            format!("reference executor: {}", summarize(&reference)),
        )];
        for jobs in JOBS {
            let engine = campaign.run_parallel(jobs);
            let agree = engine == reference;
            checks.push(CheckResult::new(
                format!("engine-jobs-{jobs}"),
                agree,
                if agree {
                    format!("jobs={jobs} report identical to reference")
                } else {
                    format!(
                        "jobs={jobs} diverged from reference: {} vs {}",
                        summarize(&engine),
                        summarize(&reference),
                    )
                },
            ));
        }
        self.report(checks)
    }
}

/// The ordered event trace (runs, EDAC records, recoveries, session end)
/// is identical across the reference executor and the wave engine at any
/// worker count — observers see one canonical history.
pub struct TraceEquivalence;

impl StatOracle for TraceEquivalence {
    fn name(&self) -> &'static str {
        "trace-equivalence"
    }

    fn family(&self) -> OracleFamily {
        OracleFamily::Differential
    }

    fn claim(&self) -> &'static str {
        "Event traces are identical across engines and worker counts"
    }

    fn run(&self, ctx: &OracleContext) -> OracleReport {
        // A session stressed enough to crash and recover (vmin_2400 has
        // the paper's worst error rate), so the trace exercises every
        // event kind.
        let point = OperatingPoint::vmin_2400();
        let flux = Flux::per_cm2_s(1.5e6);
        let limits =
            SessionLimits::time_boxed(SimDuration::from_minutes(ctx.budget.session_minutes));
        let seed = ctx.probe_seed(self.name(), 0);
        let trace_of = |run: &dyn Fn(&mut TestSession, &mut SimRng, &mut Logbook)| -> Logbook {
            let dut = DeviceUnderTest::xgene2(point, DeviceUnderTest::paper_vmin(point.frequency));
            let mut session = TestSession::new(dut, flux, limits);
            let mut rng = SimRng::seed_from(seed);
            let mut log = Logbook::new();
            run(&mut session, &mut rng, &mut log);
            log
        };

        let reference = trace_of(&|s, rng, log| {
            s.run_reference_observed(rng, log);
        });
        let mut checks = vec![CheckResult::new(
            "trace-nonempty",
            !reference.is_empty(),
            format!("reference trace carries {} events", reference.len()),
        )];
        for jobs in JOBS {
            let engine = trace_of(&|s, rng, log| {
                s.run_observed_with(rng, jobs, log);
            });
            let agree = engine == reference;
            checks.push(CheckResult::new(
                format!("trace-jobs-{jobs}"),
                agree,
                if agree {
                    format!("jobs={jobs} trace identical ({} events)", engine.len())
                } else {
                    format!(
                        "jobs={jobs} trace diverged: {} vs {} events",
                        engine.len(),
                        reference.len(),
                    )
                },
            ));
        }
        self.report(checks)
    }
}

/// An interrupted-and-resumed journaled campaign reproduces the
/// uninterrupted run bit for bit — report *and* trace — at `jobs` 1 and
/// 8, with the interruption landing both on a record boundary and
/// mid-record (a torn write the recovery must truncate away).
pub struct ResumeEquivalence;

impl ResumeEquivalence {
    /// One truncate-and-resume round; returns the checks it produced.
    fn round(
        campaign: &Campaign,
        golden: &CampaignReport,
        golden_log: &Logbook,
        dir: &std::path::Path,
        keep: TruncationPoint,
        jobs: usize,
        label: &str,
    ) -> Vec<CheckResult> {
        let fail = |detail: String| vec![CheckResult::new(label, false, detail)];

        // Write a complete journal, then chop its tail.
        let _ = std::fs::remove_dir_all(dir);
        let (mut writer, recovered) = match start_or_resume(dir, campaign.config()) {
            Ok(pair) => pair,
            Err(e) => return fail(format!("journal open failed: {e}")),
        };
        if recovered.is_some() {
            return fail("fresh directory unexpectedly recovered".into());
        }
        let mut log = Logbook::new();
        let full = campaign.run_recoverable(
            CampaignRunOptions {
                journal: Some(&mut writer),
                ..CampaignRunOptions::with_jobs(jobs)
            },
            &mut log,
        );
        drop(writer);
        if &full != golden || &log != golden_log {
            return fail("journaled run diverged from uninterrupted run".into());
        }
        let path = journal_path(dir);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => return fail(format!("journal unreadable: {e}")),
        };
        let cut = match keep {
            TruncationPoint::RecordBoundary(fraction) => {
                let lines: Vec<&str> = text.lines().collect();
                let keep_lines = ((lines.len() as f64 * fraction) as usize).max(1);
                lines[..keep_lines].join("\n") + "\n"
            }
            TruncationPoint::MidRecord => {
                // Keep half the bytes: almost surely tears a record, which
                // recovery must detect (via the per-line digest) and drop.
                text[..text.len() / 2].to_string()
            }
        };
        if let Err(e) = std::fs::write(&path, cut) {
            return fail(format!("truncation failed: {e}"));
        }

        // Resume and compare.
        let (mut writer, recovered) = match start_or_resume(dir, campaign.config()) {
            Ok(pair) => pair,
            Err(e) => return fail(format!("resume open failed: {e}")),
        };
        let mut resumed_log = Logbook::new();
        let resumed = campaign.run_recoverable(
            CampaignRunOptions {
                journal: Some(&mut writer),
                recovered: recovered.as_ref(),
                ..CampaignRunOptions::with_jobs(jobs)
            },
            &mut resumed_log,
        );
        drop(writer);
        let report_ok = &resumed == golden;
        let trace_ok = &resumed_log == golden_log;
        let replayed = recovered.as_ref().map_or(0, |r| r.trials_recovered());
        vec![CheckResult::new(
            label,
            report_ok && trace_ok,
            if report_ok && trace_ok {
                format!("resume after {replayed} replayed trials bit-identical (jobs={jobs})")
            } else {
                format!(
                    "resume diverged (jobs={jobs}, report ok: {report_ok}, trace ok: {trace_ok})"
                )
            },
        )]
    }
}

/// The data-driven platform path is equivalent to the hardwired one: an
/// X-Gene 2 campaign configured from a spec that round-tripped through
/// the raw wire carrier produces reports and traces bit-identical to the
/// constructor-built campaign, at `jobs` 1 and 8 — and the second
/// built-in platform (Zynq MPSoC) runs the same engine deterministically.
pub struct PlatformEquivalence;

impl StatOracle for PlatformEquivalence {
    fn name(&self) -> &'static str {
        "platform-equivalence"
    }

    fn family(&self) -> OracleFamily {
        OracleFamily::Differential
    }

    fn claim(&self) -> &'static str {
        "Spec-loaded platforms reproduce hardwired campaigns bit for bit"
    }

    fn run(&self, ctx: &OracleContext) -> OracleReport {
        let seed = ctx.probe_seed(self.name(), 0);
        let fraction = ctx.budget.campaign_fraction;
        let configured = |spec: &PlatformSpec| {
            let mut config = CampaignConfig::for_platform_scaled(spec, fraction);
            config.seed = seed;
            config
        };
        let run = |config: CampaignConfig, jobs: usize| {
            let mut log = Logbook::new();
            let report = Campaign::new(config).run_observed(jobs, &mut log);
            (report, log)
        };

        let mut checks = Vec::new();
        let built_in = PlatformSpec::xgene2();
        match PlatformSpec::try_from(RawPlatformSpec::from(&built_in)) {
            Ok(round_tripped) => {
                checks.push(CheckResult::new(
                    "spec-round-trip",
                    round_tripped == built_in,
                    "X-Gene 2 spec survives the raw wire carrier unchanged",
                ));
                for jobs in [1usize, 8] {
                    let (hardwired, hardwired_log) = run(configured(&built_in), jobs);
                    let (loaded, loaded_log) = run(configured(&round_tripped), jobs);
                    let report_ok = loaded == hardwired;
                    let trace_ok = loaded_log == hardwired_log;
                    checks.push(CheckResult::new(
                        format!("xgene2-spec-vs-builtin-jobs-{jobs}"),
                        report_ok && trace_ok,
                        if report_ok && trace_ok {
                            format!(
                                "spec-loaded campaign bit-identical (jobs={jobs}, {})",
                                summarize(&loaded)
                            )
                        } else {
                            format!(
                                "spec-loaded campaign diverged (jobs={jobs}, report ok: \
                                 {report_ok}, trace ok: {trace_ok})"
                            )
                        },
                    ));
                }
            }
            Err(e) => checks.push(CheckResult::new(
                "spec-round-trip",
                false,
                format!("X-Gene 2 spec failed to re-validate: {e}"),
            )),
        }

        // The second platform exercises the same engine end to end: its
        // campaign must be deterministic across worker counts and actually
        // simulate something at every scheduled point.
        let zynq = PlatformSpec::zynq_mpsoc();
        let (zynq_seq, zynq_seq_log) = run(configured(&zynq), 1);
        checks.push(CheckResult::new(
            "zynq-campaign-runs",
            zynq_seq.sessions.len() == zynq.campaign.len()
                && zynq_seq.sessions.iter().all(|s| s.runs > 0),
            format!("zynq-mpsoc: {}", summarize(&zynq_seq)),
        ));
        let (zynq_par, zynq_par_log) = run(configured(&zynq), 8);
        let agree = zynq_par == zynq_seq && zynq_par_log == zynq_seq_log;
        checks.push(CheckResult::new(
            "zynq-jobs-8",
            agree,
            if agree {
                "zynq-mpsoc report and trace identical at jobs=8".to_string()
            } else {
                "zynq-mpsoc diverged across worker counts".to_string()
            },
        ));
        self.report(checks)
    }
}

/// Where [`ResumeEquivalence`] cuts the journal before resuming.
enum TruncationPoint {
    /// Keep this fraction of complete records (a clean crash between
    /// fsync'd waves).
    RecordBoundary(f64),
    /// Cut mid-line (a torn write during the crash).
    MidRecord,
}

impl StatOracle for ResumeEquivalence {
    fn name(&self) -> &'static str {
        "resume-equivalence"
    }

    fn family(&self) -> OracleFamily {
        OracleFamily::Differential
    }

    fn claim(&self) -> &'static str {
        "Interrupted + resumed campaigns reproduce uninterrupted runs bit for bit"
    }

    fn run(&self, ctx: &OracleContext) -> OracleReport {
        let campaign = Campaign::new(campaign_config(ctx, self.name()));
        let mut golden_log = Logbook::new();
        let golden = campaign.run_observed(1, &mut golden_log);
        let mut checks = vec![CheckResult::new(
            "golden-baseline",
            golden.sessions.iter().any(|s| s.runs > 0),
            summarize(&golden),
        )];
        let dir = std::env::temp_dir().join(format!(
            "serscale-verify-resume-{}-{:x}",
            std::process::id(),
            ctx.probe_seed(self.name(), 1),
        ));
        for jobs in [1usize, 8] {
            checks.extend(Self::round(
                &campaign,
                &golden,
                &golden_log,
                &dir,
                TruncationPoint::RecordBoundary(0.6),
                jobs,
                &format!("resume-boundary-jobs-{jobs}"),
            ));
        }
        checks.extend(Self::round(
            &campaign,
            &golden,
            &golden_log,
            &dir,
            TruncationPoint::MidRecord,
            8,
            "resume-torn-tail-jobs-8",
        ));
        let _ = std::fs::remove_dir_all(&dir);
        self.report(checks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::TrialBudget;

    fn ctx() -> OracleContext {
        OracleContext::new(0xd1ff, TrialBudget::small())
    }

    #[test]
    fn engines_agree() {
        let report = EngineEquivalence.run(&ctx());
        assert!(report.passed(), "{:#?}", report.checks);
    }

    #[test]
    fn traces_agree() {
        let report = TraceEquivalence.run(&ctx());
        assert!(report.passed(), "{:#?}", report.checks);
    }

    #[test]
    fn resume_agrees() {
        let report = ResumeEquivalence.run(&ctx());
        assert!(report.passed(), "{:#?}", report.checks);
    }

    #[test]
    fn platforms_agree() {
        let report = PlatformEquivalence.run(&ctx());
        assert!(report.passed(), "{:#?}", report.checks);
    }
}
