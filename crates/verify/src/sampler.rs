//! Differential oracle for the batched arrival sampler.
//!
//! The hot path in `serscale-core` draws one Poisson arrival count per
//! trial from a cached rate envelope and splits events across sources
//! multinomially; the reference path rebuilds the envelope from the
//! physics every trial and classifies each strike through the real
//! encode/decode codecs. The two must consume the RNG stream
//! **draw-for-draw identically** — same counts, same event positions,
//! same EDAC record order — at every operating point. Any divergence
//! (a skipped draw on the zero-upset short-circuit, a reordered source
//! walk, a cached `p_extra` drifting from the recomputed one) breaks
//! campaign determinism silently, so this oracle diffs trial outcomes
//! *and* a post-trial stream sentinel, then cross-checks a whole
//! session through the wave engine at `jobs` 1 and 8 against the
//! per-event reference executor.

use serscale_core::classify::RunVerdict;
use serscale_core::dut::DeviceUnderTest;
use serscale_core::runner::BenchmarkRunner;
use serscale_core::session::{SessionLimits, TestSession};
use serscale_soc::platform::OperatingPoint;
use serscale_stats::SimRng;
use serscale_types::{Flux, Megahertz, Millivolts, SimDuration, SimInstant};
use serscale_workload::Benchmark;

use crate::oracle::{CheckResult, OracleContext, OracleFamily, OracleReport, StatOracle};

/// The beam flux the sampler probes run under (the experiments' working
/// flux).
const PROBE_FLUX: f64 = 1.5e6;

/// Derives a pseudo-random but reproducible operating point from a probe
/// seed: PMD and SoC rails on the 5 mV regulator grid inside the paper's
/// explored band (790–980 mV), frequency anywhere in 900–2400 MHz.
pub fn probed_operating_point(seed: u64) -> OperatingPoint {
    let mut rng = SimRng::seed_from(seed);
    let pmd = 790 + 5 * rng.below(39) as u32; // 790..=980
    let soc = 900 + 5 * rng.below(11) as u32; // 900..=950
    let frequency = 900 + rng.below(1501) as u32; // 900..=2400
    OperatingPoint {
        pmd: Millivolts::new(pmd),
        soc: Millivolts::new(soc),
        frequency: Megahertz::new(frequency),
    }
}

fn runner_at(point: OperatingPoint) -> BenchmarkRunner {
    let vmin = DeviceUnderTest::paper_vmin(point.frequency);
    BenchmarkRunner::new(
        DeviceUnderTest::xgene2(point, vmin),
        Flux::per_cm2_s(PROBE_FLUX),
    )
}

/// Runs `trials` counter-derived trial streams through both paths at one
/// operating point. Returns `(diverged_trial, edac_records, events)`:
/// the first trial whose outcome or post-trial stream position differed
/// (`None` when all agree), plus activity counters so the caller can
/// prove the probe exercised non-trivial physics.
fn diff_trials(point: OperatingPoint, root_seed: u64, trials: u64) -> (Option<u64>, u64, u64) {
    let mut batched = runner_at(point);
    let mut reference = runner_at(point);
    let root = SimRng::seed_from(root_seed);
    let mut edac = 0u64;
    let mut events = 0u64;
    for trial in 0..trials {
        let benchmark = Benchmark::ALL[(trial % Benchmark::ALL.len() as u64) as usize];
        // The exact per-trial stream recipe the session driver uses.
        let mut fast_rng = root.stream("trial", &[trial]);
        let mut slow_rng = root.stream("trial", &[trial]);
        let fast = batched.run_once(&mut fast_rng, benchmark, SimInstant::EPOCH);
        let slow = reference.run_once_reference(&mut slow_rng, benchmark, SimInstant::EPOCH);
        // Sentinel draw: equal outcomes with unequal stream positions
        // would still desynchronize every later consumer.
        if fast != slow || fast_rng.uniform() != slow_rng.uniform() {
            return (Some(trial), edac, events);
        }
        edac += fast.edac.len() as u64;
        events += u64::from(fast.verdict != RunVerdict::Correct) + fast.sram_strikes;
    }
    (None, edac, events)
}

/// The batched sampler and the per-event reference consume RNG streams
/// identically (same counts, same event positions, same EDAC record
/// order) across random operating points, and the wave engine built on
/// the batched path matches the per-event reference executor at `jobs`
/// 1 and 8.
pub struct SamplerEquivalence;

impl StatOracle for SamplerEquivalence {
    fn name(&self) -> &'static str {
        "batched-sampler-equivalence"
    }

    fn family(&self) -> OracleFamily {
        OracleFamily::Differential
    }

    fn claim(&self) -> &'static str {
        "Batched arrival sampling consumes RNG streams exactly as the per-event reference"
    }

    fn run(&self, ctx: &OracleContext) -> OracleReport {
        let mut checks = Vec::new();

        // Trial-level: the four campaign points plus `seeds` randomized
        // ones, each probed over enough trials to see real strikes.
        let trials = 120 * ctx.budget.seeds;
        let mut points: Vec<(String, OperatingPoint)> = OperatingPoint::CAMPAIGN
            .into_iter()
            .map(|p| (p.label(), p))
            .collect();
        for k in 0..ctx.budget.seeds {
            let point = probed_operating_point(ctx.probe_seed(self.name(), k));
            points.push((format!("random-{k} ({})", point.label()), point));
        }
        let mut total_edac = 0u64;
        let mut total_events = 0u64;
        for (i, (label, point)) in points.iter().enumerate() {
            let seed = ctx.probe_seed(self.name(), 100 + i as u64);
            let (diverged, edac, events) = diff_trials(*point, seed, trials);
            total_edac += edac;
            total_events += events;
            checks.push(CheckResult::new(
                format!("trials-{label}"),
                diverged.is_none(),
                match diverged {
                    None => format!("{trials} trials draw-identical ({edac} EDAC records)"),
                    Some(t) => format!("outcome or stream position diverged at trial {t}"),
                },
            ));
        }
        checks.push(CheckResult::new(
            "probe-activity",
            total_edac > 0 && total_events > 0,
            format!(
                "probes exercised real physics: {total_edac} EDAC records, {total_events} strikes+events"
            ),
        ));

        // Session-level: the batched wave engine against the per-event
        // reference executor, at one randomized point, jobs 1 and 8.
        let point = probed_operating_point(ctx.probe_seed(self.name(), 7));
        let seed = ctx.probe_seed(self.name(), 8);
        let limits =
            SessionLimits::time_boxed(SimDuration::from_minutes(ctx.budget.session_minutes));
        let session = || {
            let vmin = DeviceUnderTest::paper_vmin(point.frequency);
            TestSession::new(
                DeviceUnderTest::xgene2(point, vmin),
                Flux::per_cm2_s(PROBE_FLUX),
                limits,
            )
        };
        let reference = session().run_reference(&mut SimRng::seed_from(seed));
        for jobs in [1usize, 8] {
            let wave = session().run_parallel(&mut SimRng::seed_from(seed), jobs);
            let agree = wave == reference;
            checks.push(CheckResult::new(
                format!("session-jobs-{jobs}"),
                agree,
                if agree {
                    format!(
                        "batched session at jobs={jobs} identical to per-event reference \
                         ({} runs at {})",
                        reference.runs,
                        point.label()
                    )
                } else {
                    format!(
                        "batched session at jobs={jobs} diverged at {}",
                        point.label()
                    )
                },
            ));
        }

        self.report(checks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::TrialBudget;
    use proptest::prelude::*;

    #[test]
    fn sampler_oracle_passes() {
        let report = SamplerEquivalence.run(&OracleContext::new(0x5a3b, TrialBudget::small()));
        assert!(report.passed(), "{:#?}", report.checks);
    }

    #[test]
    fn probed_points_stay_on_the_regulator_grid() {
        for seed in 0..200 {
            let p = probed_operating_point(seed);
            assert!((790..=980).contains(&p.pmd.get()) && p.pmd.get().is_multiple_of(5));
            assert!((900..=950).contains(&p.soc.get()) && p.soc.get().is_multiple_of(5));
            assert!((900..=2400).contains(&p.frequency.get()));
        }
    }

    proptest! {
        /// Batched and per-event trials agree — outcome and stream
        /// position — at arbitrary grid operating points and seeds.
        #[test]
        fn batched_and_reference_trials_draw_identically(
            pmd_step in 0u32..=38,
            soc_step in 0u32..=10,
            frequency in 900u32..=2400,
            seed in any::<u64>(),
        ) {
            let point = OperatingPoint {
                pmd: Millivolts::new(790 + 5 * pmd_step),
                soc: Millivolts::new(900 + 5 * soc_step),
                frequency: Megahertz::new(frequency),
            };
            let (diverged, _, _) = diff_trials(point, seed, 48);
            prop_assert_eq!(diverged, None, "at {}", point.label());
        }

        /// The wave engine over the batched path reproduces the
        /// per-event reference executor at jobs 1 and 8. Sessions are
        /// kept short — the per-trial sweep above carries the volume.
        #[test]
        fn batched_sessions_match_reference_at_jobs_1_and_8(
            point_seed in any::<u64>(),
            seed in any::<u64>(),
        ) {
            let point = probed_operating_point(point_seed);
            let limits = SessionLimits::time_boxed(SimDuration::from_minutes(2.0));
            let session = || {
                let vmin = DeviceUnderTest::paper_vmin(point.frequency);
                TestSession::new(
                    DeviceUnderTest::xgene2(point, vmin),
                    Flux::per_cm2_s(PROBE_FLUX),
                    limits,
                )
            };
            let reference = session().run_reference(&mut SimRng::seed_from(seed));
            for jobs in [1usize, 8] {
                let wave = session().run_parallel(&mut SimRng::seed_from(seed), jobs);
                prop_assert_eq!(&wave, &reference, "jobs {} at {}", jobs, point.label());
            }
        }
    }
}
