//! ECC oracles: exhaustive algebraic checks of the SECDED codec and the
//! physical interleaving, over *every* codeword position — no sampling,
//! no statistics, just the full truth table.

use serscale_ecc::interleave::{Interleaver, LogicalBit, PhysicalBit};
use serscale_ecc::secded::{Codeword, DecodeOutcome, CODEWORD_BITS};
use serscale_ecc::{ProtectionScheme, UpsetOutcome};
use serscale_stats::SimRng;

use crate::oracle::{CheckResult, OracleContext, OracleFamily, OracleReport, StatOracle};

/// The data patterns every exhaustive sweep runs under: the degenerate
/// words, the alternating masks, and a few seeded pseudo-random words.
fn patterns(seed: u64) -> Vec<u64> {
    let mut p = vec![
        0,
        u64::MAX,
        0xAAAA_AAAA_AAAA_AAAA,
        0x5555_5555_5555_5555,
        0xC0FE_D00D_5EED_BEEF,
    ];
    let rng = SimRng::seed_from(seed);
    p.extend(rng.take_u64s(3));
    p
}

/// SECDED corrects every single-bit flip (reporting the exact position)
/// and detects-without-correcting every double-bit flip, over all 72
/// positions and all pattern words.
pub struct SecdedExhaustive;

impl StatOracle for SecdedExhaustive {
    fn name(&self) -> &'static str {
        "secded-exhaustive"
    }

    fn family(&self) -> OracleFamily {
        OracleFamily::Ecc
    }

    fn claim(&self) -> &'static str {
        "SECDED corrects all single flips and detects all double flips"
    }

    fn run(&self, ctx: &OracleContext) -> OracleReport {
        let words = patterns(ctx.probe_seed(self.name(), 0));
        let mut checks = Vec::new();

        // Clean path: encode/decode is the identity.
        let clean_ok = words
            .iter()
            .all(|&w| Codeword::encode(w).decode() == DecodeOutcome::Clean { data: w });
        checks.push(CheckResult::new(
            "clean-round-trip",
            clean_ok,
            format!("{} patterns decode clean to themselves", words.len()),
        ));

        // Every single flip corrected, right data, right position.
        let mut singles = 0u64;
        let mut single_fail = None;
        for &w in &words {
            for p in 0..CODEWORD_BITS {
                let mut cw = Codeword::encode(w);
                cw.flip(p);
                singles += 1;
                match cw.decode() {
                    DecodeOutcome::Corrected { data, position } if data == w && position == p => {}
                    other => {
                        single_fail
                            .get_or_insert(format!("flip at {p} on {w:#018x} decoded {other:?}"));
                    }
                }
            }
        }
        checks.push(CheckResult::new(
            "single-bit-corrected",
            single_fail.is_none(),
            single_fail.unwrap_or(format!(
                "{singles} single-flip cases all corrected in place"
            )),
        ));

        // Every distinct double flip detected, never miscorrected.
        let mut doubles = 0u64;
        let mut double_fail = None;
        for &w in &words {
            for p in 0..CODEWORD_BITS {
                for q in (p + 1)..CODEWORD_BITS {
                    let mut cw = Codeword::encode(w);
                    cw.flip(p);
                    cw.flip(q);
                    doubles += 1;
                    if cw.decode() != DecodeOutcome::DetectedUncorrectable {
                        double_fail.get_or_insert(format!(
                            "flips at ({p},{q}) on {w:#018x} decoded {:?}",
                            cw.decode()
                        ));
                    }
                }
            }
        }
        checks.push(CheckResult::new(
            "double-bit-detected",
            double_fail.is_none(),
            double_fail.unwrap_or(format!(
                "{doubles} double-flip cases all flagged uncorrectable"
            )),
        ));

        // The scheme layer agrees with the codec layer, and the weaker
        // schemes behave per their truth tables.
        let mut scheme_ok = true;
        let mut scheme_detail = String::new();
        for p in 0..CODEWORD_BITS {
            if ProtectionScheme::Secded.classify(&[p]) != UpsetOutcome::Corrected {
                scheme_ok = false;
                scheme_detail = format!("Secded single flip at {p} not Corrected");
                break;
            }
            for q in (p + 1)..CODEWORD_BITS {
                if ProtectionScheme::Secded.classify(&[p, q]) != UpsetOutcome::DetectedUncorrectable
                {
                    scheme_ok = false;
                    scheme_detail = format!("Secded pair ({p},{q}) not DetectedUncorrectable");
                    break;
                }
            }
            if !scheme_ok {
                break;
            }
        }
        if scheme_ok {
            for p in 0..ProtectionScheme::Parity.entry_bits() {
                if ProtectionScheme::Parity.classify(&[p]) != UpsetOutcome::Corrected {
                    scheme_ok = false;
                    scheme_detail = format!("Parity single flip at {p} not detected-recoverable");
                    break;
                }
            }
        }
        if scheme_ok {
            for p in 0..ProtectionScheme::None.entry_bits() {
                if ProtectionScheme::None.classify(&[p]) != UpsetOutcome::SilentCorruption {
                    scheme_ok = false;
                    scheme_detail = format!("unprotected flip at {p} not silent corruption");
                    break;
                }
            }
        }
        checks.push(CheckResult::new(
            "scheme-truth-table",
            scheme_ok,
            if scheme_ok {
                "Secded/Parity/None classify per their truth tables over all positions".to_string()
            } else {
                scheme_detail
            },
        ));
        self.report(checks)
    }
}

/// Degree-4 physical interleaving keeps every ≤4-bit physical cluster to
/// at most one flip per logical codeword (hence always correctable),
/// while a non-interleaved array lets any adjacent pair defeat SECDED.
pub struct InterleaveDistance;

impl StatOracle for InterleaveDistance {
    fn name(&self) -> &'static str {
        "interleave-distance"
    }

    fn family(&self) -> OracleFamily {
        OracleFamily::Ecc
    }

    fn claim(&self) -> &'static str {
        "Degree-4 interleaving spreads every ≤4-bit cluster to ≤1 flip per codeword"
    }

    fn run(&self, ctx: &OracleContext) -> OracleReport {
        let degree = 4u32;
        let il = Interleaver::new(degree, CODEWORD_BITS);
        let row = il.row_bits();
        let mut checks = Vec::new();

        // Address mapping is a bijection over the whole row.
        let bijective = (0..row).all(|p| {
            let l: LogicalBit = il.to_logical(PhysicalBit(p));
            il.to_physical(l) == PhysicalBit(p)
        });
        checks.push(CheckResult::new(
            "mapping-bijective",
            bijective,
            format!("physical→logical→physical identity over all {row} row bits"),
        ));

        // Every cluster up to the interleaving degree, at every starting
        // bit, lands at most one flip in any codeword — and that codeword
        // corrects it with the data intact.
        let word = patterns(ctx.probe_seed(self.name(), 0))[4];
        let mut clusters = 0u64;
        let mut fail = None;
        for start in 0..row {
            for len in 1..=degree {
                clusters += 1;
                for (w, bits) in il.spread_cluster(PhysicalBit(start), len) {
                    if bits.len() > 1 {
                        fail.get_or_insert(format!(
                            "cluster start={start} len={len}: word {w} took {} flips",
                            bits.len()
                        ));
                        continue;
                    }
                    let mut cw = Codeword::encode(word);
                    for &b in &bits {
                        cw.flip(b);
                    }
                    match cw.decode() {
                        DecodeOutcome::Corrected { data, .. } if data == word => {}
                        other => {
                            fail.get_or_insert(format!(
                                "cluster start={start} len={len}: word {w} decoded {other:?}"
                            ));
                        }
                    }
                }
            }
        }
        checks.push(CheckResult::new(
            "degree4-clusters-correctable",
            fail.is_none(),
            fail.unwrap_or(format!(
                "{clusters} clusters (every start × len 1..=4) all correctable"
            )),
        ));

        // Counter-witness: without interleaving, every adjacent physical
        // pair falls in one codeword and is uncorrectable — the distance
        // the interleaver buys is real, not vacuous.
        let flat = Interleaver::none(CODEWORD_BITS);
        let mut flat_fail = None;
        for start in 0..flat.row_bits() - 1 {
            let spread = flat.spread_cluster(PhysicalBit(start), 2);
            let two_in_one = spread.len() == 1 && spread[0].1.len() == 2;
            if !two_in_one {
                flat_fail.get_or_insert(format!(
                    "flat pair at {start} did not land in one word: {spread:?}"
                ));
                continue;
            }
            let mut cw = Codeword::encode(word);
            for &b in &spread[0].1 {
                cw.flip(b);
            }
            if cw.decode() != DecodeOutcome::DetectedUncorrectable {
                flat_fail.get_or_insert(format!(
                    "flat adjacent pair at {start} was not detected-uncorrectable"
                ));
            }
        }
        checks.push(CheckResult::new(
            "flat-adjacent-pairs-uncorrectable",
            flat_fail.is_none(),
            flat_fail.unwrap_or(
                "every adjacent pair defeats SECDED when interleaving is off".to_string(),
            ),
        ));
        self.report(checks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::TrialBudget;

    fn ctx() -> OracleContext {
        OracleContext::new(0xecc, TrialBudget::small())
    }

    #[test]
    fn secded_exhaustive_holds() {
        let report = SecdedExhaustive.run(&ctx());
        assert!(report.passed(), "{:#?}", report.checks);
    }

    #[test]
    fn interleave_distance_holds() {
        let report = InterleaveDistance.run(&ctx());
        assert!(report.passed(), "{:#?}", report.checks);
    }
}
