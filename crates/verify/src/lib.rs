//! # serscale-verify
//!
//! The statistical verification harness of the serscale workspace: a
//! reusable assertion toolkit plus three families of executable oracles
//! that check the *mechanism* of the soft-error simulator, not just the
//! numbers a fixed seed happens to produce.
//!
//! ## Oracle families
//!
//! * **Metamorphic** ([`metamorphic`]) — transform the input, predict the
//!   output shift: doubling fluence doubles expected upsets; lowering Vdd
//!   never lowers a per-bit cross-section; undervolting one voltage
//!   domain perturbs only that domain's structures; flux rescaling
//!   commutes with session splitting. Statistical acceptance goes through
//!   the Poisson/Wilson interval helpers of `serscale-stats`, so the
//!   oracles hold across seeds.
//! * **Differential** ([`differential`], [`sampler`]) — the same campaign
//!   through the naive reference executor, the sequential wave engine, and
//!   the parallel engine at several worker counts must agree bit for bit,
//!   reports and event traces alike; an interrupted-then-resumed
//!   journaled campaign must reproduce the uninterrupted run exactly,
//!   including across a torn journal tail; and the batched arrival
//!   sampler must consume RNG streams draw-for-draw identically to the
//!   per-event reference physics across random operating points; and the
//!   convergence plane's streamed Garwood intervals ([`convergence`])
//!   must be bit-identical to `serscale-stats`' batch implementation on
//!   identical counts.
//! * **ECC** ([`ecc`]) — exhaustive SECDED single-correction /
//!   double-detection over all 72 codeword positions and interleaving
//!   distance over every physical cluster.
//!
//! ## Running
//!
//! The whole suite is wired into `cargo test -p serscale-verify`, and the
//! `repro verify` subcommand of `serscale-bench` runs it with a
//! configurable budget, emitting a machine-readable verdict JSON (see
//! `TESTING.md` at the workspace root):
//!
//! ```text
//! repro verify --budget small --out verdict.json
//! ```
//!
//! ## Example
//!
//! ```
//! use serscale_verify::{OracleContext, TrialBudget};
//! use serscale_verify::ecc::SecdedExhaustive;
//! use serscale_verify::oracle::StatOracle;
//!
//! let ctx = OracleContext::new(1, TrialBudget::small());
//! let report = SecdedExhaustive.run(&ctx);
//! assert!(report.passed());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod convergence;
pub mod differential;
pub mod ecc;
pub mod metamorphic;
pub mod oracle;
pub mod sampler;
pub mod verdict;

pub use oracle::{CheckResult, OracleContext, OracleFamily, OracleReport, StatOracle, TrialBudget};
pub use verdict::SuiteVerdict;

/// The full default oracle suite, in report order.
pub fn default_suite() -> Vec<Box<dyn StatOracle>> {
    vec![
        Box::new(metamorphic::FluenceDoubling),
        Box::new(metamorphic::VoltageMonotonicity),
        Box::new(metamorphic::DomainIsolation),
        Box::new(metamorphic::SpectrumRescaling),
        Box::new(differential::EngineEquivalence),
        Box::new(differential::TraceEquivalence),
        Box::new(differential::ResumeEquivalence),
        Box::new(differential::PlatformEquivalence),
        Box::new(sampler::SamplerEquivalence),
        Box::new(convergence::StreamingGarwood),
        Box::new(ecc::SecdedExhaustive),
        Box::new(ecc::InterleaveDistance),
    ]
}

/// Runs the default suite under the given context and consolidates the
/// verdict.
pub fn run_suite(ctx: &OracleContext) -> SuiteVerdict {
    let oracles = default_suite();
    SuiteVerdict {
        seed: ctx.seed,
        budget: ctx.budget.name.to_string(),
        oracles: oracles.iter().map(|o| o.run(ctx)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_covers_all_three_families() {
        let suite = default_suite();
        for family in [
            OracleFamily::Metamorphic,
            OracleFamily::Differential,
            OracleFamily::Ecc,
        ] {
            assert!(
                suite.iter().any(|o| o.family() == family),
                "no oracle in family {family}"
            );
        }
    }

    #[test]
    fn oracle_names_are_unique() {
        let suite = default_suite();
        let mut names: Vec<_> = suite.iter().map(|o| o.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), suite.len());
    }
}
