//! The streaming-vs-batch Garwood consistency oracle.
//!
//! The telemetry crate's convergence plane computes Garwood confidence
//! intervals *incrementally*, from counts streamed through observer
//! callbacks; `serscale-stats` computes the same intervals *in batch*
//! from a final count. The live `/convergence` numbers are only as
//! trustworthy as the claim that both paths agree — this oracle pins it:
//! random synthetic campaigns are streamed through a
//! [`ConvergenceTracker`] while an independent tally accumulates the
//! same counts, and every cell's interval must match the batch
//! [`poisson_ci`] on the tallied count **bit for bit**. The k=0 and k=1
//! edge cases (satellite of the Garwood lower-bound fix) are asserted
//! explicitly.

use std::collections::BTreeMap;

use serscale_core::classify::RunVerdict;
use serscale_soc::edac::EdacSeverity;
use serscale_soc::platform::OperatingPoint;
use serscale_stats::ci::{poisson_ci, poisson_relative_uncertainty};
use serscale_stats::SimRng;
use serscale_telemetry::convergence::{ConvergenceTracker, CI_LEVEL, TARGET_REL_HALFWIDTH};
use serscale_types::{ArrayKind, SimDuration, SimInstant};

use crate::oracle::{CheckResult, OracleContext, OracleFamily, OracleReport, StatOracle};

/// Asserts the streaming Garwood implementation in
/// `serscale-telemetry`'s convergence plane agrees with the batch
/// Garwood-CI code in `serscale-stats` on identical counts.
pub struct StreamingGarwood;

impl StatOracle for StreamingGarwood {
    fn name(&self) -> &'static str {
        "streaming-garwood"
    }

    fn family(&self) -> OracleFamily {
        OracleFamily::Differential
    }

    fn claim(&self) -> &'static str {
        "the convergence plane's streamed per-cell Garwood intervals are bit-identical \
         to the batch poisson_ci on the same counts, including the k=0 and k=1 edges"
    }

    fn run(&self, ctx: &OracleContext) -> OracleReport {
        let mut checks = Vec::new();
        for arm in 0..ctx.budget.seeds {
            let seed = ctx.probe_seed(self.name(), arm);
            checks.extend(stream_one_arm(arm, seed));
        }
        checks.push(edge_cases());
        self.report(checks)
    }
}

/// Independent tally of what one synthetic stream fed the tracker.
#[derive(Default)]
struct Tally {
    /// `(point label, array) → (masked, due, sdc)`.
    cells: BTreeMap<(String, ArrayKind), (u64, u64, u64)>,
    /// `point label → accumulated live seconds` (same `+=` order as the
    /// tracker, so the f64 values are bit-identical).
    live: BTreeMap<String, f64>,
}

/// Streams one random synthetic campaign through a tracker and an
/// independent tally, then compares every cell's counts and intervals.
fn stream_one_arm(arm: u64, seed: u64) -> Vec<CheckResult> {
    let mut rng = SimRng::seed_from(seed);
    let mut tracker = ConvergenceTracker::new();
    let mut tally = Tally::default();

    let sessions = 2 + rng.below(4);
    for _ in 0..sessions {
        let point = OperatingPoint::CAMPAIGN[rng.below(4) as usize];
        let label = point.label();
        tracker.session_start(point);
        let trials = rng.below(60);
        for _ in 0..trials {
            let verdict = if rng.chance(0.05) {
                RunVerdict::Sdc {
                    with_hw_notification: rng.chance(0.5),
                }
            } else if rng.chance(0.05) {
                RunVerdict::AppCrash
            } else {
                RunVerdict::Correct
            };
            tracker.run(verdict);
            let events = rng.below(3);
            for _ in 0..events {
                let array = ArrayKind::ALL[rng.below(ArrayKind::ALL.len() as u64) as usize];
                let severity = if rng.chance(0.8) {
                    EdacSeverity::Corrected
                } else {
                    EdacSeverity::Uncorrected
                };
                tracker.edac(array, severity);
                let slot = tally.cells.entry((label.clone(), array)).or_default();
                match severity {
                    EdacSeverity::Corrected => slot.0 += 1,
                    EdacSeverity::Uncorrected => {
                        if matches!(verdict, RunVerdict::Sdc { .. }) {
                            slot.2 += 1;
                        } else {
                            slot.1 += 1;
                        }
                    }
                }
            }
        }
        let secs = rng.uniform_in(100.0, 5000.0);
        tracker.session_end(SimInstant::EPOCH + SimDuration::from_secs(secs));
        *tally.live.entry(label).or_default() += secs;
    }

    let snapshot = tracker.snapshot();
    let mut count_mismatches = Vec::new();
    let mut ci_mismatches = Vec::new();
    let mut cells_checked = 0u64;
    for point in &snapshot.points {
        let live = tally.live.get(&point.voltage).copied().unwrap_or(0.0);
        let hours = live / 3600.0;
        for cell in &point.cells {
            cells_checked += 1;
            let (masked, due, sdc) = tally
                .cells
                .get(&(point.voltage.clone(), cell.array))
                .copied()
                .unwrap_or((0, 0, 0));
            if (cell.masked, cell.due, cell.sdc) != (masked, due, sdc) {
                count_mismatches.push(format!(
                    "{} {}: streamed ({},{},{}) tallied ({masked},{due},{sdc})",
                    point.voltage, cell.array, cell.masked, cell.due, cell.sdc
                ));
                continue;
            }
            let events = masked + due + sdc;
            // The batch reference: the same counts through serscale-stats
            // directly, normalized with the same f64 live-time.
            let (lo, hi) = poisson_ci(events, CI_LEVEL);
            let (want_lo, want_hi) = if live > 0.0 {
                (lo / hours, hi / hours)
            } else {
                (0.0, 0.0)
            };
            let want_rel = poisson_relative_uncertainty(events);
            let exact = cell.ci_lower_per_hour.to_bits() == want_lo.to_bits()
                && cell.ci_upper_per_hour.to_bits() == want_hi.to_bits()
                && cell.rel_halfwidth.to_bits() == want_rel.to_bits();
            if !exact {
                ci_mismatches.push(format!(
                    "{} {} k={events}: streamed [{}, {}] rel {} vs batch [{want_lo}, \
                     {want_hi}] rel {want_rel}",
                    point.voltage, cell.array, cell.ci_lower_per_hour,
                    cell.ci_upper_per_hour, cell.rel_halfwidth
                ));
            }
        }
    }
    vec![
        CheckResult::new(
            format!("arm-{arm}-streamed-counts-match-tally"),
            count_mismatches.is_empty(),
            if count_mismatches.is_empty() {
                format!("{cells_checked} cells, all outcome-class counts agree")
            } else {
                count_mismatches.join("; ")
            },
        ),
        CheckResult::new(
            format!("arm-{arm}-streamed-ci-bits-match-batch"),
            ci_mismatches.is_empty(),
            if ci_mismatches.is_empty() {
                format!("{cells_checked} cells bit-identical at level {CI_LEVEL}")
            } else {
                ci_mismatches.join("; ")
            },
        ),
    ]
}

/// The integer-exact edge cases: k=0's lower bound is exactly zero and
/// its relative width infinite (never resolved); k=1 has both tails
/// finite, ordered and strictly positive on the upper side.
fn edge_cases() -> CheckResult {
    let (lo0, hi0) = poisson_ci(0, CI_LEVEL);
    let (lo1, hi1) = poisson_ci(1, CI_LEVEL);
    let rel0 = poisson_relative_uncertainty(0);
    let rel1 = poisson_relative_uncertainty(1);

    let mut tracker = ConvergenceTracker::new();
    tracker.session_start(OperatingPoint::nominal());
    tracker.run(RunVerdict::Correct);
    tracker.edac(ArrayKind::L1Data, EdacSeverity::Corrected);
    tracker.session_end(SimInstant::EPOCH + SimDuration::from_secs(3600.0));
    let snapshot = tracker.snapshot();
    let k1 = snapshot.points[0]
        .cells
        .iter()
        .find(|c| c.array == ArrayKind::L1Data)
        .expect("L1D cell");
    let k0 = snapshot.points[0]
        .cells
        .iter()
        .find(|c| c.array == ArrayKind::L3Shared)
        .expect("L3 cell");

    let passed = lo0.to_bits() == 0.0f64.to_bits()
        && hi0.is_finite()
        && hi0 > 0.0
        && rel0.is_infinite()
        && lo1 > 0.0
        && lo1.is_finite()
        && hi1.is_finite()
        && lo1 < hi1
        && rel1.is_finite()
        && rel1 > TARGET_REL_HALFWIDTH
        && k0.ci_lower_per_hour.to_bits() == 0.0f64.to_bits()
        && !k0.resolved
        && k1.ci_lower_per_hour.to_bits() == lo1.to_bits()
        && k1.ci_upper_per_hour.to_bits() == hi1.to_bits();
    CheckResult::new(
        "garwood-k0-k1-edges",
        passed,
        format!(
            "k=0: [{lo0}, {hi0}] rel {rel0}; k=1: [{lo1}, {hi1}] rel {rel1}; \
             streamed k=0 lower {}, k=1 [{}, {}]",
            k0.ci_lower_per_hour, k1.ci_lower_per_hour, k1.ci_upper_per_hour
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::TrialBudget;

    #[test]
    fn streaming_garwood_holds_across_seeds() {
        for seed in [1, 7, 20231028] {
            let ctx = OracleContext::new(seed, TrialBudget::small());
            let report = StreamingGarwood.run(&ctx);
            assert!(
                report.passed(),
                "seed {seed}: {:?}",
                report.violations().collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn edge_case_check_is_exact() {
        let check = edge_cases();
        assert!(check.passed, "{}", check.detail);
    }
}
