//! Property: observer callbacks arrive in nondecreasing simulated-time
//! order, from both the wave engine (any worker count) and the reference
//! executor — and the two engines deliver the *same* callback stream.
//!
//! This is the ordering contract telemetry consumers lean on: a
//! downstream JSONL reader may assume `t_s` never goes backwards, and the
//! trial-wall-time cadence trick (consecutive run starts differ by
//! exactly one trial) only works if runs arrive in session order.

use proptest::prelude::*;

use serscale_core::classify::RunVerdict;
use serscale_core::dut::DeviceUnderTest;
use serscale_core::session::{SessionLimits, StopReason, TestSession};
use serscale_core::trace::{SessionObserver, WaveStats};
use serscale_soc::edac::EdacRecord;
use serscale_soc::platform::OperatingPoint;
use serscale_stats::SimRng;
use serscale_types::{Flux, SimDuration, SimInstant};
use serscale_workload::Benchmark;

/// Records every callback as a `(kind, sim_seconds)` pair, in arrival
/// order. Wave callbacks carry host time, not sim time, so they are
/// counted but not stamped.
#[derive(Default)]
struct StampRecorder {
    stamps: Vec<(&'static str, f64)>,
    waves: usize,
}

impl SessionObserver for StampRecorder {
    fn on_session_start(&mut self, at: SimInstant, _point: OperatingPoint) {
        self.stamps.push(("session_start", at.as_secs()));
    }
    fn on_run(&mut self, start: SimInstant, _benchmark: Benchmark, _verdict: RunVerdict) {
        self.stamps.push(("run", start.as_secs()));
    }
    fn on_edac(&mut self, record: EdacRecord) {
        self.stamps.push(("edac", record.time.as_secs()));
    }
    fn on_recovery(&mut self, start: SimInstant, _duration: SimDuration) {
        self.stamps.push(("recovery", start.as_secs()));
    }
    fn on_session_end(&mut self, at: SimInstant, _reason: StopReason) {
        self.stamps.push(("session_end", at.as_secs()));
    }
    fn on_wave(&mut self, _stats: WaveStats) {
        self.waves += 1;
    }
}

fn session(point: OperatingPoint, minutes: f64) -> TestSession {
    let dut = DeviceUnderTest::xgene2(point, DeviceUnderTest::paper_vmin(point.frequency));
    TestSession::new(
        dut,
        Flux::per_cm2_s(1.5e6),
        SessionLimits::time_boxed(SimDuration::from_minutes(minutes)),
    )
}

fn assert_well_ordered(stamps: &[(&'static str, f64)]) {
    assert!(stamps.len() >= 2, "at least start + end");
    assert_eq!(stamps.first().unwrap(), &("session_start", 0.0));
    assert_eq!(stamps.last().unwrap().0, "session_end");
    for window in stamps.windows(2) {
        assert!(
            window[0].1 <= window[1].1,
            "timestamp went backwards: {:?} then {:?}",
            window[0],
            window[1]
        );
    }
}

proptest! {
    /// Both engines deliver nondecreasing timestamps, and identical
    /// streams to each other, for arbitrary seeds, durations, operating
    /// points and worker counts.
    #[test]
    fn callbacks_arrive_in_nondecreasing_sim_time(
        seed in 0u64..200,
        minutes in 2.0f64..8.0,
        jobs in prop::sample::select(vec![1usize, 2, 8]),
        point_idx in prop::sample::select(vec![0usize, 1, 2, 3]),
    ) {
        let point = OperatingPoint::CAMPAIGN[point_idx];

        let mut waved = StampRecorder::default();
        session(point, minutes).run_observed_with(
            &mut SimRng::seed_from(seed),
            jobs,
            &mut waved,
        );
        assert_well_ordered(&waved.stamps);
        prop_assert!(waved.waves >= 1, "the wave engine reports its waves");

        let mut reference = StampRecorder::default();
        session(point, minutes).run_reference_observed(
            &mut SimRng::seed_from(seed),
            &mut reference,
        );
        assert_well_ordered(&reference.stamps);
        prop_assert_eq!(
            reference.waves, 0,
            "the reference executor has no waves to report"
        );

        // The two engines agree event for event, timestamp for timestamp.
        prop_assert_eq!(&waved.stamps, &reference.stamps);
    }
}
