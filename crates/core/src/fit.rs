//! Failures-in-Time analysis (§6 of the paper): per-class FIT rates at the
//! NYC reference flux, the SDC/notification split, and the memory SER.

use serde::{Deserialize, Serialize};

use serscale_stats::rate::FitEstimate;
use serscale_stats::CrossSectionEstimate;
use serscale_types::NYC_SEA_LEVEL_FLUX;

use crate::classify::FailureClass;
use crate::session::SessionReport;

/// The per-class FIT breakdown of one session — one voltage group of
/// Figure 11.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FitBreakdown {
    /// Application-crash FIT.
    pub app_crash: FitEstimate,
    /// System-crash FIT.
    pub sys_crash: FitEstimate,
    /// SDC FIT.
    pub sdc: FitEstimate,
    /// Total FIT (all error events pooled — the paper's "Total FIT" bars
    /// are the sum of the three classes, estimated here from the pooled
    /// count so the interval is also meaningful).
    pub total: FitEstimate,
}

/// The SDC FIT split by hardware-notification coincidence — one voltage
/// group of Figures 12/13.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SdcNotificationSplit {
    /// SDCs with no hardware indication whatsoever.
    pub without_notification: FitEstimate,
    /// SDCs accompanied by a corrected-error notification (SECDED
    /// mis-correction aliasing, or a coincident unrelated CE).
    pub with_notification: FitEstimate,
}

/// FIT of one failure class in one session, extrapolated to NYC sea level
/// via Eq. 1 + Eq. 2.
pub fn class_fit(report: &SessionReport, class: FailureClass) -> FitEstimate {
    CrossSectionEstimate::from_events(report.failure_count(class), report.fluence)
        .fit_at(NYC_SEA_LEVEL_FLUX)
}

/// Total error-event FIT of one session.
pub fn total_fit(report: &SessionReport) -> FitEstimate {
    CrossSectionEstimate::from_events(report.error_events(), report.fluence)
        .fit_at(NYC_SEA_LEVEL_FLUX)
}

/// The full Figure 11 breakdown for one session.
pub fn fit_breakdown(report: &SessionReport) -> FitBreakdown {
    FitBreakdown {
        app_crash: class_fit(report, FailureClass::AppCrash),
        sys_crash: class_fit(report, FailureClass::SysCrash),
        sdc: class_fit(report, FailureClass::Sdc),
        total: total_fit(report),
    }
}

/// The Figure 12/13 SDC split for one session.
pub fn sdc_notification_split(report: &SessionReport) -> SdcNotificationSplit {
    let with = report.sdc_with_notification;
    let total = report.failure_count(FailureClass::Sdc);
    let without = total.saturating_sub(with);
    SdcNotificationSplit {
        without_notification: CrossSectionEstimate::from_events(without, report.fluence)
            .fit_at(NYC_SEA_LEVEL_FLUX),
        with_notification: CrossSectionEstimate::from_events(with, report.fluence)
            .fit_at(NYC_SEA_LEVEL_FLUX),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dut::DeviceUnderTest;
    use crate::session::{SessionLimits, TestSession};
    use serscale_soc::platform::OperatingPoint;
    use serscale_stats::SimRng;
    use serscale_types::{Flux, SimDuration};

    fn session(point: OperatingPoint, minutes: f64, seed: u64) -> SessionReport {
        let dut = DeviceUnderTest::xgene2(point, DeviceUnderTest::paper_vmin(point.frequency));
        let mut s = TestSession::new(
            dut,
            Flux::per_cm2_s(1.5e6),
            SessionLimits::time_boxed(SimDuration::from_minutes(minutes)),
        );
        s.run(&mut SimRng::seed_from(seed))
    }

    #[test]
    fn total_fit_at_nominal_matches_figure11_scale() {
        // Fig. 11: total FIT ≈ 8.3 at 980 mV. A 300-minute slice has
        // sampling noise; accept a factor-of-two band around it.
        let report = session(OperatingPoint::nominal(), 300.0, 1);
        let fit = total_fit(&report).point.get();
        assert!(fit > 3.0 && fit < 17.0, "total FIT = {fit}");
    }

    #[test]
    fn total_fit_explodes_at_vmin() {
        // Fig. 11: 8.31 → 54.83 total FIT (6.6×) from 980 mV to 920 mV.
        let nominal = session(OperatingPoint::nominal(), 400.0, 2);
        let vmin = session(OperatingPoint::vmin_2400(), 400.0, 2);
        let ratio = total_fit(&vmin).point.get() / total_fit(&nominal).point.get();
        assert!(ratio > 3.0, "ratio = {ratio}");
    }

    #[test]
    fn sdc_fit_dominates_at_vmin() {
        let vmin = session(OperatingPoint::vmin_2400(), 400.0, 3);
        let breakdown = fit_breakdown(&vmin);
        assert!(breakdown.sdc.point.get() > breakdown.sys_crash.point.get());
        assert!(breakdown.sdc.point.get() > breakdown.app_crash.point.get());
        // Fig. 11: SDC FIT ≈ 41 at Vmin.
        let sdc = breakdown.sdc.point.get();
        assert!(sdc > 20.0 && sdc < 75.0, "SDC FIT = {sdc}");
    }

    #[test]
    fn breakdown_classes_sum_to_total() {
        let report = session(OperatingPoint::safe(), 300.0, 4);
        let b = fit_breakdown(&report);
        let sum = b.app_crash.point.get() + b.sys_crash.point.get() + b.sdc.point.get();
        assert!((sum - b.total.point.get()).abs() < 1e-9);
    }

    #[test]
    fn notification_split_partitions_sdcs() {
        let report = session(OperatingPoint::vmin_2400(), 300.0, 5);
        let split = sdc_notification_split(&report);
        let total_sdc = class_fit(&report, FailureClass::Sdc).point.get();
        let parts = split.without_notification.point.get() + split.with_notification.point.get();
        assert!((parts - total_sdc).abs() < 1e-9);
        // Fig. 12: the unnotified share dominates at every voltage.
        assert!(split.without_notification.point.get() >= split.with_notification.point.get());
    }

    #[test]
    fn zero_event_classes_have_zero_point_fit() {
        // A tiny quiet session may record no app crashes; its FIT point
        // estimate must be exactly zero with a positive upper bound.
        let report = session(OperatingPoint::nominal(), 3.0, 6);
        let fit = class_fit(&report, FailureClass::AppCrash);
        if report.failure_count(FailureClass::AppCrash) == 0 {
            assert_eq!(fit.point.get(), 0.0);
            assert!(fit.upper.get() > 0.0);
        }
    }
}
