//! # serscale-core
//!
//! The primary contribution of the reproduced paper, as running code: a
//! beam-campaign harness that measures the impact of supply-voltage scaling
//! on the soft-error susceptibility of a multicore server CPU — end to end,
//! from neutron strike physics to golden-output comparison — and the
//! analyses that turn the raw event log into every table and figure of the
//! paper's evaluation.
//!
//! ## Architecture
//!
//! * [`dut`] — the Device Under Test: the SoC structural model wired to
//!   the radiation physics (per-array observable cross-sections under a
//!   given operating point, with the per-cache-level detection
//!   efficiencies calibrated in `DESIGN.md` §3).
//! * [`classify`] — what a fault *becomes*: the propagation model from
//!   hardware outcome (corrected, uncorrected, silent) to software verdict
//!   (nothing, SDC, application crash, system crash), plus the Control-PC
//!   watchdog that tells the crash flavours apart (§3.6).
//! * [`runner`] — one benchmark execution under beam: Poisson strike
//!   sampling across every array and both logic populations, ECC decode by
//!   the real codecs, and — when corruption reaches live program state —
//!   an *actual* corrupted kernel execution compared against the golden
//!   output.
//! * [`session`] — a beam test session (one Table 2 column): benchmarks
//!   cycling under beam until the stopping rules fire (≥ 100 error events
//!   or ≥ 10¹¹ n/cm², §3.5), with crash-recovery overheads on the clock.
//! * [`campaign`] — the full four-session campaign and its report.
//! * [`fit`] — the FIT-rate analyses of §6 (Figures 11–13, Table 2's SER
//!   row).
//! * [`tradeoff`] — the power/susceptibility analyses of §5 (Figures
//!   9–10).
//!
//! Beyond the paper's own evaluation:
//!
//! * [`avf`] — statistical fault injection on the real kernels and the
//!   FIT-prediction methodology of Design implication #3;
//! * [`explore`] — fine-grained voltage sweeps and the operating-point
//!   advisor of Design implication #2;
//! * [`checkpoint`] — checkpoint/restart economics (Young/Daly), answering
//!   the introduction's open question about recovery overheads;
//! * [`ablation`] — switch each modelled mechanism off and watch its
//!   measured effect disappear;
//! * [`journal`] — the crash-safe run journal: fsync'd JSONL records of
//!   every absorbed trial, replayed by `repro --resume` into a report
//!   bit-identical to an uninterrupted run;
//! * [`parallel`] — the deterministic worker pool behind
//!   `--jobs N`: order-canonicalized work stealing with panic isolation,
//!   yielding bit-identical campaign reports at any thread count;
//! * [`trace`] — the campaign logbook: an ordered, renderable event trace
//!   of every run, EDAC report and recovery;
//! * [`report`] — neutral plain-text campaign summaries with 95 %
//!   intervals;
//! * [`policy`] — DVFS throttling vs guardband harvesting, quantified.
//!
//! ## Quick start
//!
//! ```
//! use serscale_core::campaign::{Campaign, CampaignConfig};
//! use serscale_core::session::SessionLimits;
//! use serscale_soc::platform::OperatingPoint;
//! use serscale_types::SimDuration;
//!
//! // A short exploratory run at nominal voltage (the full Table 2
//! // campaign is `CampaignConfig::paper()`).
//! let mut config = CampaignConfig::paper();
//! config.seed = 42;
//! config.sessions = vec![(
//!     OperatingPoint::nominal(),
//!     SessionLimits {
//!         max_error_events: 10,
//!         max_duration: Some(SimDuration::from_minutes(30.0)),
//!         ..SessionLimits::default()
//!     },
//! )];
//! let report = Campaign::new(config).run();
//! assert_eq!(report.sessions.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod avf;
pub mod campaign;
pub mod checkpoint;
pub mod classify;
pub mod dut;
pub mod explore;
pub mod fit;
pub mod journal;
pub mod parallel;
pub mod policy;
pub mod report;
pub mod runner;
pub mod scheduler;
pub mod session;
pub mod spec;
pub mod trace;
pub mod tradeoff;

pub use campaign::{Campaign, CampaignConfig, CampaignReport};
pub use classify::{FailureClass, RunVerdict};
pub use dut::DeviceUnderTest;
pub use session::{SessionLimits, SessionReport, TestSession};
