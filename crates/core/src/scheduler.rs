//! Fair multi-tenant job scheduling and cooperative cancellation.
//!
//! The control plane (see the `serscale-telemetry` crate) runs several
//! campaigns concurrently on behalf of several tenants. This module holds
//! the two pure, thread-free primitives that make that orderly:
//!
//! - [`FairQueue`] — FIFO within a tenant, round-robin across tenants.
//!   The fairness contract is documented on [`FairQueue::pop`] and pinned
//!   by unit tests: a tenant with queued work waits at most `T - 1` pops
//!   (where `T` is the number of tenants with queued work) between two of
//!   its own.
//! - [`CancelToken`] — a shared flag the engine polls at wave boundaries.
//!   Cancellation is cooperative and clean: no trial is torn mid-flight,
//!   the run journal stays resumable, and the cancelled run reports
//!   [`Cancelled`] instead of fabricating a partial report.
//!
//! Neither type spawns threads or performs I/O; the runtime that wires
//! them to worker threads and HTTP lives in `serscale-telemetry`.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A run was cancelled at a wave boundary before completing.
///
/// Returned by the `try_` execution entry points
/// ([`crate::campaign::Campaign::try_run_recoverable`],
/// [`crate::session::TestSession::try_run_planned`]) when their
/// [`CancelToken`] fires. The journal, if any, holds every trial absorbed
/// before the boundary and resumes bit-identically via
/// [`crate::journal::start_or_resume`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("run cancelled at a wave boundary")
    }
}

impl std::error::Error for Cancelled {}

/// A shared cancellation flag, checked cooperatively by the engine.
///
/// Cloning shares the flag; once [`cancel`](Self::cancel) is called every
/// clone observes it. The engine polls the token at wave boundaries only,
/// so a cancel lands after the current wave's absorbed trials have been
/// journaled and fsync'd — never mid-trial.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-fired token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fires the token. Idempotent; every clone observes it.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether the token has fired.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// A multi-tenant queue: FIFO within each tenant, round-robin across
/// tenants.
///
/// Tenants enter the rotation in first-submission order and leave it when
/// their queue drains; a tenant that submits again re-enters at the back
/// of the rotation. See [`pop`](Self::pop) for the fairness bound.
#[derive(Debug)]
pub struct FairQueue<T> {
    /// Rotation of tenants with queued work, next to serve at the front.
    rotation: VecDeque<String>,
    /// Per-tenant FIFO queues, keyed parallel to `rotation`.
    queues: Vec<(String, VecDeque<T>)>,
    len: usize,
}

impl<T> Default for FairQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> FairQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        FairQueue {
            rotation: VecDeque::new(),
            queues: Vec::new(),
            len: 0,
        }
    }

    /// Total queued items across all tenants.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Enqueues `item` at the back of `tenant`'s FIFO. A tenant not
    /// currently in the rotation (first submission, or drained earlier)
    /// joins at the back of the rotation.
    pub fn push(&mut self, tenant: &str, item: T) {
        let queue = match self.queues.iter_mut().find(|(name, _)| name == tenant) {
            Some((_, queue)) => queue,
            None => {
                self.queues.push((tenant.to_string(), VecDeque::new()));
                &mut self.queues.last_mut().expect("just pushed").1
            }
        };
        if queue.is_empty() {
            self.rotation.push_back(tenant.to_string());
        }
        queue.push_back(item);
        self.len += 1;
    }

    /// Dequeues the next item round-robin: the tenant at the front of the
    /// rotation yields the oldest item of its FIFO, then moves to the back
    /// of the rotation (or leaves it if drained).
    ///
    /// **Fairness bound**: between two consecutive pops of the same
    /// tenant, at most `T - 1` items of other tenants are popped, where
    /// `T` is the number of tenants holding queued work during that span.
    /// With 2 tenants the interleaving is strictly alternating while both
    /// have work.
    pub fn pop(&mut self) -> Option<(String, T)> {
        let tenant = self.rotation.pop_front()?;
        let queue = &mut self
            .queues
            .iter_mut()
            .find(|(name, _)| *name == tenant)
            .expect("rotation tenant has a queue")
            .1;
        let item = queue.pop_front().expect("rotation tenant has queued work");
        if !queue.is_empty() {
            self.rotation.push_back(tenant.clone());
        }
        self.len -= 1;
        Some((tenant, item))
    }

    /// Removes the first queued item for which `matches` returns true,
    /// searching tenants in rotation order. Returns the item, or `None`
    /// if nothing matched. Used to cancel a job that has not started.
    pub fn remove(&mut self, mut matches: impl FnMut(&T) -> bool) -> Option<T> {
        for (tenant, queue) in &mut self.queues {
            if let Some(at) = queue.iter().position(&mut matches) {
                let item = queue.remove(at).expect("position just found");
                if queue.is_empty() {
                    self.rotation.retain(|name| name != tenant);
                }
                self.len -= 1;
                return Some(item);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_fires_across_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
        token.cancel(); // idempotent
        assert!(token.is_cancelled());
    }

    #[test]
    fn fifo_within_a_single_tenant() {
        let mut queue = FairQueue::new();
        for i in 0..5 {
            queue.push("solo", i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| queue.pop().map(|(_, i)| i)).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
        assert!(queue.is_empty());
    }

    #[test]
    fn two_tenants_alternate_strictly() {
        // 2 tenants × k queued jobs: the documented bound says strict
        // alternation while both tenants hold work, even though tenant A
        // submitted everything first.
        let k = 4;
        let mut queue = FairQueue::new();
        for i in 0..k {
            queue.push("a", format!("a{i}"));
        }
        for i in 0..k {
            queue.push("b", format!("b{i}"));
        }
        let order: Vec<(String, String)> = std::iter::from_fn(|| queue.pop()).collect();
        let expected: Vec<(String, String)> = (0..k)
            .flat_map(|i| {
                [
                    ("a".to_string(), format!("a{i}")),
                    ("b".to_string(), format!("b{i}")),
                ]
            })
            .collect();
        assert_eq!(order, expected);
    }

    #[test]
    fn fairness_bound_holds_for_many_tenants() {
        // T tenants with staggered queue depths: between two consecutive
        // pops of the same tenant, at most T-1 other pops occur.
        let mut queue = FairQueue::new();
        let depths = [("t0", 6), ("t1", 3), ("t2", 5), ("t3", 1)];
        for (tenant, depth) in depths {
            for i in 0..depth {
                queue.push(tenant, i);
            }
        }
        let order: Vec<String> = std::iter::from_fn(|| queue.pop().map(|(t, _)| t)).collect();
        assert_eq!(order.len(), 15);
        for (at, tenant) in order.iter().enumerate() {
            if let Some(next) = order[at + 1..].iter().position(|t| t == tenant) {
                assert!(
                    next < depths.len(),
                    "tenant {tenant} waited {next} pops at position {at}: {order:?}"
                );
            }
        }
    }

    #[test]
    fn drained_tenant_reenters_at_the_back() {
        let mut queue = FairQueue::new();
        queue.push("a", 1);
        queue.push("b", 2);
        assert_eq!(queue.pop(), Some(("a".to_string(), 1))); // a drains
        queue.push("a", 3); // re-enters behind b
        assert_eq!(queue.pop(), Some(("b".to_string(), 2)));
        assert_eq!(queue.pop(), Some(("a".to_string(), 3)));
        assert_eq!(queue.pop(), None);
    }

    #[test]
    fn remove_plucks_a_queued_item_without_disturbing_order() {
        let mut queue = FairQueue::new();
        for i in 0..3 {
            queue.push("a", i);
            queue.push("b", 10 + i);
        }
        assert_eq!(queue.remove(|&i| i == 1), Some(1));
        assert_eq!(queue.remove(|&i| i == 99), None);
        assert_eq!(queue.len(), 5);
        let order: Vec<i32> = std::iter::from_fn(|| queue.pop().map(|(_, i)| i)).collect();
        assert_eq!(order, vec![0, 10, 2, 11, 12]);
    }

    #[test]
    fn removing_a_tenants_last_item_drops_it_from_rotation() {
        let mut queue = FairQueue::new();
        queue.push("a", 1);
        queue.push("b", 2);
        assert_eq!(queue.remove(|&i| i == 1), Some(1));
        assert_eq!(queue.pop(), Some(("b".to_string(), 2)));
        assert_eq!(queue.pop(), None);
        assert!(queue.is_empty());
    }
}
