//! Validated campaign specifications for the control plane.
//!
//! A campaign submitted over HTTP arrives as an untrusted JSON document.
//! This module is the schema layer between the wire and the engine,
//! generalizing the validated-construction pattern of
//! [`crate::checkpoint`]'s `TryFrom<RawCheckpointScheme>`: the permissive
//! carrier [`RawCampaignSpec`] holds whatever the document said (numbers
//! as raw `f64`, everything optional), and `TryFrom` narrows it into a
//! [`CampaignSpec`] whose every field is finite, in range, and exactly
//! representable — or fails with a [`SpecError`] naming the offending
//! field and how to fix it.
//!
//! A validated spec converts to a [`CampaignConfig`] via
//! [`CampaignSpec::config`]; the default spec maps to the exact
//! configuration the `repro` CLI builds, so a campaign run through the
//! control plane is bit-identical to the same spec run solo.

use serscale_soc::platform::OperatingPoint;
use serscale_soc::PlatformSpec;
use serscale_types::{Megahertz, Millivolts, SimDuration};

use crate::campaign::{CampaignConfig, VminSource};
use crate::session::SessionLimits;

/// Largest f64 that still represents every integer exactly (2^53).
const EXACT_INT_MAX: f64 = 9_007_199_254_740_992.0;

/// The permissive wire-side carrier for a campaign spec.
///
/// Every field is optional and every number is a raw `f64` (JSON has only
/// doubles), so deserialization never fails on *values* — all judgment
/// lives in the [`TryFrom`] conversion to [`CampaignSpec`], which is
/// where actionable errors come from.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RawCampaignSpec {
    /// Display name for the job (sanitized identifier).
    pub name: Option<String>,
    /// Tenant the job is queued under (fair-share round-robin key).
    pub tenant: Option<String>,
    /// Master RNG seed. Must be integer-valued and ≤ 2^53 to survive the
    /// JSON double round-trip exactly.
    pub seed: Option<f64>,
    /// Fraction of the paper campaign's session durations, in (0, 1].
    /// Mutually exclusive with `sessions`.
    pub scale: Option<f64>,
    /// Worker-thread override for this job (integer ≥ 1).
    pub jobs: Option<f64>,
    /// Run the offline Vmin characterization with this many trials per
    /// step instead of the paper's anchors (integer ≥ 1).
    pub vmin_trials: Option<f64>,
    /// Explicit session list replacing the paper's Table 2 schedule.
    pub sessions: Option<Vec<RawSessionSpec>>,
    /// Id of a cancelled control-plane job whose journal this submission
    /// resumes (integer ≥ 0).
    pub resume: Option<f64>,
    /// Built-in platform to run on (see
    /// [`PlatformSpec::BUILTIN_NAMES`]); omitted means the X-Gene 2.
    pub platform: Option<String>,
}

/// One session of an explicit schedule, as raw wire-side numbers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RawSessionSpec {
    /// PMD (core) domain voltage, millivolts.
    pub pmd_mv: f64,
    /// SoC domain voltage, millivolts.
    pub soc_mv: f64,
    /// Core clock frequency, megahertz.
    pub freq_mhz: f64,
    /// Beam-time box for the session, minutes.
    pub minutes: f64,
}

/// A spec field that failed validation, with an actionable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// The offending field (dotted path, e.g. `sessions[2].pmd_mv`).
    pub field: String,
    /// What was wrong and what would be accepted.
    pub reason: String,
}

impl SpecError {
    fn new(field: impl Into<String>, reason: impl Into<String>) -> Self {
        SpecError {
            field: field.into(),
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "spec field `{}`: {}", self.field, self.reason)
    }
}

impl std::error::Error for SpecError {}

/// A fully validated campaign spec: every field finite, in range, and
/// ready to become a [`CampaignConfig`].
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Sanitized job name.
    pub name: String,
    /// Tenant for fair-share scheduling.
    pub tenant: String,
    /// Master RNG seed.
    pub seed: u64,
    /// Session-duration fraction of the paper campaign, in (0, 1].
    pub scale: f64,
    /// Worker-thread override, if the submitter set one.
    pub jobs: Option<u32>,
    /// Vmin characterization trials (`None` = paper anchors).
    pub vmin_trials: Option<u32>,
    /// Explicit session schedule (`None` = paper Table 2 × `scale`).
    pub sessions: Option<Vec<(OperatingPoint, SessionLimits)>>,
    /// Cancelled job id to resume, if any.
    pub resume: Option<u64>,
    /// The platform the campaign runs on.
    pub platform: PlatformSpec,
}

impl CampaignSpec {
    /// The scale a spec that names none gets: the CI-sized fraction the
    /// repro golden artifacts are pinned at.
    pub const DEFAULT_SCALE: f64 = 0.005;

    /// Builds the engine configuration this spec describes.
    ///
    /// A spec without an explicit `sessions` list maps to
    /// [`CampaignConfig::paper_scaled`]`(scale)` with the spec's seed —
    /// exactly what the one-shot CLI builds, which is what makes control
    /// plane reports byte-comparable to solo runs.
    pub fn config(&self) -> CampaignConfig {
        let mut config = match &self.sessions {
            None => CampaignConfig::for_platform_scaled(&self.platform, self.scale),
            Some(sessions) => {
                let mut config = CampaignConfig::for_platform(&self.platform);
                config.sessions = sessions.clone();
                config
            }
        };
        config.seed = self.seed;
        if let Some(trials) = self.vmin_trials {
            config.vmin_source = VminSource::Characterized { trials };
        }
        config
    }
}

/// Checks that `value` is finite and integer-valued in `[min, max]`.
fn integer_in(field: &str, value: f64, min: f64, max: f64, hint: &str) -> Result<u64, SpecError> {
    if !value.is_finite() {
        return Err(SpecError::new(
            field,
            format!("{value} is not a finite number; {hint}"),
        ));
    }
    if value.fract() != 0.0 || !(min..=max).contains(&value) {
        return Err(SpecError::new(
            field,
            format!("{value} is not an integer in [{min}, {max}]; {hint}"),
        ));
    }
    Ok(value as u64)
}

/// Checks a name-like identifier: 1–64 chars of `[A-Za-z0-9._-]`.
fn identifier(field: &str, value: &str) -> Result<String, SpecError> {
    let ok = !value.is_empty()
        && value.len() <= 64
        && value
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'));
    if ok {
        Ok(value.to_string())
    } else {
        Err(SpecError::new(
            field,
            format!("{value:?} is not a valid identifier; use 1-64 characters of [A-Za-z0-9._-]"),
        ))
    }
}

impl TryFrom<RawCampaignSpec> for CampaignSpec {
    type Error = SpecError;

    fn try_from(raw: RawCampaignSpec) -> Result<Self, SpecError> {
        let name = match &raw.name {
            Some(name) => identifier("name", name)?,
            None => "campaign".to_string(),
        };
        let tenant = match &raw.tenant {
            Some(tenant) => identifier("tenant", tenant)?,
            None => "anonymous".to_string(),
        };
        let seed = match raw.seed {
            Some(seed) => integer_in(
                "seed",
                seed,
                0.0,
                EXACT_INT_MAX,
                "seeds must survive the JSON double round-trip exactly",
            )?,
            None => CampaignConfig::paper().seed,
        };
        if raw.scale.is_some() && raw.sessions.is_some() {
            return Err(SpecError::new(
                "scale",
                "mutually exclusive with `sessions`; scale the explicit session minutes instead",
            ));
        }
        let scale = match raw.scale {
            Some(scale) => {
                if !scale.is_finite() || scale <= 0.0 || scale > 1.0 {
                    return Err(SpecError::new(
                        "scale",
                        format!("{scale} is outside (0, 1]; 1.0 replays the full 64.8-beam-hour campaign"),
                    ));
                }
                scale
            }
            None => Self::DEFAULT_SCALE,
        };
        let jobs = match raw.jobs {
            Some(jobs) => Some(integer_in(
                "jobs",
                jobs,
                1.0,
                64.0,
                "worker counts beyond the host's cores are clamped, not rejected",
            )? as u32),
            None => None,
        };
        let vmin_trials = match raw.vmin_trials {
            Some(trials) => Some(integer_in(
                "vmin_trials",
                trials,
                1.0,
                100_000.0,
                "zero trials cannot characterize Vmin; omit the field to use the paper's anchors",
            )? as u32),
            None => None,
        };
        let platform = match &raw.platform {
            Some(name) => PlatformSpec::builtin(name).ok_or_else(|| {
                SpecError::new(
                    "platform",
                    format!(
                        "{name:?} is not a built-in platform; known platforms: {}",
                        PlatformSpec::BUILTIN_NAMES.join(", ")
                    ),
                )
            })?,
            None => PlatformSpec::xgene2(),
        };
        let sessions = match &raw.sessions {
            Some(list) => Some(validated_sessions(list, &platform)?),
            None => None,
        };
        let resume = match raw.resume {
            Some(id) => Some(integer_in(
                "resume",
                id,
                0.0,
                EXACT_INT_MAX,
                "pass the numeric id of the cancelled job to resume",
            )?),
            None => None,
        };
        Ok(CampaignSpec {
            name,
            tenant,
            seed,
            scale,
            jobs,
            vmin_trials,
            sessions,
            resume,
            platform,
        })
    }
}

fn validated_sessions(
    list: &[RawSessionSpec],
    platform: &PlatformSpec,
) -> Result<Vec<(OperatingPoint, SessionLimits)>, SpecError> {
    if list.is_empty() {
        return Err(SpecError::new(
            "sessions",
            "an explicit session list must hold at least one session; omit the field for the paper schedule",
        ));
    }
    if list.len() > 16 {
        return Err(SpecError::new(
            "sessions",
            format!("{} sessions exceed the 16-session cap", list.len()),
        ));
    }
    let pmd_hint = format!(
        "PMD voltages are whole millivolts between {} and the {} nominal",
        platform.pmd_rail.floor, platform.pmd_rail.nominal
    );
    let soc_hint = format!(
        "SoC voltages are whole millivolts between {} and the {} nominal",
        platform.soc_rail.floor, platform.soc_rail.nominal
    );
    let freq_hint = format!(
        "frequencies sit on the {} PLL grid up to {}",
        Megahertz::new(Megahertz::STEP),
        platform.freq_max
    );
    let mut sessions = Vec::with_capacity(list.len());
    for (at, raw) in list.iter().enumerate() {
        let point = OperatingPoint {
            pmd: Millivolts::new(integer_in(
                &format!("sessions[{at}].pmd_mv"),
                raw.pmd_mv,
                f64::from(platform.pmd_rail.floor.get()),
                f64::from(platform.pmd_rail.nominal.get()),
                &pmd_hint,
            )? as u32),
            soc: Millivolts::new(integer_in(
                &format!("sessions[{at}].soc_mv"),
                raw.soc_mv,
                f64::from(platform.soc_rail.floor.get()),
                f64::from(platform.soc_rail.nominal.get()),
                &soc_hint,
            )? as u32),
            frequency: Megahertz::new(integer_in(
                &format!("sessions[{at}].freq_mhz"),
                raw.freq_mhz,
                f64::from(platform.freq_min.get()),
                f64::from(platform.freq_max.get()),
                &freq_hint,
            )? as u32),
        };
        // The regulator/PLL constraints of §3.1 (5 mV step, 300 MHz
        // grid) are the platform's own validation.
        if let Err(e) = platform.validate_point(point) {
            return Err(SpecError::new(format!("sessions[{at}]"), e.to_string()));
        }
        if !raw.minutes.is_finite() || raw.minutes <= 0.0 || raw.minutes > 10_000.0 {
            return Err(SpecError::new(
                format!("sessions[{at}].minutes"),
                format!(
                    "{} is outside (0, 10000]; the paper's longest session is 1651 minutes",
                    raw.minutes
                ),
            ));
        }
        if let Some(earlier) = sessions
            .iter()
            .position(|(p, _): &(OperatingPoint, SessionLimits)| *p == point)
        {
            return Err(SpecError::new(
                format!("sessions[{at}]"),
                format!(
                    "overlaps session {earlier}: both run {}; campaign reports index sessions by operating point",
                    point.label()
                ),
            ));
        }
        sessions.push((
            point,
            SessionLimits::time_boxed(SimDuration::from_minutes(raw.minutes)),
        ));
    }
    Ok(sessions)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_raw_spec_maps_to_the_cli_default_campaign() {
        let spec = CampaignSpec::try_from(RawCampaignSpec::default()).expect("valid");
        assert_eq!(spec.name, "campaign");
        assert_eq!(spec.tenant, "anonymous");
        assert_eq!(spec.seed, CampaignConfig::paper().seed);
        assert_eq!(spec.scale, CampaignSpec::DEFAULT_SCALE);
        let mut expected = CampaignConfig::paper_scaled(CampaignSpec::DEFAULT_SCALE);
        expected.seed = spec.seed;
        assert_eq!(spec.config(), expected);
    }

    #[test]
    fn scaled_spec_matches_the_cli_config_exactly() {
        let raw = RawCampaignSpec {
            seed: Some(20231028.0),
            scale: Some(0.01),
            ..Default::default()
        };
        let spec = CampaignSpec::try_from(raw).expect("valid");
        let mut expected = CampaignConfig::paper_scaled(0.01);
        expected.seed = 20231028;
        assert_eq!(spec.config(), expected);
    }

    #[test]
    fn explicit_sessions_build_custom_schedules() {
        let raw = RawCampaignSpec {
            sessions: Some(vec![
                RawSessionSpec {
                    pmd_mv: 980.0,
                    soc_mv: 950.0,
                    freq_mhz: 2400.0,
                    minutes: 10.0,
                },
                RawSessionSpec {
                    pmd_mv: 790.0,
                    soc_mv: 950.0,
                    freq_mhz: 900.0,
                    minutes: 5.0,
                },
            ]),
            ..Default::default()
        };
        let spec = CampaignSpec::try_from(raw).expect("valid");
        let config = spec.config();
        assert_eq!(config.sessions.len(), 2);
        assert_eq!(config.sessions[0].0, OperatingPoint::nominal());
        assert_eq!(
            config.sessions[1].1.max_duration,
            Some(SimDuration::from_minutes(5.0))
        );
    }

    #[test]
    fn default_platform_is_the_xgene2() {
        let spec = CampaignSpec::try_from(RawCampaignSpec::default()).expect("valid");
        assert_eq!(spec.platform, PlatformSpec::xgene2());
    }

    #[test]
    fn zynq_platform_spec_builds_its_own_campaign() {
        let raw = RawCampaignSpec {
            platform: Some("zynq-mpsoc".into()),
            scale: Some(0.01),
            ..Default::default()
        };
        let spec = CampaignSpec::try_from(raw).expect("valid");
        assert_eq!(spec.platform.name, "zynq-mpsoc");
        let mut expected = CampaignConfig::for_platform_scaled(&PlatformSpec::zynq_mpsoc(), 0.01);
        expected.seed = spec.seed;
        assert_eq!(spec.config(), expected);
    }

    #[test]
    fn unknown_platform_is_rejected_with_the_known_names() {
        let raw = RawCampaignSpec {
            platform: Some("epyc".into()),
            ..Default::default()
        };
        let err = CampaignSpec::try_from(raw).expect_err("unknown platform rejected");
        assert_eq!(err.field, "platform");
        assert!(err.reason.contains("xgene2"), "{err}");
        assert!(err.reason.contains("zynq-mpsoc"), "{err}");
    }

    #[test]
    fn session_bounds_follow_the_selected_platform() {
        // 980 mV is the X-Gene nominal but sits above the Zynq 850 mV rail.
        let session = RawSessionSpec {
            pmd_mv: 980.0,
            soc_mv: 850.0,
            freq_mhz: 1500.0,
            minutes: 5.0,
        };
        let raw = RawCampaignSpec {
            platform: Some("zynq-mpsoc".into()),
            sessions: Some(vec![session.clone()]),
            ..Default::default()
        };
        let err = CampaignSpec::try_from(raw).expect_err("overvolt rejected");
        assert_eq!(err.field, "sessions[0].pmd_mv");
        assert!(err.reason.contains("850 mV nominal"), "{err}");
        // The same point is legal on its own rails at 850 mV.
        let raw = RawCampaignSpec {
            platform: Some("zynq-mpsoc".into()),
            sessions: Some(vec![RawSessionSpec {
                pmd_mv: 850.0,
                ..session
            }]),
            ..Default::default()
        };
        let spec = CampaignSpec::try_from(raw).expect("valid zynq session");
        assert_eq!(spec.config().sessions.len(), 1);
    }

    #[test]
    fn rejections_name_the_field_and_how_to_fix_it() {
        let cases: Vec<(RawCampaignSpec, &str)> = vec![
            (
                RawCampaignSpec {
                    scale: Some(0.0),
                    ..Default::default()
                },
                "scale",
            ),
            (
                RawCampaignSpec {
                    scale: Some(f64::NAN),
                    ..Default::default()
                },
                "scale",
            ),
            (
                RawCampaignSpec {
                    seed: Some(1.5),
                    ..Default::default()
                },
                "seed",
            ),
            (
                RawCampaignSpec {
                    jobs: Some(0.0),
                    ..Default::default()
                },
                "jobs",
            ),
            (
                RawCampaignSpec {
                    vmin_trials: Some(0.0),
                    ..Default::default()
                },
                "vmin_trials",
            ),
            (
                RawCampaignSpec {
                    name: Some("no spaces allowed".into()),
                    ..Default::default()
                },
                "name",
            ),
            (
                RawCampaignSpec {
                    scale: Some(0.5),
                    sessions: Some(vec![RawSessionSpec {
                        pmd_mv: 980.0,
                        soc_mv: 950.0,
                        freq_mhz: 2400.0,
                        minutes: 1.0,
                    }]),
                    ..Default::default()
                },
                "scale",
            ),
            (
                RawCampaignSpec {
                    sessions: Some(vec![]),
                    ..Default::default()
                },
                "sessions",
            ),
        ];
        for (raw, field) in cases {
            let err = CampaignSpec::try_from(raw.clone())
                .expect_err(&format!("{raw:?} must be rejected"));
            assert_eq!(err.field, field, "{raw:?} → {err}");
            assert!(!err.reason.is_empty());
        }
    }

    #[test]
    fn non_finite_voltage_is_rejected_with_the_session_path() {
        let raw = RawCampaignSpec {
            sessions: Some(vec![RawSessionSpec {
                pmd_mv: f64::NAN,
                soc_mv: 950.0,
                freq_mhz: 2400.0,
                minutes: 1.0,
            }]),
            ..Default::default()
        };
        let err = CampaignSpec::try_from(raw).expect_err("NaN voltage rejected");
        assert_eq!(err.field, "sessions[0].pmd_mv");
        assert!(err.reason.contains("finite"), "{err}");
    }

    #[test]
    fn off_grid_points_are_rejected_by_platform_validation() {
        let raw = RawCampaignSpec {
            sessions: Some(vec![RawSessionSpec {
                pmd_mv: 913.0, // not on the 5 mV regulator step
                soc_mv: 950.0,
                freq_mhz: 2400.0,
                minutes: 1.0,
            }]),
            ..Default::default()
        };
        let err = CampaignSpec::try_from(raw).expect_err("off-step voltage rejected");
        assert_eq!(err.field, "sessions[0]");
        assert!(err.reason.contains("5 mV"), "{err}");
    }

    #[test]
    fn overlapping_sessions_are_rejected() {
        let point = RawSessionSpec {
            pmd_mv: 920.0,
            soc_mv: 920.0,
            freq_mhz: 2400.0,
            minutes: 2.0,
        };
        let raw = RawCampaignSpec {
            sessions: Some(vec![point.clone(), point]),
            ..Default::default()
        };
        let err = CampaignSpec::try_from(raw).expect_err("duplicate point rejected");
        assert_eq!(err.field, "sessions[1]");
        assert!(err.reason.contains("overlaps session 0"), "{err}");
    }
}
