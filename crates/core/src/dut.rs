//! The Device Under Test: the SoC model wired to the radiation physics.

use serde::{Deserialize, Serialize};

use serscale_soc::platform::{ArrayInstance, OperatingPoint, Platform};
use serscale_soc::{LogicSusceptibility, PlatformSpec};
use serscale_sram::{MbuModel, SoftErrorModel};
use serscale_types::{CacheLevel, CrossSection, Megahertz, Millivolts, VoltageDomain};

/// Per-cache-level detection efficiency: the fraction of raw bit strikes
/// in an array that surface as EDAC events at all.
///
/// A strike is only *observed* if it hits a valid entry that is
/// subsequently touched (read, written back, scrubbed). The six benchmarks
/// neither occupy the whole cache nor re-read every line, so the observed
/// rate sits well below the raw `bits × σ × φ` arithmetic — the paper makes
/// exactly this argument when comparing its 2.08–2.45 FIT/Mbit against the
/// 15 FIT/Mbit of the static-test study \[83\] (§3.5). Constants are
/// calibrated from Figure 6's per-level rates at nominal voltage
/// (`DESIGN.md` §3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectionEfficiency {
    /// TLBs (small, hot — relatively high efficiency).
    pub tlb: f64,
    /// L1 caches (small and hot but write-through: many upsets are
    /// overwritten before ever being read back).
    pub l1: f64,
    /// L2 caches.
    pub l2: f64,
    /// The L3 (large; benchmarks touch a fraction of it).
    pub l3: f64,
}

impl DetectionEfficiency {
    /// Calibrated against Figure 6 at 980 mV / 950 mV (see `DESIGN.md`),
    /// times a ×1.09 dead-time compensation: the paper's per-minute rates
    /// are normalized by *session wall-clock*, which includes ≈9 % of
    /// crash-recovery dead time during which no upsets are observed, so
    /// the live (beam-on, benchmark-running) efficiency must sit
    /// correspondingly higher for the end-to-end session rates to land on
    /// Table 2.
    pub fn calibrated() -> Self {
        DetectionEfficiency {
            tlb: 0.172,
            l1: 0.078,
            l2: 0.219,
            l3: 0.140,
        }
    }

    /// The efficiencies a platform spec declares. For
    /// [`PlatformSpec::xgene2`] these are exactly
    /// [`DetectionEfficiency::calibrated`].
    pub fn for_platform(spec: &PlatformSpec) -> Self {
        DetectionEfficiency {
            tlb: spec.physics.detect_tlb,
            l1: spec.physics.detect_l1,
            l2: spec.physics.detect_l2,
            l3: spec.physics.detect_l3,
        }
    }

    /// The efficiency for a cache level.
    pub fn for_level(&self, level: CacheLevel) -> f64 {
        match level {
            CacheLevel::Tlb => self.tlb,
            CacheLevel::L1 => self.l1,
            CacheLevel::L2 => self.l2,
            CacheLevel::L3 => self.l3,
        }
    }
}

/// The DUT: platform + physics + operating point.
///
/// The SRAM and MBU physics are instantiated *per voltage domain*, each
/// anchored at its own domain nominal (980 mV for the PMD arrays, 950 mV
/// for the SoC-domain L3): an array is designed for — and its calibrated
/// nominal cross-section refers to — its own supply, so the voltage ratio
/// entering the Qcrit law is `V/V_domain-nominal`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceUnderTest {
    soc: Platform,
    sram_pmd: SoftErrorModel,
    sram_soc: SoftErrorModel,
    mbu_pmd: MbuModel,
    mbu_soc: MbuModel,
    logic: LogicSusceptibility,
    detection: DetectionEfficiency,
    point: OperatingPoint,
    /// The characterized safe Vmin at the current frequency — the anchor
    /// of the near-Vmin logic amplification.
    vmin: Millivolts,
}

impl DeviceUnderTest {
    /// Builds the paper's DUT at an operating point, given the
    /// characterized safe Vmin for the point's frequency (920 mV at
    /// 2.4 GHz, 790 mV at 900 MHz). Equivalent to
    /// [`DeviceUnderTest::for_platform`] on [`PlatformSpec::xgene2`].
    pub fn xgene2(point: OperatingPoint, vmin: Millivolts) -> Self {
        Self::for_platform(&PlatformSpec::xgene2(), point, vmin)
    }

    /// Builds any platform's DUT from its declarative spec: the SRAM and
    /// MBU physics are instantiated per voltage domain at the spec's rail
    /// nominals, the logic and detection models come from its physics
    /// block. For [`PlatformSpec::xgene2`] the result is identical to
    /// [`DeviceUnderTest::xgene2`].
    pub fn for_platform(spec: &PlatformSpec, point: OperatingPoint, vmin: Millivolts) -> Self {
        let physics = &spec.physics;
        let sram_at = |nominal: Millivolts| {
            SoftErrorModel::new(
                CrossSection::cm2(physics.sram_sigma_bit_cm2),
                nominal,
                physics.sram_voltage_sensitivity,
            )
        };
        let mbu_at = |nominal: Millivolts| {
            MbuModel::new(
                physics.mbu_p_extra,
                nominal,
                physics.sram_voltage_sensitivity,
                physics.mbu_max_cluster,
            )
        };
        DeviceUnderTest {
            soc: Platform::from_spec(spec),
            sram_pmd: sram_at(spec.pmd_rail.nominal),
            sram_soc: sram_at(spec.soc_rail.nominal),
            mbu_pmd: mbu_at(spec.pmd_rail.nominal),
            mbu_soc: mbu_at(spec.soc_rail.nominal),
            logic: LogicSusceptibility::for_platform(spec),
            detection: DetectionEfficiency::for_platform(spec),
            point,
            vmin,
        }
    }

    /// Convenience: the paper's safe Vmin for a frequency (920 mV at
    /// 2.4 GHz, 790 mV at 900 MHz; linear interpolation elsewhere on the
    /// PLL grid), snapped up to the 5 mV regulator grid in exact integer
    /// arithmetic via [`PlatformSpec::vmin_at`].
    pub fn paper_vmin(frequency: Megahertz) -> Millivolts {
        PlatformSpec::xgene2().vmin_at(frequency)
    }

    /// The platform model.
    pub const fn soc(&self) -> &Platform {
        &self.soc
    }

    /// The SRAM susceptibility model for a voltage domain.
    pub const fn sram_model(&self, domain: VoltageDomain) -> &SoftErrorModel {
        match domain {
            VoltageDomain::Soc => &self.sram_soc,
            _ => &self.sram_pmd,
        }
    }

    /// The MBU clustering model for a voltage domain.
    pub const fn mbu_model(&self, domain: VoltageDomain) -> &MbuModel {
        match domain {
            VoltageDomain::Soc => &self.mbu_soc,
            _ => &self.mbu_pmd,
        }
    }

    /// The unprotected-logic susceptibility model.
    pub const fn logic(&self) -> &LogicSusceptibility {
        &self.logic
    }

    /// The current operating point.
    pub const fn operating_point(&self) -> OperatingPoint {
        self.point
    }

    /// The safe Vmin anchoring the logic amplification.
    pub const fn vmin(&self) -> Millivolts {
        self.vmin
    }

    /// Moves the DUT to a new operating point (and its frequency's Vmin).
    pub fn set_operating_point(&mut self, point: OperatingPoint, vmin: Millivolts) {
        self.point = point;
        self.vmin = vmin;
    }

    /// The supply voltage currently feeding an array instance.
    pub fn array_voltage(&self, instance: &ArrayInstance) -> Millivolts {
        self.point.voltage_of(instance.array().voltage_domain())
    }

    /// The *observable* cross-section of one array instance under the
    /// current operating point and a benchmark's detection factor:
    /// `bits × σ_bit(V_domain) × η_level × detection_factor`.
    pub fn observable_sigma(
        &self,
        instance: &ArrayInstance,
        detection_factor: f64,
    ) -> CrossSection {
        let domain = instance.array().voltage_domain();
        let v = self.array_voltage(instance);
        let raw = self
            .sram_model(domain)
            .sigma_array(instance.data_bits().get(), v);
        let eta = self.detection.for_level(instance.kind().cache_level());
        raw * (eta * detection_factor)
    }

    /// The chip-level observable SRAM cross-section (all arrays) for a
    /// benchmark — what drives the upsets/minute of Figure 5.
    pub fn total_observable_sram_sigma(&self, detection_factor: f64) -> CrossSection {
        self.soc
            .arrays()
            .map(|a| self.observable_sigma(a, detection_factor))
            .sum()
    }

    /// The control-logic cross-section at the current point.
    pub fn control_sigma(&self) -> CrossSection {
        self.logic.sigma_control(self.point.pmd)
    }

    /// The datapath cross-section at the current point (with the
    /// near-Vmin amplification).
    pub fn datapath_sigma(&self) -> CrossSection {
        self.logic
            .sigma_data(self.point.pmd, self.point.frequency, self.vmin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serscale_types::Flux;

    const WORKING_FLUX: f64 = 1.5e6;

    fn dut_at(point: OperatingPoint) -> DeviceUnderTest {
        DeviceUnderTest::xgene2(point, DeviceUnderTest::paper_vmin(point.frequency))
    }

    /// Observed upsets/minute for a detection factor of 1.0 at a point.
    fn upsets_per_minute(point: OperatingPoint) -> f64 {
        dut_at(point)
            .total_observable_sram_sigma(1.0)
            .event_rate(Flux::per_cm2_s(WORKING_FLUX))
            * 60.0
    }

    /// Hand-builds the DUT the way the pre-spec constructor did — every
    /// physics model anchored on the crate calibration constants — so the
    /// spec-driven path is pinned against the historical construction.
    fn constructor_built(point: OperatingPoint, vmin: Millivolts) -> DeviceUnderTest {
        use serscale_soc::platform::XGene2;
        let soc_nominal = XGene2::SOC_NOMINAL;
        DeviceUnderTest {
            soc: XGene2::new(),
            sram_pmd: SoftErrorModel::tech_28nm(),
            sram_soc: SoftErrorModel::new(
                serscale_types::CrossSection::cm2(SoftErrorModel::SIGMA_28NM_NOMINAL_CM2),
                soc_nominal,
                SoftErrorModel::DEFAULT_VOLTAGE_SENSITIVITY,
            ),
            mbu_pmd: MbuModel::tech_28nm(),
            mbu_soc: MbuModel::new(
                MbuModel::DEFAULT_P_EXTRA,
                soc_nominal,
                MbuModel::DEFAULT_VOLTAGE_SENSITIVITY,
                MbuModel::DEFAULT_MAX_CLUSTER,
            ),
            logic: LogicSusceptibility::xgene2(),
            detection: DetectionEfficiency::calibrated(),
            point,
            vmin,
        }
    }

    #[test]
    fn spec_built_dut_matches_the_constructor_built_one() {
        let spec = PlatformSpec::xgene2();
        for point in OperatingPoint::CAMPAIGN {
            let vmin = DeviceUnderTest::paper_vmin(point.frequency);
            assert_eq!(
                DeviceUnderTest::for_platform(&spec, point, vmin),
                constructor_built(point, vmin),
                "{}",
                point.label()
            );
        }
    }

    #[test]
    fn zynq_dut_builds_and_scales_with_voltage() {
        let spec = PlatformSpec::zynq_mpsoc();
        let nominal = spec.nominal_point();
        let vmin_pt = spec.campaign[2].point;
        let at = |p: serscale_soc::platform::OperatingPoint| {
            DeviceUnderTest::for_platform(&spec, p, spec.vmin_at(p.frequency))
                .total_observable_sram_sigma(1.0)
                .as_cm2()
        };
        assert!(at(vmin_pt) > at(nominal), "undervolting must raise sigma");
    }

    #[test]
    fn paper_vmin_lookup() {
        assert_eq!(
            DeviceUnderTest::paper_vmin(Megahertz::new(2400)),
            Millivolts::new(920)
        );
        assert_eq!(
            DeviceUnderTest::paper_vmin(Megahertz::new(900)),
            Millivolts::new(790)
        );
        let mid = DeviceUnderTest::paper_vmin(Megahertz::new(1500));
        assert!(mid > Millivolts::new(790) && mid < Millivolts::new(920));
        assert!(mid.is_step_aligned());
    }

    /// Regression for the double-rounding hazard in the Vmin grid snap:
    /// an interpolated value that is exactly on the 5 mV grid must not be
    /// bumped a whole step by float noise in `ceil`. Expected values are
    /// computed in exact integer arithmetic (`mv = 790 + (f−900)·13/150`
    /// mV, snapped to the smallest 5 mV multiple ≥ the exact value).
    #[test]
    fn vmin_snap_is_grid_exact() {
        let exact_snap = |f: u32| {
            // ceil((790·150 + (f−900)·13) / (150·5)) · 5, all in integers.
            let num = 790 * 150 + (u64::from(f) - 900) * 13;
            let den = 150 * 5;
            Millivolts::new(u32::try_from(num.div_ceil(den) * 5).unwrap())
        };
        // The 300 MHz PLL grid, plus 1650 MHz — the only interior frequency
        // whose exact interpolation (855 mV) lands on the regulator grid.
        for f in (900..=2400).step_by(300).chain([1650]) {
            let got = DeviceUnderTest::paper_vmin(Megahertz::new(f));
            assert_eq!(got, exact_snap(f), "f = {f} MHz");
            assert!(got.is_step_aligned(), "f = {f} MHz");
        }
        assert_eq!(exact_snap(900), Millivolts::new(790));
        assert_eq!(exact_snap(1650), Millivolts::new(855));
        assert_eq!(exact_snap(2400), Millivolts::new(920));
    }

    /// Live rates exceed Table 2's wall-clock rates by the ≈9% dead-time
    /// compensation baked into [`DetectionEfficiency::calibrated`].
    const DEAD_TIME_COMP: f64 = 1.09;

    #[test]
    fn upset_rate_matches_table2_at_nominal() {
        // Table 2 row 9, session 1: 1.011 upsets/min (wall-clock).
        let rate = upsets_per_minute(OperatingPoint::nominal());
        assert!((rate - 1.01 * DEAD_TIME_COMP).abs() < 0.09, "rate = {rate}");
    }

    #[test]
    fn upset_rates_increase_as_voltage_drops() {
        // Table 2 row 9 trend: 1.011 → 1.077 → 1.117 → 1.182.
        let r = OperatingPoint::CAMPAIGN.map(upsets_per_minute);
        assert!(r[0] < r[1] && r[1] < r[2] && r[2] < r[3], "{r:?}");
        // Within ~5% of the measured (dead-time-compensated) values.
        for (sim, paper) in r.iter().zip([1.011, 1.077, 1.117, 1.182]) {
            let target = paper * DEAD_TIME_COMP;
            assert!((sim - target).abs() / target < 0.06, "{sim} vs {target}");
        }
    }

    #[test]
    fn per_level_rates_match_figure6_at_nominal() {
        let dut = dut_at(OperatingPoint::nominal());
        let flux = Flux::per_cm2_s(WORKING_FLUX);
        let mut per_level = [0.0f64; 4];
        for inst in dut.soc().arrays() {
            let rate = dut.observable_sigma(inst, 1.0).event_rate(flux) * 60.0;
            let idx = match inst.kind().cache_level() {
                CacheLevel::Tlb => 0,
                CacheLevel::L1 => 1,
                CacheLevel::L2 => 2,
                CacheLevel::L3 => 3,
            };
            per_level[idx] += rate;
        }
        // Fig. 6 @ 980/950 mV: TLB 0.016, L1 0.028, L2 0.157, L3 0.803
        // (corrected + uncorrected).
        let paper = [0.016, 0.028, 0.157, 0.803];
        for (i, (sim, p)) in per_level.iter().zip(paper).enumerate() {
            let target = p * DEAD_TIME_COMP;
            assert!(
                (sim - target).abs() / target < 0.10,
                "level {i}: {sim} vs {target}"
            );
        }
    }

    #[test]
    fn l3_rate_unchanged_at_790mv_because_soc_domain_holds() {
        let at_nominal = dut_at(OperatingPoint::nominal());
        let at_790 = dut_at(OperatingPoint::vmin_900());
        let l3_sigma = |dut: &DeviceUnderTest| -> f64 {
            dut.soc()
                .arrays()
                .filter(|a| a.kind().cache_level() == CacheLevel::L3)
                .map(|a| dut.observable_sigma(a, 1.0).as_cm2())
                .sum()
        };
        assert!((l3_sigma(&at_nominal) - l3_sigma(&at_790)).abs() < 1e-20);
    }

    #[test]
    fn datapath_sigma_explodes_at_vmin_only() {
        let nominal = dut_at(OperatingPoint::nominal()).datapath_sigma().as_cm2();
        let safe = dut_at(OperatingPoint::safe()).datapath_sigma().as_cm2();
        let vmin = dut_at(OperatingPoint::vmin_2400())
            .datapath_sigma()
            .as_cm2();
        assert!(
            safe / nominal > 1.5 && safe / nominal < 2.5,
            "safe ratio {}",
            safe / nominal
        );
        assert!(vmin / nominal > 12.0, "vmin ratio {}", vmin / nominal);
    }

    #[test]
    fn detection_factor_scales_observable_sigma() {
        let dut = dut_at(OperatingPoint::nominal());
        let base = dut.total_observable_sram_sigma(1.0).as_cm2();
        let heavy = dut.total_observable_sram_sigma(1.125).as_cm2();
        assert!((heavy / base - 1.125).abs() < 1e-9);
    }

    #[test]
    fn moving_operating_point_changes_physics() {
        let mut dut = dut_at(OperatingPoint::nominal());
        let before = dut.total_observable_sram_sigma(1.0).as_cm2();
        dut.set_operating_point(
            OperatingPoint::vmin_2400(),
            DeviceUnderTest::paper_vmin(Megahertz::new(2400)),
        );
        assert!(dut.total_observable_sram_sigma(1.0).as_cm2() > before);
    }
}
