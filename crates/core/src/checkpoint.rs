//! Checkpoint/restart economics: does undervolting pay once you have to
//! recover from the failures it causes?
//!
//! The paper's introduction leaves this open:
//!
//! > "Semiconductor vendors mitigate soft errors in CPUs with error
//! > recovery mechanisms, which introduce overheads and negatively affect
//! > power consumption. … Therefore, it is unclear whether energy savings
//! > from reduced voltage margins outweigh the overhead of error recovery
//! > mechanisms."
//!
//! This module answers it quantitatively for the classic
//! checkpoint/restart scheme (\[26\] Dongarra et al. in the paper). Given a
//! failure rate (from the campaign's measured FIT at an operating point)
//! and a checkpoint cost, Young/Daly's first-order optimum gives the
//! checkpoint interval `τ* = √(2·C·MTBF)` and an expected execution-time
//! inflation; combining that inflation with the operating point's power
//! draw yields *energy per unit of useful work* — the metric that decides
//! whether an undervolted machine actually comes out ahead.

use serde::{Deserialize, Serialize};

use serscale_soc::platform::OperatingPoint;
use serscale_soc::PowerModel;
use serscale_types::{Fit, SimDuration, Watts};

/// A checkpoint/restart configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckpointScheme {
    /// Time to write one checkpoint.
    pub checkpoint_cost: SimDuration,
    /// Time to restore from the last checkpoint after a failure.
    pub restart_cost: SimDuration,
}

/// The unvalidated wire shape of a [`CheckpointScheme`], e.g. as decoded
/// from a config file. The workspace's `serde` is a deliberate no-op, so
/// deserialization in this codebase is hand-rolled — and a hand-rolled
/// (or derived) decode of `CheckpointScheme` itself would bypass
/// [`CheckpointScheme::new`]'s zero-cost assertion and divide by zero in
/// [`CheckpointScheme::inflation_factor`]. Decode into this raw struct
/// instead and convert via `TryFrom`, which re-validates.
#[derive(Debug, Clone, Copy, PartialEq, Deserialize)]
pub struct RawCheckpointScheme {
    /// Claimed checkpoint-write cost, in seconds.
    pub checkpoint_cost_s: f64,
    /// Claimed restart cost, in seconds.
    pub restart_cost_s: f64,
}

impl TryFrom<RawCheckpointScheme> for CheckpointScheme {
    type Error = String;

    fn try_from(raw: RawCheckpointScheme) -> Result<Self, Self::Error> {
        let duration = |name: &str, secs: f64| {
            if !secs.is_finite() || secs < 0.0 {
                return Err(format!(
                    "{name} must be finite and non-negative, got {secs}"
                ));
            }
            Ok(SimDuration::from_secs(secs))
        };
        let checkpoint_cost = duration("checkpoint_cost_s", raw.checkpoint_cost_s)?;
        let restart_cost = duration("restart_cost_s", raw.restart_cost_s)?;
        if checkpoint_cost.is_zero() {
            return Err(
                "checkpoint_cost_s must be positive (the Young/Daly optimum degenerates at zero)"
                    .to_string(),
            );
        }
        Ok(CheckpointScheme {
            checkpoint_cost,
            restart_cost,
        })
    }
}

impl CheckpointScheme {
    /// A typical in-memory/NVMe checkpoint for a node-sized footprint:
    /// 30 s to write, 60 s to restore (plus the work lost since the last
    /// checkpoint, which the model accounts separately).
    pub fn typical() -> Self {
        CheckpointScheme {
            checkpoint_cost: SimDuration::from_secs(30.0),
            restart_cost: SimDuration::from_secs(60.0),
        }
    }

    /// Creates a scheme.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint cost is zero (the optimum degenerates).
    pub fn new(checkpoint_cost: SimDuration, restart_cost: SimDuration) -> Self {
        assert!(
            !checkpoint_cost.is_zero(),
            "checkpoint cost must be positive"
        );
        CheckpointScheme {
            checkpoint_cost,
            restart_cost,
        }
    }

    /// Young/Daly's first-order optimal checkpoint interval for a given
    /// mean time between failures: `τ* = √(2·C·MTBF)`.
    ///
    /// # Panics
    ///
    /// Panics if `mtbf` is zero.
    pub fn optimal_interval(&self, mtbf: SimDuration) -> SimDuration {
        assert!(!mtbf.is_zero(), "MTBF must be positive");
        SimDuration::from_secs((2.0 * self.checkpoint_cost.as_secs() * mtbf.as_secs()).sqrt())
    }

    /// The expected execution-time inflation factor (≥ 1) at the optimal
    /// interval: useful time `w` costs `w × waste(τ*)` of wall time.
    ///
    /// First-order model: per interval `τ`, overheads are the checkpoint
    /// write `C`, plus — with probability `τ/MTBF` — a restart `R` and on
    /// average `τ/2` of lost work.
    pub fn inflation_factor(&self, mtbf: SimDuration) -> f64 {
        let tau = self.optimal_interval(mtbf).as_secs();
        let c = self.checkpoint_cost.as_secs();
        let r = self.restart_cost.as_secs();
        let m = mtbf.as_secs();
        1.0 + c / tau + (tau / m) * (r / tau + 0.5)
    }

    /// Serializes the scheme as a JSON object (the inverse of
    /// [`from_json`](Self::from_json)).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"checkpoint_cost_s\":{},\"restart_cost_s\":{}}}",
            crate::trace::fmt_f64(self.checkpoint_cost.as_secs()),
            crate::trace::fmt_f64(self.restart_cost.as_secs())
        )
    }

    /// Decodes a scheme from JSON through the validated
    /// [`RawCheckpointScheme`] path — malformed input (zero checkpoint
    /// cost, negative or non-finite durations) is an error, never a
    /// scheme that later divides by zero.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntactic or semantic problem.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let value = crate::journal::Json::parse(text)?;
        let field = |key: &str| {
            value
                .get(key)
                .and_then(crate::journal::Json::f64)
                .ok_or_else(|| format!("missing or non-numeric field {key:?}"))
        };
        let raw = RawCheckpointScheme {
            checkpoint_cost_s: field("checkpoint_cost_s")?,
            restart_cost_s: field("restart_cost_s")?,
        };
        CheckpointScheme::try_from(raw)
    }
}

impl Default for CheckpointScheme {
    fn default() -> Self {
        Self::typical()
    }
}

/// The end-to-end ledger of running at one operating point with
/// checkpointing sized to its measured failure rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingLedger {
    /// The operating point.
    pub point: OperatingPoint,
    /// The failure rate driving the recovery machinery.
    pub fit: Fit,
    /// Mean time between failures implied by the FIT.
    pub mtbf: SimDuration,
    /// Optimal checkpoint interval at this failure rate.
    pub checkpoint_interval: SimDuration,
    /// Wall-time inflation (≥ 1) paid for checkpoint/restart.
    pub inflation: f64,
    /// Package power at the operating point.
    pub power: Watts,
    /// Energy per unit of useful work, normalized so nominal = 1 when
    /// built through [`compare_to_nominal`].
    pub energy_per_work: f64,
}

/// Builds the ledger for one operating point given its measured FIT.
///
/// # Panics
///
/// Panics if `fit` is zero (no failures ⇒ no checkpointing needed; the
/// comparison is then trivial).
pub fn ledger(
    point: OperatingPoint,
    fit: Fit,
    scheme: &CheckpointScheme,
    power_model: &PowerModel,
) -> OperatingLedger {
    // The promised validation, stated here and not left to `Fit::mttf`'s
    // incidental assert: zero FIT would make the MTBF infinite, the
    // optimal interval infinite, and `inflation_factor` ∞/∞ = NaN — which
    // `compare_to_nominal` would then silently propagate.
    assert!(
        fit.get() > 0.0,
        "ledger undefined at zero FIT (no failures ⇒ no checkpointing needed)"
    );
    let mtbf = fit.mttf();
    let inflation = scheme.inflation_factor(mtbf);
    let power = power_model.total_power(point);
    OperatingLedger {
        point,
        fit,
        mtbf,
        checkpoint_interval: scheme.optimal_interval(mtbf),
        inflation,
        power,
        // Energy per unit work ∝ power × wall-time inflation. (Frequency
        // scaling additionally stretches the work itself.)
        energy_per_work: power.get() * inflation * (2400.0 / f64::from(point.frequency.get())),
    }
}

/// Compares scaled operating points against the nominal one: for each, the
/// *net* energy ratio per unit of useful work (below 1.0 = undervolting
/// pays even after recovery overheads).
pub fn compare_to_nominal(ledgers: &[OperatingLedger]) -> Vec<(OperatingPoint, f64)> {
    let nominal = ledgers
        .iter()
        .find(|l| l.point == OperatingPoint::nominal())
        .expect("nominal ledger required as baseline");
    ledgers
        .iter()
        .filter(|l| l.point != nominal.point)
        .map(|l| (l.point, l.energy_per_work / nominal.energy_per_work))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheme() -> CheckpointScheme {
        CheckpointScheme::typical()
    }

    #[test]
    fn daly_interval_formula() {
        // C = 30 s, MTBF = 15000 s ⇒ τ* = √(2·30·15000) ≈ 948.7 s.
        let tau = scheme().optimal_interval(SimDuration::from_secs(15_000.0));
        assert!((tau.as_secs() - 948.68).abs() < 0.1);
    }

    #[test]
    fn inflation_grows_as_mtbf_shrinks() {
        let s = scheme();
        let healthy = s.inflation_factor(SimDuration::from_hours(1000.0));
        let sick = s.inflation_factor(SimDuration::from_hours(1.0));
        assert!(healthy < sick);
        assert!(healthy > 1.0 && healthy < 1.01, "healthy = {healthy}");
        assert!(sick > 1.05, "sick = {sick}");
    }

    #[test]
    fn inflation_minimal_sanity_against_brute_force() {
        // τ* should (approximately) minimize the waste function over τ.
        let s = scheme();
        let mtbf = SimDuration::from_hours(2.0);
        let waste = |tau: f64| {
            1.0 + s.checkpoint_cost.as_secs() / tau
                + (tau / mtbf.as_secs()) * (s.restart_cost.as_secs() / tau + 0.5)
        };
        let opt = s.optimal_interval(mtbf).as_secs();
        let at_opt = waste(opt);
        for factor in [0.25, 0.5, 2.0, 4.0] {
            assert!(
                at_opt <= waste(opt * factor) + 1e-9,
                "waste({}) < waste(τ*)",
                opt * factor
            );
        }
    }

    #[test]
    fn beam_accelerated_rates_make_checkpointing_visible() {
        // Under the accelerated beam (MTBF ≈ 20 min at Vmin) the inflation
        // is dramatic; at natural NYC rates it is negligible — which is
        // why datacenters can contemplate undervolting at all.
        let s = scheme();
        let beam = s.inflation_factor(SimDuration::from_minutes(20.0));
        let natural = s.inflation_factor(SimDuration::from_hours(1.0e6));
        assert!(beam > 1.2, "beam inflation = {beam}");
        assert!(natural < 1.001, "natural inflation = {natural}");
    }

    #[test]
    fn ledgers_and_comparison() {
        let power = PowerModel::xgene2();
        let s = scheme();
        // Use the paper's Fig. 11 FITs scaled up ×1e6 (a harsh radiation
        // environment) so recovery costs are non-trivial.
        let ledgers = vec![
            ledger(OperatingPoint::nominal(), Fit::new(8.31e6), &s, &power),
            ledger(OperatingPoint::safe(), Fit::new(8.66e6), &s, &power),
            ledger(OperatingPoint::vmin_2400(), Fit::new(54.8e6), &s, &power),
        ];
        let cmp = compare_to_nominal(&ledgers);
        assert_eq!(cmp.len(), 2);
        // 930 mV: slightly more failures, 8% less power ⇒ wins.
        let safe = cmp
            .iter()
            .find(|(p, _)| *p == OperatingPoint::safe())
            .unwrap();
        assert!(safe.1 < 1.0, "930 mV net ratio = {}", safe.1);
        // Vmin: 6.6× failures can erode or reverse the win depending on
        // the environment; at ×1e6 NYC it must at least be worse than the
        // 930 mV point.
        let vmin = cmp
            .iter()
            .find(|(p, _)| *p == OperatingPoint::vmin_2400())
            .unwrap();
        assert!(vmin.1 > safe.1, "Vmin must pay more recovery than 930 mV");
    }

    #[test]
    #[should_panic(expected = "ledger undefined at zero FIT")]
    fn zero_fit_ledger_panics_instead_of_nan() {
        let _ = ledger(
            OperatingPoint::nominal(),
            Fit::ZERO,
            &scheme(),
            &PowerModel::xgene2(),
        );
    }

    #[test]
    fn scheme_json_round_trips_through_validation() {
        let original =
            CheckpointScheme::new(SimDuration::from_secs(12.5), SimDuration::from_secs(60.0));
        let decoded = CheckpointScheme::from_json(&original.to_json()).expect("round-trip");
        assert_eq!(decoded, original);
        // The degenerate zero restart cost is legal; zero checkpoint cost
        // is not.
        let zero_restart =
            CheckpointScheme::from_json("{\"checkpoint_cost_s\":30.0,\"restart_cost_s\":0.0}")
                .expect("zero restart cost is valid");
        assert!(zero_restart.restart_cost.is_zero());
    }

    #[test]
    fn hostile_scheme_json_is_rejected_not_divided_by() {
        for (label, text) in [
            (
                "zero checkpoint cost",
                "{\"checkpoint_cost_s\":0.0,\"restart_cost_s\":60.0}",
            ),
            (
                "negative checkpoint cost",
                "{\"checkpoint_cost_s\":-30.0,\"restart_cost_s\":60.0}",
            ),
            (
                "negative restart cost",
                "{\"checkpoint_cost_s\":30.0,\"restart_cost_s\":-1.0}",
            ),
            (
                "non-finite cost",
                "{\"checkpoint_cost_s\":1e999,\"restart_cost_s\":60.0}",
            ),
            ("missing field", "{\"checkpoint_cost_s\":30.0}"),
            ("not json", "checkpoint_cost_s=30"),
        ] {
            assert!(
                CheckpointScheme::from_json(text).is_err(),
                "{label} must be rejected"
            );
        }
        // And the TryFrom path itself, as a config loader would use it.
        let raw = RawCheckpointScheme {
            checkpoint_cost_s: 0.0,
            restart_cost_s: 60.0,
        };
        assert!(CheckpointScheme::try_from(raw).is_err());
    }

    #[test]
    fn mtbf_roundtrip() {
        let l = ledger(
            OperatingPoint::nominal(),
            Fit::new(1000.0),
            &scheme(),
            &PowerModel::xgene2(),
        );
        assert!((l.mtbf.as_hours() - 1.0e6).abs() < 1.0);
        assert!(l.inflation >= 1.0);
    }
}
