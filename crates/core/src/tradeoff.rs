//! The power/susceptibility trade-off analyses of §5 (Figures 9 and 10).

use serde::{Deserialize, Serialize};

use serscale_soc::platform::OperatingPoint;
use serscale_soc::PowerModel;
use serscale_types::Watts;

use crate::campaign::CampaignReport;
use crate::session::SessionReport;

/// One operating point of Figure 9: power draw against cache upset rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TradeoffRow {
    /// The operating point.
    pub point: OperatingPoint,
    /// Modelled package power (suite average).
    pub power: Watts,
    /// Measured cache upsets per minute in this session.
    pub upsets_per_minute: f64,
}

/// One scaled operating point of Figure 10: what you save vs what it
/// costs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SavingsRow {
    /// The operating point.
    pub point: OperatingPoint,
    /// Fractional power savings relative to nominal.
    pub power_savings: f64,
    /// Fractional increase in the cache upset rate relative to nominal.
    pub susceptibility_increase: f64,
}

/// Builds Figure 9's rows from a campaign report.
pub fn power_vs_upsets(report: &CampaignReport, power: &PowerModel) -> Vec<TradeoffRow> {
    report
        .sessions
        .iter()
        .map(|s| TradeoffRow {
            point: s.operating_point,
            power: power.total_power(s.operating_point),
            upsets_per_minute: s.upset_rate().per_minute(),
        })
        .collect()
}

/// Builds Figure 10's rows (scaled points only, relative to the campaign's
/// nominal session).
///
/// # Panics
///
/// Panics if the campaign has no nominal-voltage baseline session.
pub fn savings_vs_susceptibility(report: &CampaignReport, power: &PowerModel) -> Vec<SavingsRow> {
    let baseline = report
        .baseline()
        .expect("campaign must include a nominal session");
    let base_power = power.total_power(baseline.operating_point);
    let base_rate = baseline.upset_rate().per_minute();
    report
        .sessions
        .iter()
        .filter(|s| s.operating_point != baseline.operating_point)
        .map(|s| SavingsRow {
            point: s.operating_point,
            power_savings: power.total_power(s.operating_point).savings_vs(base_power),
            susceptibility_increase: s.upset_rate().per_minute() / base_rate - 1.0,
        })
        .collect()
}

/// The marginal exchange rate at one scaled point: percentage points of
/// susceptibility increase per percentage point of power savings. Above
/// 1.0, reliability deteriorates faster than power improves (the paper's
/// Observation #7 at 2.4 GHz).
pub fn susceptibility_per_savings(row: &SavingsRow) -> f64 {
    row.susceptibility_increase / row.power_savings
}

/// Convenience: the upset-rate ratio of one session against a baseline
/// session.
pub fn susceptibility_ratio(session: &SessionReport, baseline: &SessionReport) -> f64 {
    session.upset_rate().per_minute() / baseline.upset_rate().per_minute()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{Campaign, CampaignConfig};

    fn quick_report() -> &'static CampaignReport {
        // Equal-length sixteen-hour sessions, computed once and shared by
        // every test in this module: the rate gap between the two most
        // susceptible sessions is only ~5%, so short sessions leave the
        // "highest rate" ranking at the mercy of Poisson noise.
        static REPORT: std::sync::OnceLock<CampaignReport> = std::sync::OnceLock::new();
        REPORT.get_or_init(|| {
            let mut c = CampaignConfig::paper();
            c.seed = 99;
            for (_, limits) in &mut c.sessions {
                *limits = crate::session::SessionLimits::time_boxed(
                    serscale_types::SimDuration::from_minutes(960.0),
                );
            }
            Campaign::new(c).run()
        })
    }

    #[test]
    fn figure9_rows_shape() {
        let report = quick_report();
        let rows = power_vs_upsets(report, &PowerModel::xgene2());
        assert_eq!(rows.len(), 4);
        // Power decreases monotonically down Table 3's column order.
        for pair in rows.windows(2) {
            assert!(pair[1].power < pair[0].power);
        }
        // The 790 mV / 900 MHz point nearly halves the power…
        assert!(rows[3].power.get() < 11.5);
        // …while the upset rate is the campaign's highest.
        let max_rate = rows
            .iter()
            .map(|r| r.upsets_per_minute)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((rows[3].upsets_per_minute - max_rate).abs() < 1e-12);
    }

    #[test]
    fn figure10_rows_shape() {
        let report = quick_report();
        let rows = savings_vs_susceptibility(report, &PowerModel::xgene2());
        assert_eq!(rows.len(), 3);
        // Paper: savings 8.7% → 11.0% → 48.1%.
        assert!(rows[0].power_savings > 0.06 && rows[0].power_savings < 0.11);
        assert!(rows[1].power_savings > rows[0].power_savings);
        assert!(rows[2].power_savings > 0.4);
        // Susceptibility increases everywhere.
        for r in &rows {
            assert!(r.susceptibility_increase > -0.05, "{:?}", r.point);
        }
    }

    #[test]
    fn exchange_rate_above_one_at_2400mhz_vmin() {
        // Observation #7: at 2.4 GHz susceptibility rises faster than
        // savings; at 900 MHz the frequency cut buys savings "for free".
        let report = quick_report();
        let rows = savings_vs_susceptibility(report, &PowerModel::xgene2());
        let at_900 = rows
            .iter()
            .find(|r| r.point.frequency.get() == 900)
            .unwrap();
        assert!(
            susceptibility_per_savings(at_900) < 1.0,
            "900 MHz exchange rate = {}",
            susceptibility_per_savings(at_900)
        );
    }

    #[test]
    fn susceptibility_ratio_vs_baseline() {
        let report = quick_report();
        let base = report.baseline().unwrap();
        let vmin900 = report
            .session_at(serscale_soc::platform::OperatingPoint::vmin_900())
            .unwrap();
        let ratio = susceptibility_ratio(vmin900, base);
        // Table 2: 1.182/1.011 ≈ 1.17.
        assert!(ratio > 1.05 && ratio < 1.35, "ratio = {ratio}");
    }
}
