//! A beam test session: one voltage setting, benchmarks cycling under
//! beam until the stopping rules fire — one column of Table 2.
//!
//! ## Execution model
//!
//! A session is a sequence of *trials*: trial `t` runs benchmark
//! `Benchmark::ALL[t % 6]` on its own RNG stream
//! (`session_rng.stream("trial", &[t])`), so every trial's physics is a
//! pure function of the session seed and the trial index — never of which
//! thread ran it or in what order. The driver executes trials in
//! speculative waves (inline, or on the [`crate::parallel`] pool when
//! `jobs > 1`) and then *merges* the outcomes strictly in trial order:
//! the simulated clock, the fluence ledger, the stopping rules and every
//! observer callback are applied by the single-threaded merge exactly as
//! the sequential loop would, and outcomes past the stopping trial are
//! discarded. The report is therefore bit-identical for any `jobs`.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use serscale_beam::FluenceLedger;
use serscale_soc::edac::{EdacSeverity, LevelCounts};
use serscale_soc::platform::OperatingPoint;
use serscale_stats::{RateEstimate, SimRng};
use serscale_types::{Fluence, Flux, SimDuration, SimInstant, NYC_SEA_LEVEL_FLUX};
use serscale_workload::Benchmark;

use crate::classify::{FailureClass, RunVerdict};
use crate::dut::DeviceUnderTest;
use crate::journal::{JournalWriter, Record, RecoveredSession};
use crate::runner::{BenchmarkRunner, RunOutcome};
use crate::scheduler::{CancelToken, Cancelled};

/// When a session ends.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SessionLimits {
    /// Stop once this many error events (SDCs + crashes) accumulated —
    /// the "100 events" significance rule of §3.5.
    pub max_error_events: u64,
    /// Stop once this fluence is reached (the 10¹¹ n/cm² ESCC rule).
    pub max_fluence: Fluence,
    /// Stop after this much beam time (reserved-beam-window exhaustion,
    /// the fate of the paper's session 4).
    pub max_duration: Option<SimDuration>,
}

impl SessionLimits {
    /// The textbook §3.5 rules: 100 events or 10¹¹ n/cm², no time cap.
    pub fn standard() -> Self {
        SessionLimits {
            max_error_events: 100,
            max_fluence: Fluence::SIGNIFICANCE_THRESHOLD,
            max_duration: None,
        }
    }

    /// A pure time-boxed session: reproduce a realized exposure (how the
    /// paper's Table 2 durations are replayed — the operators chose to run
    /// sessions 1 and 2 well past the fluence rule).
    pub fn time_boxed(duration: SimDuration) -> Self {
        SessionLimits {
            max_error_events: u64::MAX,
            max_fluence: Fluence::per_cm2(f64::MAX / 1e10),
            max_duration: Some(duration),
        }
    }
}

impl Default for SessionLimits {
    fn default() -> Self {
        Self::standard()
    }
}

/// How the engine handles a trial whose attempt panics or times out:
/// bounded retries on counter-derived streams, then quarantine.
///
/// Attempt 0 runs on the canonical per-trial stream — with no failures
/// the robust path is bit-identical to the plain one. Attempt `a ≥ 1`
/// re-runs on `stream("trial", &[trial, a])`, a pure function of the
/// session seed, so retried physics is deterministic and independent of
/// scheduling. Backoff between attempts is *host* time (exponential,
/// capped) and never touches the simulated clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retry attempts after the first failure before quarantining.
    pub max_retries: u32,
    /// Base host-time backoff before a retry (doubled per attempt,
    /// capped at one second).
    pub backoff: std::time::Duration,
    /// Host-time budget per attempt; a trial exceeding it is treated as
    /// failed. `None` (the default) disables the watchdog — timeouts
    /// depend on host scheduling, so enabling one trades determinism of
    /// the *retry counters* (never of a completed run's physics) for
    /// hang protection.
    pub timeout: Option<std::time::Duration>,
}

impl RetryPolicy {
    /// The default policy: 2 retries, 10 ms base backoff, no watchdog.
    pub fn standard() -> Self {
        RetryPolicy {
            max_retries: 2,
            backoff: std::time::Duration::from_millis(10),
            timeout: None,
        }
    }

    /// The standard policy with a per-attempt watchdog.
    pub fn with_timeout(timeout: std::time::Duration) -> Self {
        RetryPolicy {
            timeout: Some(timeout),
            ..Self::standard()
        }
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::standard()
    }
}

/// One executed trial as the canonical merge absorbs it: the outcome
/// plus the robustness bookkeeping the journal and the report carry.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialExecution {
    /// Trial index within the session.
    pub trial: u64,
    /// What the (final) attempt produced — or the synthetic placeholder
    /// if the trial was quarantined.
    pub outcome: RunOutcome,
    /// Failed attempts that preceded the final one.
    pub retries: u32,
    /// Whether every attempt failed; a quarantined outcome advances the
    /// clock and the fluence ledger but contributes no runs or events.
    pub quarantined: bool,
}

/// How to execute a session: worker count, retry policy, and the
/// crash-safety hooks (journal to append to, journaled history to
/// fast-forward through).
#[derive(Debug)]
pub struct ExecutionPlan<'a> {
    /// Worker threads for the speculative waves.
    pub jobs: usize,
    /// Retry/quarantine policy for failing trials.
    pub retry: RetryPolicy,
    /// Journal to append absorbed trials to (fsync'd once per wave).
    pub journal: Option<&'a mut JournalWriter>,
    /// Journaled history to replay before executing live.
    pub recovered: Option<&'a RecoveredSession>,
    /// This session's index in its campaign (tags journal records).
    pub session_index: u64,
    /// Cooperative cancellation flag, polled at wave boundaries (see
    /// [`TestSession::try_run_planned`]).
    pub cancel: Option<CancelToken>,
}

impl ExecutionPlan<'static> {
    /// A plain plan: `jobs` workers, standard retries, no journal.
    pub fn with_jobs(jobs: usize) -> Self {
        ExecutionPlan {
            jobs,
            retry: RetryPolicy::standard(),
            journal: None,
            recovered: None,
            session_index: 0,
            cancel: None,
        }
    }
}

/// Why the session stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StopReason {
    /// Enough error events accumulated.
    ErrorEvents,
    /// The fluence target was reached.
    Fluence,
    /// The reserved beam time ran out.
    BeamTime,
}

/// Per-benchmark telemetry within a session (the data behind Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct BenchmarkStats {
    /// Completed runs.
    pub runs: u64,
    /// EDAC records observed while this benchmark ran.
    pub memory_upsets: u64,
    /// Beam-on execution time attributed to this benchmark (excluding
    /// crash recovery).
    pub execution_time: SimDuration,
    /// SDCs attributed to this benchmark.
    pub sdcs: u64,
}

impl BenchmarkStats {
    /// Upsets per minute of execution — a Figure 5 bar.
    pub fn upsets_per_minute(&self) -> f64 {
        if self.execution_time.is_zero() {
            0.0
        } else {
            self.memory_upsets as f64 / self.execution_time.as_minutes()
        }
    }
}

/// The full outcome of one session — one Table 2 column plus the data
/// behind Figures 5, 6/7 and 8 at this voltage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionReport {
    /// The tested operating point.
    pub operating_point: OperatingPoint,
    /// Why the session ended.
    pub stop_reason: StopReason,
    /// Total beam-on time (runs + crash recoveries).
    pub duration: SimDuration,
    /// Accumulated fluence.
    pub fluence: Fluence,
    /// Completed benchmark runs.
    pub runs: u64,
    /// Error events per failure class.
    pub failures: BTreeMap<FailureClass, u64>,
    /// SDCs that coincided with a corrected-error notification (Fig. 12's
    /// rare deceptive case).
    pub sdc_with_notification: u64,
    /// Total EDAC records (Table 2's "memory upsets").
    pub memory_upsets: u64,
    /// EDAC records per (cache level, severity) — Figures 6/7.
    pub edac_per_level: LevelCounts,
    /// Per-benchmark stats — Figure 5.
    pub per_benchmark: BTreeMap<Benchmark, BenchmarkStats>,
    /// Retry attempts consumed by panicking or timed-out trials (zero in
    /// a healthy run). See [`RetryPolicy`].
    pub trial_retries: u64,
    /// Trial indices quarantined after exhausting every retry: their
    /// beam time is on the clock and the fluence ledger, but they
    /// contributed no runs, upsets or error events.
    pub quarantined_trials: Vec<u64>,
}

impl SessionReport {
    /// Total error events (SDCs + crashes) — Table 2 row 6.
    pub fn error_events(&self) -> u64 {
        self.failures.values().sum()
    }

    /// Error events per minute — Table 2 row 7.
    pub fn error_rate(&self) -> RateEstimate {
        RateEstimate::from_count(self.error_events(), self.duration)
    }

    /// Memory upsets per minute — Table 2 row 9.
    pub fn upset_rate(&self) -> RateEstimate {
        RateEstimate::from_count(self.memory_upsets, self.duration)
    }

    /// Count for one failure class.
    pub fn failure_count(&self, class: FailureClass) -> u64 {
        self.failures.get(&class).copied().unwrap_or(0)
    }

    /// The share of each failure class among all error events — one panel
    /// of Figure 8. Returns zeros when no events occurred.
    pub fn failure_shares(&self) -> BTreeMap<FailureClass, f64> {
        let total = self.error_events() as f64;
        FailureClass::ALL
            .into_iter()
            .map(|c| {
                let share = if total > 0.0 {
                    self.failure_count(c) as f64 / total
                } else {
                    0.0
                };
                (c, share)
            })
            .collect()
    }

    /// Years of natural NYC sea-level exposure equivalent to this
    /// session's fluence — Table 2 row 5.
    pub fn nyc_equivalent_years(&self) -> f64 {
        self.fluence
            .natural_equivalent(NYC_SEA_LEVEL_FLUX)
            .as_years()
    }

    /// The memory SER in FIT per Mbit at NYC — Table 2 row 10.
    ///
    /// # Panics
    ///
    /// Panics if `sram_mbit` is not positive.
    pub fn memory_ser_fit_per_mbit(&self, sram_mbit: f64) -> f64 {
        assert!(sram_mbit > 0.0, "memory size must be positive");
        let dcs =
            serscale_types::CrossSection::from_events(self.memory_upsets as f64, self.fluence);
        dcs.fit_at(NYC_SEA_LEVEL_FLUX).per_mbit(sram_mbit).get()
    }

    /// Corrected/uncorrected EDAC rate per minute for one cache level —
    /// a Figure 6/7 bar.
    pub fn level_rate_per_minute(
        &self,
        level: serscale_types::CacheLevel,
        severity: EdacSeverity,
    ) -> f64 {
        let count = self
            .edac_per_level
            .get(&(level, severity))
            .copied()
            .unwrap_or(0);
        count as f64 / self.duration.as_minutes()
    }
}

/// Drives one session to completion.
#[derive(Debug)]
pub struct TestSession {
    runner: BenchmarkRunner,
    limits: SessionLimits,
}

impl TestSession {
    /// Creates a session for a DUT under beam flux with the given limits.
    ///
    /// # Panics
    ///
    /// Panics when the beam is off (`flux == 0`) and no beam-time limit is
    /// set: neither the event rule nor the fluence rule could ever fire,
    /// so the session would spin forever.
    pub fn new(dut: DeviceUnderTest, flux: Flux, limits: SessionLimits) -> Self {
        assert!(
            flux.as_per_cm2_s() > 0.0 || limits.max_duration.is_some(),
            "a beam-off session needs a max_duration to terminate"
        );
        TestSession {
            runner: BenchmarkRunner::new(dut, flux),
            limits,
        }
    }

    /// Runs the session to a stopping rule and reports.
    pub fn run(&mut self, rng: &mut SimRng) -> SessionReport {
        self.run_observed(rng, &mut crate::trace::NoopObserver)
    }

    /// Runs the session on `jobs` worker threads. The report is
    /// bit-identical to `run` with the same `rng` for every `jobs` value
    /// (see the module docs for why).
    ///
    /// # Panics
    ///
    /// Panics if `jobs == 0`.
    pub fn run_parallel(&mut self, rng: &mut SimRng, jobs: usize) -> SessionReport {
        self.run_observed_with(rng, jobs, &mut crate::trace::NoopObserver)
    }

    /// Runs the session, reporting every event through an observer (see
    /// [`crate::trace`]). Observation never perturbs the simulation: the
    /// same seed yields the same report with or without it.
    pub fn run_observed(
        &mut self,
        rng: &mut SimRng,
        observer: &mut dyn crate::trace::SessionObserver,
    ) -> SessionReport {
        self.run_observed_with(rng, 1, observer)
    }

    /// The general entry point: `jobs` workers, every event reported
    /// through `observer`. The merge that drives the observer is
    /// single-threaded and in trial order, so observers need no
    /// synchronization and see the same trace at any `jobs`.
    ///
    /// # Panics
    ///
    /// Panics if `jobs == 0`.
    pub fn run_observed_with(
        &mut self,
        rng: &mut SimRng,
        jobs: usize,
        observer: &mut dyn crate::trace::SessionObserver,
    ) -> SessionReport {
        self.run_planned(rng, ExecutionPlan::with_jobs(jobs), observer)
    }

    /// The crash-safe general entry point: executes under an
    /// [`ExecutionPlan`] — `jobs` workers, retry/quarantine on failing
    /// trials, optional journaling of every absorbed trial, and optional
    /// replay of a journaled history before going live.
    ///
    /// Replayed trials are folded through the exact accumulator the live
    /// path uses (no physics re-run) and every RNG stream re-derives from
    /// the caller's generator, so an interrupted-and-resumed session
    /// produces a report and observer trace bit-identical to an
    /// uninterrupted one at any `jobs` count (wave boundaries restart on
    /// resume, but [`WaveStats`](crate::trace::WaveStats) is engine
    /// telemetry that trace observers ignore).
    ///
    /// # Panics
    ///
    /// Panics if `plan.jobs == 0`, if the journal cannot be synced to
    /// stable storage (crash safety would silently be lost), if the
    /// recovered history is inconsistent with this session's
    /// configuration (wrong trial order, or a journaled stop reason the
    /// replay cannot reproduce), or if `plan.cancel` fires — callers that
    /// cancel must use [`try_run_planned`](Self::try_run_planned).
    pub fn run_planned(
        &mut self,
        rng: &mut SimRng,
        plan: ExecutionPlan<'_>,
        observer: &mut dyn crate::trace::SessionObserver,
    ) -> SessionReport {
        self.try_run_planned(rng, plan, observer)
            .expect("session cancelled; use try_run_planned to observe cancellation")
    }

    /// [`run_planned`](Self::run_planned), but cancellable: when
    /// `plan.cancel` fires, the run stops cleanly at the next wave
    /// boundary and returns [`Err(Cancelled)`](Cancelled).
    ///
    /// The boundary guarantee is what keeps cancellation safe: every
    /// trial absorbed before the boundary has been journaled and fsync'd
    /// (the per-wave sync), no `SessionEnd` record is written, and no
    /// `on_session_end` observer callback fires — so the journal reads
    /// exactly like a crash at a record boundary and resumes
    /// bit-identically through [`crate::journal::start_or_resume`].
    ///
    /// # Errors
    ///
    /// Returns [`Cancelled`] if the token fired before a stopping rule.
    ///
    /// # Panics
    ///
    /// As [`run_planned`](Self::run_planned), minus cancellation.
    pub fn try_run_planned(
        &mut self,
        rng: &mut SimRng,
        mut plan: ExecutionPlan<'_>,
        observer: &mut dyn crate::trace::SessionObserver,
    ) -> Result<SessionReport, Cancelled> {
        assert!(plan.jobs > 0, "a session needs at least one worker");
        let flux = self.runner.flux();
        let point = self.runner.dut().operating_point();
        observer.on_session_start(SimInstant::EPOCH, point);
        // One draw keeps the caller's generator advancing (two back-to-back
        // sessions off one rng stay distinct); every trial stream derives
        // from this root alone, independent of scheduling.
        let session_rng = SimRng::seed_from(rng.next_seed());

        if plan.recovered.is_none() {
            if let Some(journal) = plan.journal.as_deref_mut() {
                journal.append(&Record::SessionStart {
                    session: plan.session_index,
                    point,
                });
                journal.sync().expect("run journal sync failed");
            }
        }

        let mut acc = Accumulator::new(flux, self.limits);
        let mut next_trial = 0u64;
        let mut replayed_stop = None;

        // Fast-forward: fold the journaled trials through the same
        // accumulator and observer the live path drives. No physics
        // re-runs; the stream is exactly what the interrupted run saw.
        if let Some(recovered) = plan.recovered {
            for execution in &recovered.trials {
                assert_eq!(execution.trial, next_trial, "journal trials out of order");
                let run_only = self.runner.run_duration(execution.outcome.benchmark);
                let reason = acc.absorb_execution(execution.clone(), run_only, observer);
                next_trial += 1;
                if let Some(reason) = reason {
                    assert_eq!(
                        next_trial,
                        recovered.trials.len() as u64,
                        "journal holds trials past the stopping rule"
                    );
                    if let Some(journaled) = recovered.ended {
                        assert_eq!(
                            journaled, reason,
                            "journaled stop reason disagrees with replay"
                        );
                    }
                    replayed_stop = Some(reason);
                    break;
                }
            }
            if replayed_stop.is_none() {
                assert_eq!(
                    recovered.ended, None,
                    "journal says the session ended but replay finds no stopping rule"
                );
            }
        }

        let stop_reason = match replayed_stop {
            Some(reason) => reason,
            None => loop {
                // Wave boundary: the only place a cancel can land. The
                // previous wave's trials are journaled and synced, so
                // bailing here leaves the journal resumable.
                if plan.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                    return Err(Cancelled);
                }
                let wave_clock = std::time::Instant::now();
                let wave = self.wave_size(&acc, plan.jobs, next_trial);
                let trials: Vec<u64> = (next_trial..next_trial + wave as u64).collect();
                let retry = plan.retry;
                // One effective worker means no pool: run on the calling
                // thread with the session's persistent runner, whose scratch
                // and envelope caches then survive across waves. The pool
                // branch would reach the same trials (determinism contract),
                // just slower.
                let inline = plan.jobs == 1 || crate::parallel::effective_workers(plan.jobs) == 1;
                let (executions, pool): (Vec<TrialExecution>, _) = if inline {
                    let runner = &mut self.runner;
                    let shards = trials.len() as u64;
                    let executions: Vec<TrialExecution> = trials
                        .into_iter()
                        .map(|t| run_trial_robust(runner, &session_rng, t, retry))
                        .collect();
                    let wall = u64::try_from(wave_clock.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    (
                        executions,
                        crate::parallel::PoolProfile::inline(wall, shards),
                    )
                } else {
                    let dut = self.runner.dut().clone();
                    let root = &session_rng;
                    crate::parallel::par_map_with_profile(
                        plan.jobs,
                        trials,
                        move || BenchmarkRunner::new(dut.clone(), flux),
                        |runner, trial| run_trial_robust(runner, root, trial, retry),
                    )
                };
                // Canonical merge: trial order, stop rules exact; outcomes
                // past the stopping trial are speculation and fall on the
                // floor. Absorbed trials are journaled (buffered) and the
                // journal is fsync'd once per wave below.
                let mut absorbed = 0usize;
                let mut wave_retries = 0u64;
                let mut wave_quarantined = 0u64;
                let mut stopped = None;
                for execution in executions {
                    let run_only = self.runner.run_duration(execution.outcome.benchmark);
                    absorbed += 1;
                    wave_retries += u64::from(execution.retries);
                    wave_quarantined += u64::from(execution.quarantined);
                    if let Some(journal) = plan.journal.as_deref_mut() {
                        journal.append(&Record::Trial {
                            session: plan.session_index,
                            execution: execution.clone(),
                        });
                    }
                    if let Some(reason) = acc.absorb_execution(execution, run_only, observer) {
                        stopped = Some(reason);
                        break;
                    }
                }
                if let Some(journal) = plan.journal.as_deref_mut() {
                    journal.sync().expect("run journal sync failed");
                }
                // Engine telemetry only — the host clock has no business in
                // the simulation, and trace observers ignore this callback.
                observer.on_wave(crate::trace::WaveStats {
                    first_trial: next_trial,
                    planned: wave,
                    absorbed,
                    host_nanos: u64::try_from(wave_clock.elapsed().as_nanos()).unwrap_or(u64::MAX),
                    retries: wave_retries,
                    quarantined: wave_quarantined,
                    pool,
                });
                if let Some(reason) = stopped {
                    break reason;
                }
                next_trial += wave as u64;
            },
        };

        if let Some(journal) = plan.journal.as_deref_mut() {
            // A session the journal already closed needs no second end
            // record; everything else (fresh, or recovered mid-flight)
            // gets one now.
            if plan.recovered.is_none_or(|r| r.ended.is_none()) {
                journal.append(&Record::SessionEnd {
                    session: plan.session_index,
                    reason: stop_reason,
                });
            }
            journal.sync().expect("run journal sync failed");
        }

        observer.on_session_end(acc.clock, stop_reason);
        Ok(acc.into_report(point, stop_reason))
    }

    /// Runs the session through the *naive reference executor*: one trial
    /// at a time, absorbed immediately, with no speculative waves and no
    /// worker pool — the textbook transcription of the execution model in
    /// the module docs.
    ///
    /// This path exists for differential verification (see the
    /// `serscale-verify` crate): the wave engine's speculation, sharding
    /// and canonical merge must be observationally equivalent to this
    /// loop, bit for bit, at any `jobs` count. It is deliberately kept
    /// free of the throughput machinery at *both* layers: no speculative
    /// waves or worker pool here ([`Self::run`] goes through
    /// [`Self::run_observed_with`], which speculates in waves even at
    /// `jobs == 1`), and each trial's physics runs through
    /// [`BenchmarkRunner::run_once_reference`] — the per-event,
    /// envelope-rebuilt, codec-decoded twin of the batched hot path.
    pub fn run_reference(&mut self, rng: &mut SimRng) -> SessionReport {
        self.run_reference_observed(rng, &mut crate::trace::NoopObserver)
    }

    /// [`Self::run_reference`] with every event reported through an
    /// observer, exactly as the wave engine would report it.
    pub fn run_reference_observed(
        &mut self,
        rng: &mut SimRng,
        observer: &mut dyn crate::trace::SessionObserver,
    ) -> SessionReport {
        let flux = self.runner.flux();
        let point = self.runner.dut().operating_point();
        observer.on_session_start(SimInstant::EPOCH, point);
        // Identical seed derivation to the wave engine: one draw from the
        // caller's generator roots every trial stream.
        let session_rng = SimRng::seed_from(rng.next_seed());

        let mut acc = Accumulator::new(flux, self.limits);
        let mut trial = 0u64;
        let stop_reason = loop {
            // The canonical trial recipe, transcribed: benchmark t % 6 on
            // the counter-derived stream for t — but through the naive
            // per-event physics instead of the batched hot path.
            let benchmark = Benchmark::ALL[(trial % Benchmark::ALL.len() as u64) as usize];
            let mut trial_rng = session_rng.stream("trial", &[trial]);
            let outcome =
                self.runner
                    .run_once_reference(&mut trial_rng, benchmark, SimInstant::EPOCH);
            let execution = TrialExecution {
                trial,
                outcome,
                retries: 0,
                quarantined: false,
            };
            let run_only = self.runner.run_duration(execution.outcome.benchmark);
            if let Some(reason) = acc.absorb_execution(execution, run_only, observer) {
                break reason;
            }
            trial += 1;
        };

        observer.on_session_end(acc.clock, stop_reason);
        acc.into_report(point, stop_reason)
    }

    /// How many trials to launch speculatively before the next merge.
    ///
    /// Purely a throughput knob: any positive value yields the same
    /// report. Estimates the trials left from whichever stopping rule will
    /// fire first, so overshoot past the stopping trial stays small.
    fn wave_size(&self, acc: &Accumulator, jobs: usize, trials_done: u64) -> usize {
        const MAX_WAVE: usize = 4096;
        let min_wave = 32.max(jobs * 4).min(MAX_WAVE);

        let mean_trial_secs = Benchmark::ALL
            .iter()
            .map(|b| self.runner.run_duration(*b).as_secs())
            .sum::<f64>()
            / Benchmark::ALL.len() as f64;

        let mut remaining_secs = f64::INFINITY;
        if let Some(max) = self.limits.max_duration {
            remaining_secs = remaining_secs.min((max - acc.ledger.total_duration()).as_secs());
        }
        let flux = acc.flux.as_per_cm2_s();
        if flux > 0.0 {
            let fluence_left =
                self.limits.max_fluence.as_per_cm2() - acc.ledger.total_fluence().as_per_cm2();
            remaining_secs = remaining_secs.min((fluence_left / flux).max(0.0));
        }
        let events = acc.error_events();
        if self.limits.max_error_events != u64::MAX && events > 0 {
            let elapsed = acc.ledger.total_duration().as_secs();
            if elapsed > 0.0 {
                let need = self.limits.max_error_events.saturating_sub(events) as f64;
                // 20% margin: underestimating the event rate just costs one
                // more (cheap) wave, overestimating wastes speculation.
                remaining_secs =
                    remaining_secs.min(need * elapsed / events as f64 * 1.2 + mean_trial_secs);
            }
        }

        let estimate = if remaining_secs.is_finite() {
            // Clamp in f64: a far-off fluence rule can put the estimate
            // beyond usize range.
            ((remaining_secs / mean_trial_secs).ceil() + 1.0).min(MAX_WAVE as f64) as usize
        } else {
            // No rule is predictable yet (e.g. an event-limited session
            // before its first event): grow geometrically.
            trials_done.min(MAX_WAVE as u64) as usize
        };
        estimate.clamp(min_wave, MAX_WAVE)
    }
}

/// Runs trial `t` of a session under a [`RetryPolicy`]: benchmark
/// `ALL[t % 6]` on the counter-derived stream for `t`, timestamped from
/// the epoch (the merge re-bases timestamps onto the session clock).
///
/// Attempt 0 runs on the canonical stream `("trial", [t])` — with no
/// failures this is bit-identical to the plain path. A panicking or
/// timed-out attempt `a` is retried on `("trial", [t, a + 1])` after an
/// exponential host-time backoff; when every attempt fails the trial is
/// quarantined behind a synthetic placeholder outcome (correct verdict,
/// no events, the benchmark's nominal beam time) so one poisoned trial
/// cannot take down the wave.
fn run_trial_robust(
    runner: &mut BenchmarkRunner,
    session_rng: &SimRng,
    trial: u64,
    policy: RetryPolicy,
) -> TrialExecution {
    let benchmark = Benchmark::ALL[(trial % Benchmark::ALL.len() as u64) as usize];
    for attempt in 0..=policy.max_retries {
        let mut rng = if attempt == 0 {
            session_rng.stream("trial", &[trial])
        } else {
            session_rng.stream("trial", &[trial, u64::from(attempt)])
        };
        let result = match policy.timeout {
            None => crate::parallel::call_caught(|| {
                runner.run_once(&mut rng, benchmark, SimInstant::EPOCH)
            }),
            Some(limit) => {
                // The watchdogged attempt runs on a helper thread with its
                // own runner so a hung attempt can be abandoned.
                let dut = runner.dut().clone();
                let flux = runner.flux();
                crate::parallel::call_with_deadline(limit, move || {
                    let mut fresh = BenchmarkRunner::new(dut, flux);
                    fresh.run_once(&mut rng, benchmark, SimInstant::EPOCH)
                })
            }
        };
        match result {
            Ok(outcome) => {
                return TrialExecution {
                    trial,
                    outcome,
                    retries: attempt,
                    quarantined: false,
                }
            }
            Err(_) if attempt < policy.max_retries => {
                std::thread::sleep(crate::parallel::backoff_delay(policy.backoff, attempt));
            }
            Err(_) => {}
        }
    }
    let wall_time = runner.run_duration(benchmark);
    TrialExecution {
        trial,
        outcome: RunOutcome {
            benchmark,
            verdict: RunVerdict::Correct,
            edac: Vec::new(),
            wall_time,
            sram_strikes: 0,
        },
        retries: policy.max_retries,
        quarantined: true,
    }
}

/// The shard-merge state: everything the sequential loop used to carry,
/// folded over outcomes in canonical (trial) order.
struct Accumulator {
    flux: Flux,
    limits: SessionLimits,
    ledger: FluenceLedger,
    clock: SimInstant,
    failures: BTreeMap<FailureClass, u64>,
    per_benchmark: BTreeMap<Benchmark, BenchmarkStats>,
    edac_per_level: LevelCounts,
    memory_upsets: u64,
    sdc_with_notification: u64,
    runs: u64,
    trial_retries: u64,
    quarantined: Vec<u64>,
}

impl Accumulator {
    fn new(flux: Flux, limits: SessionLimits) -> Self {
        Accumulator {
            flux,
            limits,
            ledger: FluenceLedger::new(),
            clock: SimInstant::EPOCH,
            failures: BTreeMap::new(),
            per_benchmark: BTreeMap::new(),
            edac_per_level: LevelCounts::new(),
            memory_upsets: 0,
            sdc_with_notification: 0,
            runs: 0,
            trial_retries: 0,
            quarantined: Vec::new(),
        }
    }

    fn error_events(&self) -> u64 {
        self.failures.values().sum()
    }

    /// Folds one [`TrialExecution`] in — the unit the journal records and
    /// the replay path re-absorbs. A quarantined execution advances the
    /// clock and the fluence ledger (beam time passed even though the
    /// trial produced no verdict) and is surfaced via
    /// [`SessionReport::quarantined_trials`], but drives no observer
    /// callbacks and contributes no runs, upsets or events.
    fn absorb_execution(
        &mut self,
        execution: TrialExecution,
        run_only: SimDuration,
        observer: &mut dyn crate::trace::SessionObserver,
    ) -> Option<StopReason> {
        self.trial_retries += u64::from(execution.retries);
        if execution.quarantined {
            self.clock += execution.outcome.wall_time;
            self.ledger.record(self.flux, execution.outcome.wall_time);
            self.quarantined.push(execution.trial);
            return self.check_stop_rules();
        }
        self.absorb(execution.outcome, run_only, observer)
    }

    /// Folds one trial outcome in, drives the observer, and evaluates the
    /// stopping rules — the exact body of the old sequential loop.
    fn absorb(
        &mut self,
        outcome: crate::runner::RunOutcome,
        run_only: SimDuration,
        observer: &mut dyn crate::trace::SessionObserver,
    ) -> Option<StopReason> {
        let benchmark = outcome.benchmark;
        let run_start = self.clock;
        self.clock += outcome.wall_time;
        self.ledger.record(self.flux, outcome.wall_time);
        self.runs += 1;

        observer.on_run(run_start, benchmark, outcome.verdict);
        for record in &outcome.edac {
            // Trials run at the epoch; re-base onto the session clock.
            let mut rebased = *record;
            rebased.time = run_start + record.time.elapsed_since(SimInstant::EPOCH);
            observer.on_edac(rebased);
        }
        if outcome.wall_time > run_only {
            observer.on_recovery(run_start + run_only, outcome.wall_time - run_only);
        }

        let stats = self.per_benchmark.entry(benchmark).or_default();
        stats.runs += 1;
        stats.memory_upsets += outcome.edac.len() as u64;
        stats.execution_time += run_only;

        self.memory_upsets += outcome.edac.len() as u64;
        for record in &outcome.edac {
            *self
                .edac_per_level
                .entry((record.cache_level(), record.severity))
                .or_insert(0) += 1;
        }
        if let Some(class) = outcome.verdict.failure_class() {
            *self.failures.entry(class).or_insert(0) += 1;
            if class == FailureClass::Sdc {
                stats.sdcs += 1;
                if outcome.verdict
                    == (RunVerdict::Sdc {
                        with_hw_notification: true,
                    })
                {
                    self.sdc_with_notification += 1;
                }
            }
        }

        self.check_stop_rules()
    }

    /// Evaluates the stopping rules in their canonical order.
    fn check_stop_rules(&self) -> Option<StopReason> {
        if self.error_events() >= self.limits.max_error_events {
            return Some(StopReason::ErrorEvents);
        }
        if self.ledger.total_fluence() >= self.limits.max_fluence {
            return Some(StopReason::Fluence);
        }
        if let Some(max) = self.limits.max_duration {
            if self.ledger.total_duration() >= max {
                return Some(StopReason::BeamTime);
            }
        }
        None
    }

    fn into_report(self, point: OperatingPoint, stop_reason: StopReason) -> SessionReport {
        SessionReport {
            operating_point: point,
            stop_reason,
            duration: self.ledger.total_duration(),
            fluence: self.ledger.total_fluence(),
            runs: self.runs,
            failures: self.failures,
            sdc_with_notification: self.sdc_with_notification,
            memory_upsets: self.memory_upsets,
            edac_per_level: self.edac_per_level,
            per_benchmark: self.per_benchmark,
            trial_retries: self.trial_retries,
            quarantined_trials: self.quarantined,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serscale_types::Millivolts;

    const WORKING_FLUX: f64 = 1.5e6;

    fn dut(point: OperatingPoint) -> DeviceUnderTest {
        DeviceUnderTest::xgene2(point, DeviceUnderTest::paper_vmin(point.frequency))
    }

    fn short_session(point: OperatingPoint, minutes: f64, seed: u64) -> SessionReport {
        let mut session = TestSession::new(
            dut(point),
            Flux::per_cm2_s(WORKING_FLUX),
            SessionLimits::time_boxed(SimDuration::from_minutes(minutes)),
        );
        let mut rng = SimRng::seed_from(seed);
        session.run(&mut rng)
    }

    #[test]
    fn time_boxed_session_stops_on_beam_time() {
        let report = short_session(OperatingPoint::nominal(), 20.0, 1);
        assert_eq!(report.stop_reason, StopReason::BeamTime);
        assert!(report.duration.as_minutes() >= 20.0);
        // One extra run can overshoot, but only by a run + recovery.
        assert!(report.duration.as_minutes() < 23.0);
        assert!(report.runs > 200);
    }

    #[test]
    fn event_limit_stops_session() {
        let mut session = TestSession::new(
            dut(OperatingPoint::vmin_2400()),
            Flux::per_cm2_s(WORKING_FLUX),
            SessionLimits {
                max_error_events: 5,
                max_fluence: Fluence::per_cm2(1e30),
                max_duration: None,
            },
        );
        let mut rng = SimRng::seed_from(2);
        let report = session.run(&mut rng);
        assert_eq!(report.stop_reason, StopReason::ErrorEvents);
        assert_eq!(report.error_events(), 5);
    }

    #[test]
    fn fluence_limit_stops_session() {
        let mut session = TestSession::new(
            dut(OperatingPoint::nominal()),
            Flux::per_cm2_s(WORKING_FLUX),
            SessionLimits {
                max_error_events: u64::MAX,
                max_fluence: Fluence::per_cm2(1.0e9),
                max_duration: None,
            },
        );
        let mut rng = SimRng::seed_from(3);
        let report = session.run(&mut rng);
        assert_eq!(report.stop_reason, StopReason::Fluence);
        assert!(report.fluence >= Fluence::per_cm2(1.0e9));
    }

    #[test]
    fn upset_rate_tracks_table2_at_nominal() {
        // Multi-seed, CI-bound: pool upset counts over independent seeds
        // and accept iff the pooled count is Poisson-consistent with the
        // Table 2 rate (1.01/min) within a 5% calibration tolerance —
        // robust to the seed, sharp against a rate regression.
        let mut upsets = 0u64;
        let mut minutes = 0.0;
        for seed in 40..45 {
            let report = short_session(OperatingPoint::nominal(), 120.0, seed);
            upsets += report.memory_upsets;
            minutes += report.duration.as_minutes();
        }
        let expected = 1.01 * minutes;
        assert!(
            serscale_stats::count_consistent_with_tolerance(upsets, expected, 0.99, 0.05),
            "{upsets} pooled upsets in {minutes:.0} min vs expected {expected:.0}"
        );
    }

    #[test]
    fn fluence_accounting_consistent() {
        let report = short_session(OperatingPoint::nominal(), 30.0, 5);
        let expected = WORKING_FLUX * report.duration.as_secs();
        assert!((report.fluence.as_per_cm2() - expected).abs() / expected < 1e-9);
        assert!(report.nyc_equivalent_years() > 0.0);
    }

    #[test]
    fn per_benchmark_stats_cover_all_six() {
        let report = short_session(OperatingPoint::nominal(), 10.0, 6);
        assert_eq!(report.per_benchmark.len(), 6);
        for (b, stats) in &report.per_benchmark {
            assert!(stats.runs > 0, "{b}");
            assert!(!stats.execution_time.is_zero(), "{b}");
        }
    }

    #[test]
    fn session_is_deterministic() {
        let a = short_session(OperatingPoint::safe(), 15.0, 7);
        let b = short_session(OperatingPoint::safe(), 15.0, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn reference_executor_matches_wave_engine() {
        let make = || {
            TestSession::new(
                dut(OperatingPoint::vmin_2400()),
                Flux::per_cm2_s(WORKING_FLUX),
                SessionLimits::time_boxed(SimDuration::from_minutes(30.0)),
            )
        };
        let wave = make().run(&mut SimRng::seed_from(12));
        let reference = make().run_reference(&mut SimRng::seed_from(12));
        assert_eq!(wave, reference);
    }

    #[test]
    fn reference_executor_matches_on_event_limited_sessions() {
        // The event rule is where wave speculation overshoots; the merge
        // must discard the overshoot and land exactly where the naive
        // loop does.
        let make = || {
            TestSession::new(
                dut(OperatingPoint::vmin_2400()),
                Flux::per_cm2_s(WORKING_FLUX),
                SessionLimits {
                    max_error_events: 7,
                    max_fluence: Fluence::per_cm2(1e30),
                    max_duration: None,
                },
            )
        };
        let wave = make().run_parallel(&mut SimRng::seed_from(13), 4);
        let reference = make().run_reference(&mut SimRng::seed_from(13));
        assert_eq!(wave, reference);
        assert_eq!(reference.stop_reason, StopReason::ErrorEvents);
    }

    #[test]
    fn failure_shares_sum_to_one_when_events_exist() {
        // Shares summing to one is exact per report; the SDC dominance
        // claim (Fig. 8 rightmost panel: 92%) is statistical, so pool
        // events over seeds and put a Wilson lower bound on the share.
        let mut sdcs = 0u64;
        let mut events = 0u64;
        for seed in 80..83 {
            let report = short_session(OperatingPoint::vmin_2400(), 400.0, seed);
            let shares = report.failure_shares();
            let total: f64 = shares.values().sum();
            assert!((total - 1.0).abs() < 1e-9);
            sdcs += report.failure_count(FailureClass::Sdc);
            events += report.error_events();
        }
        assert!(events > 50, "events = {events}");
        let (lo, _) = serscale_stats::ci::wilson_ci(sdcs, events, 0.99);
        assert!(
            lo > 0.6,
            "SDC share 99% lower bound {lo:.3} ({sdcs}/{events})"
        );
    }

    #[test]
    fn memory_ser_in_table2_band() {
        // Table 2 row 10 reports 2.08–2.45 FIT/Mbit over the four
        // sessions; the modelled chip has ~79.7 Mbit of SRAM and its
        // nominal session sits at the low end, so the claim is the loose
        // 1.5–3.0 band. SER is linear in the upset count at fixed
        // fluence, so the band check becomes a pooled Poisson consistency
        // test against the band's center with its half-width as the
        // tolerance.
        let mbit = 79.7;
        let center = 0.5 * (1.5 + 3.0);
        let mut upsets = 0u64;
        let mut expected = 0.0;
        for seed in 90..95 {
            let report = short_session(OperatingPoint::nominal(), 60.0, seed);
            assert!(report.memory_upsets > 0, "seed {seed} saw no upsets");
            // FIT per observed count at this session's fluence.
            let per_count = report.memory_ser_fit_per_mbit(mbit) / report.memory_upsets as f64;
            upsets += report.memory_upsets;
            expected += center / per_count;
        }
        assert!(
            serscale_stats::count_consistent_with_tolerance(upsets, expected, 0.99, 1.0 / 3.0),
            "{upsets} pooled upsets vs {expected:.0} expected for {center:.2} FIT/Mbit"
        );
    }

    #[test]
    #[should_panic(expected = "beam-off session")]
    fn beam_off_without_time_limit_is_rejected() {
        let _ = TestSession::new(
            dut(OperatingPoint::nominal()),
            Flux::per_cm2_s(0.0),
            SessionLimits::standard(),
        );
    }

    #[test]
    fn beam_off_time_boxed_session_sees_nothing() {
        let mut session = TestSession::new(
            dut(OperatingPoint::nominal()),
            Flux::per_cm2_s(0.0),
            SessionLimits::time_boxed(SimDuration::from_minutes(5.0)),
        );
        let report = session.run(&mut SimRng::seed_from(1));
        assert_eq!(report.memory_upsets, 0);
        assert_eq!(report.error_events(), 0);
        assert_eq!(report.fluence, Fluence::ZERO);
    }

    #[test]
    fn soc_vmin_lookup_unused_at_900mhz_left_intact() {
        // Smoke: a 900 MHz session runs and the L3 keeps its SoC-domain
        // rate (checked in detail in dut tests).
        let report = short_session(OperatingPoint::vmin_900(), 20.0, 10);
        assert!(report.memory_upsets > 0);
        assert_eq!(report.operating_point.pmd, Millivolts::new(790));
    }

    /// Builds a synthetic trial outcome: a scripted verdict plus `ce`
    /// corrected and `ue` uncorrected EDAC records.
    fn scripted(verdict: RunVerdict, ce: u64, ue: u64) -> crate::runner::RunOutcome {
        use serscale_soc::edac::EdacRecord;
        use serscale_types::ArrayKind;
        let mut edac = Vec::new();
        for _ in 0..ce {
            edac.push(EdacRecord {
                time: SimInstant::EPOCH,
                array: ArrayKind::L2Unified,
                severity: EdacSeverity::Corrected,
            });
        }
        for _ in 0..ue {
            edac.push(EdacRecord {
                time: SimInstant::EPOCH,
                array: ArrayKind::L3Shared,
                severity: EdacSeverity::Uncorrected,
            });
        }
        crate::runner::RunOutcome {
            benchmark: Benchmark::Cg,
            verdict,
            edac,
            wall_time: SimDuration::from_secs(3.0),
            sram_strikes: ce + ue,
        }
    }

    /// Table-driven classification edge cases at the session-tally level:
    /// scripted verdict sequences are folded through the accumulator and
    /// the report's failure bookkeeping is checked exactly.
    #[test]
    fn classification_edge_case_table() {
        struct Case {
            name: &'static str,
            script: Vec<(RunVerdict, u64, u64)>,
            sdc: u64,
            app: u64,
            sys: u64,
            memory_upsets: u64,
            sdc_with_notification: u64,
        }
        let sdc = RunVerdict::Sdc {
            with_hw_notification: false,
        };
        let deceptive_sdc = RunVerdict::Sdc {
            with_hw_notification: true,
        };
        let cases = vec![
            Case {
                // The paper's worst beam minute: the same session takes an
                // SDC, a system crash and an application crash — each run
                // keeps its own verdict and all three classes must tally.
                name: "simultaneous-sdc-and-crashes",
                script: vec![
                    (sdc, 1, 0),
                    (RunVerdict::SysCrash, 0, 1),
                    (RunVerdict::Correct, 0, 0),
                    (RunVerdict::AppCrash, 0, 1),
                ],
                sdc: 1,
                app: 1,
                sys: 1,
                memory_upsets: 3,
                sdc_with_notification: 0,
            },
            Case {
                // A quiet session: no upsets, no failures, and the report
                // must come out all-zero without dividing by anything.
                name: "zero-upset-session",
                script: vec![
                    (RunVerdict::Correct, 0, 0),
                    (RunVerdict::Correct, 0, 0),
                    (RunVerdict::Correct, 0, 0),
                ],
                sdc: 0,
                app: 0,
                sys: 0,
                memory_upsets: 0,
                sdc_with_notification: 0,
            },
            Case {
                // EDAC-masked events: the hardware logs plenty of corrected
                // (and even uncorrected-but-architecturally-masked) errors,
                // yet every run completes correctly — upsets are counted,
                // error events stay zero.
                name: "edac-masked-events",
                script: vec![
                    (RunVerdict::Correct, 4, 0),
                    (RunVerdict::Correct, 2, 1),
                    (RunVerdict::Correct, 0, 0),
                ],
                sdc: 0,
                app: 0,
                sys: 0,
                memory_upsets: 7,
                sdc_with_notification: 0,
            },
            Case {
                // Figure 12's deceptive case: only the notified flavour
                // increments sdc_with_notification, both flavours count as
                // SDC failures.
                name: "deceptive-sdc-flavours",
                script: vec![(deceptive_sdc, 1, 0), (sdc, 0, 0)],
                sdc: 2,
                app: 0,
                sys: 0,
                memory_upsets: 1,
                sdc_with_notification: 1,
            },
        ];

        for case in cases {
            let flux = Flux::per_cm2_s(WORKING_FLUX);
            let mut acc = Accumulator::new(flux, SessionLimits::standard());
            let mut observer = crate::trace::NoopObserver;
            for &(verdict, ce, ue) in &case.script {
                let outcome = scripted(verdict, ce, ue);
                let run_only = outcome.wall_time;
                assert_eq!(
                    acc.absorb(outcome, run_only, &mut observer),
                    None,
                    "{}: stopped early",
                    case.name
                );
            }
            let runs = case.script.len() as u64;
            let report = acc.into_report(OperatingPoint::nominal(), StopReason::BeamTime);
            let count = |class| report.failures.get(&class).copied().unwrap_or(0);
            assert_eq!(count(FailureClass::Sdc), case.sdc, "{}", case.name);
            assert_eq!(count(FailureClass::AppCrash), case.app, "{}", case.name);
            assert_eq!(count(FailureClass::SysCrash), case.sys, "{}", case.name);
            assert_eq!(
                report.error_events(),
                case.sdc + case.app + case.sys,
                "{}",
                case.name
            );
            assert_eq!(report.memory_upsets, case.memory_upsets, "{}", case.name);
            assert_eq!(
                report.sdc_with_notification, case.sdc_with_notification,
                "{}",
                case.name
            );
            assert_eq!(report.runs, runs, "{}", case.name);
            let stats = report.per_benchmark[&Benchmark::Cg];
            assert_eq!(stats.runs, runs, "{}", case.name);
            assert!(
                stats.upsets_per_minute().is_finite(),
                "{}: rate must stay finite",
                case.name
            );
        }
    }

    /// The §3.5 event-limit rule counts SDCs and crashes together: a
    /// session whose events arrive as a mix trips the limit exactly on the
    /// run that reaches it, whatever the mix.
    #[test]
    fn event_limit_counts_all_failure_classes_together() {
        let sdc = RunVerdict::Sdc {
            with_hw_notification: false,
        };
        let limits = SessionLimits {
            max_error_events: 3,
            max_fluence: Fluence::per_cm2(1e30),
            max_duration: None,
        };
        let mut acc = Accumulator::new(Flux::per_cm2_s(WORKING_FLUX), limits);
        let mut observer = crate::trace::NoopObserver;
        let script = [
            (sdc, None),
            (RunVerdict::Correct, None),
            (RunVerdict::AppCrash, None),
            (RunVerdict::Correct, None),
            (RunVerdict::SysCrash, Some(StopReason::ErrorEvents)),
        ];
        for (i, &(verdict, expect)) in script.iter().enumerate() {
            let outcome = scripted(verdict, 0, 0);
            let run_only = outcome.wall_time;
            assert_eq!(
                acc.absorb(outcome, run_only, &mut observer),
                expect,
                "run {i}"
            );
        }
    }

    /// A zero per-attempt budget fails every attempt without launching
    /// it, so every trial exhausts its retries and is quarantined: the
    /// session still terminates on beam time (placeholders keep the
    /// clock honest), tallies nothing, surfaces every index — and stays
    /// bit-identical across `jobs` (placeholders carry no randomness).
    #[test]
    fn zero_timeout_quarantines_every_trial_deterministically() {
        let run = |jobs: usize| {
            let mut session = TestSession::new(
                dut(OperatingPoint::nominal()),
                Flux::per_cm2_s(WORKING_FLUX),
                SessionLimits::time_boxed(SimDuration::from_minutes(5.0)),
            );
            let mut rng = SimRng::seed_from(31);
            let plan = ExecutionPlan {
                jobs,
                retry: RetryPolicy {
                    max_retries: 1,
                    backoff: std::time::Duration::ZERO,
                    timeout: Some(std::time::Duration::ZERO),
                },
                journal: None,
                recovered: None,
                session_index: 0,
                cancel: None,
            };
            session.run_planned(&mut rng, plan, &mut crate::trace::NoopObserver)
        };
        let report = run(1);
        assert_eq!(report.stop_reason, StopReason::BeamTime);
        assert_eq!(report.runs, 0, "every trial quarantined");
        assert_eq!(report.memory_upsets, 0);
        assert_eq!(report.error_events(), 0);
        let n = report.quarantined_trials.len() as u64;
        assert!(n > 0);
        assert_eq!(report.quarantined_trials, (0..n).collect::<Vec<_>>());
        assert_eq!(report.trial_retries, n, "one retry per quarantined trial");
        assert_eq!(run(4), report, "quarantine path must stay deterministic");
    }

    /// The zero-upset short-circuit in the batched runner must be
    /// invisible to everything downstream: a trial whose Poisson count
    /// comes up zero still gets its `on_run` callback, its journal row
    /// and its report bookkeeping, identical to the naive per-event
    /// executor. A quiet-beam session (≈every trial short-circuits) is
    /// run through the wave engine with a journal and a [`Logbook`] and
    /// diffed against the reference executor.
    ///
    /// [`Logbook`]: crate::trace::Logbook
    #[test]
    fn zero_upset_fast_path_reports_and_journals_identically() {
        use crate::journal::start_or_resume;
        // Flux low enough that essentially every trial draws zero events
        // (the short-circuit path) while the session still spans hundreds
        // of trials.
        let quiet_flux = Flux::per_cm2_s(WORKING_FLUX * 1e-3);
        let limits = SessionLimits::time_boxed(SimDuration::from_minutes(10.0));
        let make = || TestSession::new(dut(OperatingPoint::nominal()), quiet_flux, limits);

        let mut reference_log = crate::trace::Logbook::new();
        let reference =
            make().run_reference_observed(&mut SimRng::seed_from(23), &mut reference_log);

        let dir = std::env::temp_dir().join(format!(
            "serscale-zero-upset-journal-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let config = crate::campaign::CampaignConfig::paper_scaled(0.01);
        let (mut journal, recovered) = start_or_resume(&dir, &config).unwrap();
        assert!(recovered.is_none());
        let mut wave_log = crate::trace::Logbook::new();
        let report = make().run_planned(
            &mut SimRng::seed_from(23),
            ExecutionPlan {
                jobs: 8,
                retry: RetryPolicy::standard(),
                journal: Some(&mut journal),
                recovered: None,
                session_index: 0,
                cancel: None,
            },
            &mut wave_log,
        );
        drop(journal);

        assert_eq!(report, reference);
        assert_eq!(wave_log, reference_log);
        // The short-circuit really was exercised: plenty of trials, almost
        // none of them with an upset.
        assert!(report.runs > 100, "runs = {}", report.runs);
        assert!(
            report.memory_upsets < report.runs / 10,
            "{} upsets in {} runs — beam not quiet enough to exercise the fast path",
            report.memory_upsets,
            report.runs
        );
        // Every trial has its Run event in the trace…
        let run_events = wave_log
            .events()
            .iter()
            .filter(|e| matches!(e, crate::trace::LogEvent::Run { .. }))
            .count() as u64;
        assert_eq!(run_events, report.runs);
        // …and its row in the journal, in trial order, none quarantined.
        let (_, recovered) = start_or_resume(&dir, &config).unwrap();
        let recovered = recovered.unwrap();
        let journaled = recovered.session(0).expect("session 0 journaled");
        assert_eq!(journaled.trials.len() as u64, report.runs);
        for (i, t) in journaled.trials.iter().enumerate() {
            assert_eq!(t.trial, i as u64, "journal rows out of order");
            assert!(!t.quarantined);
        }
        assert_eq!(journaled.ended, Some(StopReason::BeamTime));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The robust path at the default policy is bit-identical to the
    /// engine's historical behavior: attempt 0 uses the unchanged
    /// canonical trial stream.
    #[test]
    fn robust_path_matches_plain_run_when_nothing_fails() {
        let make = || {
            TestSession::new(
                dut(OperatingPoint::vmin_2400()),
                Flux::per_cm2_s(WORKING_FLUX),
                SessionLimits::time_boxed(SimDuration::from_minutes(20.0)),
            )
        };
        let plain = make().run(&mut SimRng::seed_from(17));
        let mut planned = make();
        let report = planned.run_planned(
            &mut SimRng::seed_from(17),
            ExecutionPlan {
                retry: RetryPolicy::with_timeout(std::time::Duration::from_secs(30)),
                ..ExecutionPlan::with_jobs(2)
            },
            &mut crate::trace::NoopObserver,
        );
        assert_eq!(report, plain);
        assert_eq!(report.trial_retries, 0);
        assert!(report.quarantined_trials.is_empty());
    }
}
