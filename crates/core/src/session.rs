//! A beam test session: one voltage setting, benchmarks cycling under
//! beam until the stopping rules fire — one column of Table 2.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use serscale_beam::FluenceLedger;
use serscale_soc::edac::{EdacSeverity, LevelCounts};
use serscale_soc::platform::OperatingPoint;
use serscale_stats::{RateEstimate, SimRng};
use serscale_types::{
    Fluence, Flux, SimDuration, SimInstant, NYC_SEA_LEVEL_FLUX,
};
use serscale_workload::Benchmark;

use crate::classify::{FailureClass, RunVerdict};
use crate::dut::DeviceUnderTest;
use crate::runner::BenchmarkRunner;

/// When a session ends.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SessionLimits {
    /// Stop once this many error events (SDCs + crashes) accumulated —
    /// the "100 events" significance rule of §3.5.
    pub max_error_events: u64,
    /// Stop once this fluence is reached (the 10¹¹ n/cm² ESCC rule).
    pub max_fluence: Fluence,
    /// Stop after this much beam time (reserved-beam-window exhaustion,
    /// the fate of the paper's session 4).
    pub max_duration: Option<SimDuration>,
}

impl SessionLimits {
    /// The textbook §3.5 rules: 100 events or 10¹¹ n/cm², no time cap.
    pub fn standard() -> Self {
        SessionLimits {
            max_error_events: 100,
            max_fluence: Fluence::SIGNIFICANCE_THRESHOLD,
            max_duration: None,
        }
    }

    /// A pure time-boxed session: reproduce a realized exposure (how the
    /// paper's Table 2 durations are replayed — the operators chose to run
    /// sessions 1 and 2 well past the fluence rule).
    pub fn time_boxed(duration: SimDuration) -> Self {
        SessionLimits {
            max_error_events: u64::MAX,
            max_fluence: Fluence::per_cm2(f64::MAX / 1e10),
            max_duration: Some(duration),
        }
    }
}

impl Default for SessionLimits {
    fn default() -> Self {
        Self::standard()
    }
}

/// Why the session stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StopReason {
    /// Enough error events accumulated.
    ErrorEvents,
    /// The fluence target was reached.
    Fluence,
    /// The reserved beam time ran out.
    BeamTime,
}

/// Per-benchmark telemetry within a session (the data behind Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct BenchmarkStats {
    /// Completed runs.
    pub runs: u64,
    /// EDAC records observed while this benchmark ran.
    pub memory_upsets: u64,
    /// Beam-on execution time attributed to this benchmark (excluding
    /// crash recovery).
    pub execution_time: SimDuration,
    /// SDCs attributed to this benchmark.
    pub sdcs: u64,
}

impl BenchmarkStats {
    /// Upsets per minute of execution — a Figure 5 bar.
    pub fn upsets_per_minute(&self) -> f64 {
        if self.execution_time.is_zero() {
            0.0
        } else {
            self.memory_upsets as f64 / self.execution_time.as_minutes()
        }
    }
}

/// The full outcome of one session — one Table 2 column plus the data
/// behind Figures 5, 6/7 and 8 at this voltage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionReport {
    /// The tested operating point.
    pub operating_point: OperatingPoint,
    /// Why the session ended.
    pub stop_reason: StopReason,
    /// Total beam-on time (runs + crash recoveries).
    pub duration: SimDuration,
    /// Accumulated fluence.
    pub fluence: Fluence,
    /// Completed benchmark runs.
    pub runs: u64,
    /// Error events per failure class.
    pub failures: BTreeMap<FailureClass, u64>,
    /// SDCs that coincided with a corrected-error notification (Fig. 12's
    /// rare deceptive case).
    pub sdc_with_notification: u64,
    /// Total EDAC records (Table 2's "memory upsets").
    pub memory_upsets: u64,
    /// EDAC records per (cache level, severity) — Figures 6/7.
    pub edac_per_level: LevelCounts,
    /// Per-benchmark stats — Figure 5.
    pub per_benchmark: BTreeMap<Benchmark, BenchmarkStats>,
}

impl SessionReport {
    /// Total error events (SDCs + crashes) — Table 2 row 6.
    pub fn error_events(&self) -> u64 {
        self.failures.values().sum()
    }

    /// Error events per minute — Table 2 row 7.
    pub fn error_rate(&self) -> RateEstimate {
        RateEstimate::from_count(self.error_events(), self.duration)
    }

    /// Memory upsets per minute — Table 2 row 9.
    pub fn upset_rate(&self) -> RateEstimate {
        RateEstimate::from_count(self.memory_upsets, self.duration)
    }

    /// Count for one failure class.
    pub fn failure_count(&self, class: FailureClass) -> u64 {
        self.failures.get(&class).copied().unwrap_or(0)
    }

    /// The share of each failure class among all error events — one panel
    /// of Figure 8. Returns zeros when no events occurred.
    pub fn failure_shares(&self) -> BTreeMap<FailureClass, f64> {
        let total = self.error_events() as f64;
        FailureClass::ALL
            .into_iter()
            .map(|c| {
                let share =
                    if total > 0.0 { self.failure_count(c) as f64 / total } else { 0.0 };
                (c, share)
            })
            .collect()
    }

    /// Years of natural NYC sea-level exposure equivalent to this
    /// session's fluence — Table 2 row 5.
    pub fn nyc_equivalent_years(&self) -> f64 {
        self.fluence.natural_equivalent(NYC_SEA_LEVEL_FLUX).as_years()
    }

    /// The memory SER in FIT per Mbit at NYC — Table 2 row 10.
    ///
    /// # Panics
    ///
    /// Panics if `sram_mbit` is not positive.
    pub fn memory_ser_fit_per_mbit(&self, sram_mbit: f64) -> f64 {
        assert!(sram_mbit > 0.0, "memory size must be positive");
        let dcs = serscale_types::CrossSection::from_events(
            self.memory_upsets as f64,
            self.fluence,
        );
        dcs.fit_at(NYC_SEA_LEVEL_FLUX).per_mbit(sram_mbit).get()
    }

    /// Corrected/uncorrected EDAC rate per minute for one cache level —
    /// a Figure 6/7 bar.
    pub fn level_rate_per_minute(
        &self,
        level: serscale_types::CacheLevel,
        severity: EdacSeverity,
    ) -> f64 {
        let count = self.edac_per_level.get(&(level, severity)).copied().unwrap_or(0);
        count as f64 / self.duration.as_minutes()
    }
}

/// Drives one session to completion.
#[derive(Debug)]
pub struct TestSession {
    runner: BenchmarkRunner,
    limits: SessionLimits,
}

impl TestSession {
    /// Creates a session for a DUT under beam flux with the given limits.
    ///
    /// # Panics
    ///
    /// Panics when the beam is off (`flux == 0`) and no beam-time limit is
    /// set: neither the event rule nor the fluence rule could ever fire,
    /// so the session would spin forever.
    pub fn new(dut: DeviceUnderTest, flux: Flux, limits: SessionLimits) -> Self {
        assert!(
            flux.as_per_cm2_s() > 0.0 || limits.max_duration.is_some(),
            "a beam-off session needs a max_duration to terminate"
        );
        TestSession { runner: BenchmarkRunner::new(dut, flux), limits }
    }

    /// Runs the session to a stopping rule and reports.
    pub fn run(&mut self, rng: &mut SimRng) -> SessionReport {
        self.run_observed(rng, &mut crate::trace::NoopObserver)
    }

    /// Runs the session, reporting every event through an observer (see
    /// [`crate::trace`]). Observation never perturbs the simulation: the
    /// same seed yields the same report with or without it.
    pub fn run_observed(
        &mut self,
        rng: &mut SimRng,
        observer: &mut dyn crate::trace::SessionObserver,
    ) -> SessionReport {
        let flux = self.runner.flux();
        let point = self.runner.dut().operating_point();
        let mut ledger = FluenceLedger::new();
        let mut clock = SimInstant::EPOCH;
        let mut failures: BTreeMap<FailureClass, u64> = BTreeMap::new();
        let mut per_benchmark: BTreeMap<Benchmark, BenchmarkStats> = BTreeMap::new();
        let mut edac_per_level = LevelCounts::new();
        let mut memory_upsets = 0u64;
        let mut sdc_with_notification = 0u64;
        let mut runs = 0u64;
        let stop_reason;

        let mut next = 0usize;
        loop {
            let benchmark = Benchmark::ALL[next % Benchmark::ALL.len()];
            next += 1;
            let run_start = clock;
            let outcome = self.runner.run_once(rng, benchmark, clock);
            clock += outcome.wall_time;
            ledger.record(flux, outcome.wall_time);
            runs += 1;

            observer.on_run(run_start, benchmark, outcome.verdict);
            for record in &outcome.edac {
                observer.on_edac(*record);
            }
            let run_only = self.runner.run_duration(benchmark);
            if outcome.wall_time > run_only {
                observer.on_recovery(run_start + run_only, outcome.wall_time - run_only);
            }

            let stats = per_benchmark.entry(benchmark).or_default();
            stats.runs += 1;
            stats.memory_upsets += outcome.edac.len() as u64;
            stats.execution_time += self.runner.run_duration(benchmark);

            memory_upsets += outcome.edac.len() as u64;
            for record in &outcome.edac {
                *edac_per_level.entry((record.cache_level(), record.severity)).or_insert(0) +=
                    1;
            }
            if let Some(class) = outcome.verdict.failure_class() {
                *failures.entry(class).or_insert(0) += 1;
                if class == FailureClass::Sdc {
                    stats.sdcs += 1;
                    if outcome.verdict
                        == (RunVerdict::Sdc { with_hw_notification: true })
                    {
                        sdc_with_notification += 1;
                    }
                }
            }

            let error_events: u64 = failures.values().sum();
            if error_events >= self.limits.max_error_events {
                stop_reason = StopReason::ErrorEvents;
                break;
            }
            if ledger.total_fluence() >= self.limits.max_fluence {
                stop_reason = StopReason::Fluence;
                break;
            }
            if let Some(max) = self.limits.max_duration {
                if ledger.total_duration() >= max {
                    stop_reason = StopReason::BeamTime;
                    break;
                }
            }
        }

        observer.on_session_end(clock, stop_reason);
        SessionReport {
            operating_point: point,
            stop_reason,
            duration: ledger.total_duration(),
            fluence: ledger.total_fluence(),
            runs,
            failures,
            sdc_with_notification,
            memory_upsets,
            edac_per_level,
            per_benchmark,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serscale_types::Millivolts;

    const WORKING_FLUX: f64 = 1.5e6;

    fn dut(point: OperatingPoint) -> DeviceUnderTest {
        DeviceUnderTest::xgene2(point, DeviceUnderTest::paper_vmin(point.frequency))
    }

    fn short_session(point: OperatingPoint, minutes: f64, seed: u64) -> SessionReport {
        let mut session = TestSession::new(
            dut(point),
            Flux::per_cm2_s(WORKING_FLUX),
            SessionLimits::time_boxed(SimDuration::from_minutes(minutes)),
        );
        let mut rng = SimRng::seed_from(seed);
        session.run(&mut rng)
    }

    #[test]
    fn time_boxed_session_stops_on_beam_time() {
        let report = short_session(OperatingPoint::nominal(), 20.0, 1);
        assert_eq!(report.stop_reason, StopReason::BeamTime);
        assert!(report.duration.as_minutes() >= 20.0);
        // One extra run can overshoot, but only by a run + recovery.
        assert!(report.duration.as_minutes() < 23.0);
        assert!(report.runs > 200);
    }

    #[test]
    fn event_limit_stops_session() {
        let mut session = TestSession::new(
            dut(OperatingPoint::vmin_2400()),
            Flux::per_cm2_s(WORKING_FLUX),
            SessionLimits {
                max_error_events: 5,
                max_fluence: Fluence::per_cm2(1e30),
                max_duration: None,
            },
        );
        let mut rng = SimRng::seed_from(2);
        let report = session.run(&mut rng);
        assert_eq!(report.stop_reason, StopReason::ErrorEvents);
        assert_eq!(report.error_events(), 5);
    }

    #[test]
    fn fluence_limit_stops_session() {
        let mut session = TestSession::new(
            dut(OperatingPoint::nominal()),
            Flux::per_cm2_s(WORKING_FLUX),
            SessionLimits {
                max_error_events: u64::MAX,
                max_fluence: Fluence::per_cm2(1.0e9),
                max_duration: None,
            },
        );
        let mut rng = SimRng::seed_from(3);
        let report = session.run(&mut rng);
        assert_eq!(report.stop_reason, StopReason::Fluence);
        assert!(report.fluence >= Fluence::per_cm2(1.0e9));
    }

    #[test]
    fn upset_rate_tracks_table2_at_nominal() {
        let report = short_session(OperatingPoint::nominal(), 120.0, 4);
        let rate = report.upset_rate().per_minute();
        assert!((rate - 1.01).abs() < 0.2, "rate = {rate}");
    }

    #[test]
    fn fluence_accounting_consistent() {
        let report = short_session(OperatingPoint::nominal(), 30.0, 5);
        let expected = WORKING_FLUX * report.duration.as_secs();
        assert!((report.fluence.as_per_cm2() - expected).abs() / expected < 1e-9);
        assert!(report.nyc_equivalent_years() > 0.0);
    }

    #[test]
    fn per_benchmark_stats_cover_all_six() {
        let report = short_session(OperatingPoint::nominal(), 10.0, 6);
        assert_eq!(report.per_benchmark.len(), 6);
        for (b, stats) in &report.per_benchmark {
            assert!(stats.runs > 0, "{b}");
            assert!(!stats.execution_time.is_zero(), "{b}");
        }
    }

    #[test]
    fn session_is_deterministic() {
        let a = short_session(OperatingPoint::safe(), 15.0, 7);
        let b = short_session(OperatingPoint::safe(), 15.0, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn failure_shares_sum_to_one_when_events_exist() {
        let report = short_session(OperatingPoint::vmin_2400(), 400.0, 8);
        assert!(report.error_events() > 20, "events = {}", report.error_events());
        let shares = report.failure_shares();
        let total: f64 = shares.values().sum();
        assert!((total - 1.0).abs() < 1e-9);
        // At Vmin the SDC share dominates (Fig. 8 rightmost panel: 92%).
        assert!(shares[&FailureClass::Sdc] > 0.6, "sdc share = {}", shares[&FailureClass::Sdc]);
    }

    #[test]
    fn memory_ser_in_table2_band() {
        let report = short_session(OperatingPoint::nominal(), 60.0, 9);
        // Table 2 row 10: 2.08–2.45 FIT/Mbit over the four sessions; the
        // modelled chip has ~79.7 Mbit of SRAM.
        let mbit = 79.7;
        let ser = report.memory_ser_fit_per_mbit(mbit);
        assert!(ser > 1.5 && ser < 3.0, "ser = {ser}");
    }

    #[test]
    #[should_panic(expected = "beam-off session")]
    fn beam_off_without_time_limit_is_rejected() {
        let _ = TestSession::new(
            dut(OperatingPoint::nominal()),
            Flux::per_cm2_s(0.0),
            SessionLimits::standard(),
        );
    }

    #[test]
    fn beam_off_time_boxed_session_sees_nothing() {
        let mut session = TestSession::new(
            dut(OperatingPoint::nominal()),
            Flux::per_cm2_s(0.0),
            SessionLimits::time_boxed(SimDuration::from_minutes(5.0)),
        );
        let report = session.run(&mut SimRng::seed_from(1));
        assert_eq!(report.memory_upsets, 0);
        assert_eq!(report.error_events(), 0);
        assert_eq!(report.fluence, Fluence::ZERO);
    }

    #[test]
    fn soc_vmin_lookup_unused_at_900mhz_left_intact() {
        // Smoke: a 900 MHz session runs and the L3 keeps its SoC-domain
        // rate (checked in detail in dut tests).
        let report = short_session(OperatingPoint::vmin_900(), 20.0, 10);
        assert!(report.memory_upsets > 0);
        assert_eq!(report.operating_point.pmd, Millivolts::new(790));
    }
}
