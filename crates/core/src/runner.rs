//! One benchmark execution under beam.
//!
//! The runner is where the substrates meet: Poisson strike arrivals over
//! every SRAM array (beam × physics), cluster interleaving and ECC decode
//! by the real codecs (sram × ecc), escalation of uncorrectable and
//! control-path faults (classify), and — when corruption reaches live
//! program state — an *actual corrupted execution* of the benchmark kernel
//! whose output is compared bit-exactly against the golden reference,
//! which is precisely the SDC detector of the paper's test flow (§3.6).
//!
//! ## The batched hot path
//!
//! Event arrivals across all sources of one trial form a single Poisson
//! process with mean `Σλᵢ` (superposition); each arrival belongs to
//! source `i` with probability `λᵢ/Σλ` (multinomial splitting). The
//! runner therefore draws **one** arrival count per trial from a cached
//! `RateEnvelope` — the per-(array, voltage-domain, window) means,
//! pre-summed in canonical order — and short-circuits the ≈95 % of
//! trials whose count is zero before touching any array state. Strikes
//! that do land go through the word-batched mask classifiers
//! (`serscale-ecc`) via a reusable per-worker [`StrikeScratch`] arena.
//!
//! [`BenchmarkRunner::run_once_reference`] is the deliberately naive
//! twin: it rebuilds the envelope from the physics every trial and
//! classifies each strike through the real encode/decode codecs. Both
//! paths consume the RNG stream draw-for-draw identically — the
//! differential oracles in `serscale-verify` hold them to that.

use std::collections::BTreeMap;

use serscale_ecc::UpsetOutcome;
use serscale_soc::edac::{EdacRecord, EdacSeverity};
use serscale_soc::platform::{ArrayInstance, OperatingPoint};
use serscale_sram::{MbuModel, StrikeScratch};
use serscale_stats::poisson::sample_poisson;
use serscale_stats::SimRng;
use serscale_types::{ArrayKind, Flux, Millivolts, SimDuration, SimInstant};
use serscale_workload::kernel::Corruption;
use serscale_workload::Benchmark;

use crate::classify::{ControlPc, EscalationModel, FailureClass, RunVerdict};
use crate::dut::DeviceUnderTest;

/// Everything one benchmark run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Which benchmark ran.
    pub benchmark: Benchmark,
    /// The software-level verdict.
    pub verdict: RunVerdict,
    /// EDAC records emitted during the run.
    pub edac: Vec<EdacRecord>,
    /// Beam-on wall-clock consumed: the run itself plus any crash
    /// recovery.
    pub wall_time: SimDuration,
    /// Raw neutron strikes that hit SRAM during the run (telemetry; the
    /// EDAC records are the *observable* subset bookkeeping downstream
    /// uses).
    pub sram_strikes: u64,
}

/// One event source inside a [`RateEnvelope`]: an SRAM array with its
/// pre-resolved clustering model, or (implicitly, past the array list)
/// the control/datapath logic.
#[derive(Debug, Clone)]
struct ArraySource {
    instance: ArrayInstance,
    mbu: MbuModel,
    /// `p_extra(V_domain)` hoisted out of the strike loop: one `exp()`
    /// per envelope build instead of one per strike.
    p_extra: f64,
    /// Mean events of all sources up to and including this one — the
    /// selection threshold multinomial splitting compares against.
    cumulative: f64,
}

/// The per-(operating point, benchmark) arrival-rate table: every
/// source's expected event count for one run window, pre-summed so the
/// hot path draws a single Poisson count and selects sources by one
/// uniform each.
///
/// Built by one function used by both the batched and the reference
/// paths, so the f64 summation order — and therefore every comparison
/// against `cumulative` — is bit-identical between them.
#[derive(Debug, Clone)]
struct RateEnvelope {
    point: OperatingPoint,
    vmin: Millivolts,
    duration: SimDuration,
    dt: f64,
    arrays: Vec<ArraySource>,
    /// Mean through the control-logic source.
    ctrl_cumulative: f64,
    /// Grand total across arrays + control + datapath.
    total: f64,
}

/// Which source an arrival belongs to.
enum EventSource {
    Array(usize),
    Control,
    Data,
}

impl RateEnvelope {
    /// Builds the envelope from the physics at the DUT's current point.
    fn build(
        dut: &DeviceUnderTest,
        flux: Flux,
        benchmark: Benchmark,
        duration: SimDuration,
    ) -> Self {
        let profile = benchmark.profile();
        let dt = duration.as_secs();
        let flux = flux.as_per_cm2_s();
        let mut total = 0.0;
        let mut arrays = Vec::new();
        for instance in dut.soc().arrays() {
            let sigma = dut
                .observable_sigma(instance, profile.detection_factor())
                .as_cm2();
            total += sigma * flux * dt;
            let domain = instance.array().voltage_domain();
            let mbu = *dut.mbu_model(domain);
            arrays.push(ArraySource {
                instance: *instance,
                p_extra: mbu.p_extra(dut.array_voltage(instance)),
                mbu,
                cumulative: total,
            });
        }
        total += dut.control_sigma().as_cm2() * flux * dt;
        let ctrl_cumulative = total;
        total += dut.datapath_sigma().as_cm2() * flux * dt;
        RateEnvelope {
            point: dut.operating_point(),
            vmin: dut.vmin(),
            duration,
            dt,
            arrays,
            ctrl_cumulative,
            total,
        }
    }

    /// Attributes one arrival to its source from a single uniform draw.
    fn pick(&self, u: f64) -> EventSource {
        let target = u * self.total;
        let idx = self.arrays.partition_point(|s| s.cumulative <= target);
        if idx < self.arrays.len() {
            EventSource::Array(idx)
        } else if target < self.ctrl_cumulative {
            EventSource::Control
        } else {
            EventSource::Data
        }
    }
}

/// How a trial's strikes are classified: through the per-worker scratch
/// arena and the mask-batched classifiers (the hot path), or through the
/// allocating per-event codecs (the reference path the oracles diff
/// against). Both consume the RNG identically.
enum StrikeMode<'a> {
    Batched(&'a mut StrikeScratch),
    Reference,
}

/// Everything the event loop accumulates before the verdict phase.
#[derive(Debug, Default)]
struct TrialEvents {
    edac: Vec<EdacRecord>,
    sram_strikes: u64,
    crash: Option<FailureClass>,
    silent_corruptions: u64,
    corruption_with_notification: bool,
}

/// Applies one word-level ECC outcome to the trial tally — the
/// draw-order-critical core shared verbatim by both strike modes.
fn apply_word_outcome(
    outcome: UpsetOutcome,
    when: SimInstant,
    array: ArrayKind,
    consume_probability: f64,
    escalation: &EscalationModel,
    rng: &mut SimRng,
    tally: &mut TrialEvents,
) {
    match outcome {
        UpsetOutcome::Corrected => tally.edac.push(EdacRecord {
            time: when,
            array,
            severity: EdacSeverity::Corrected,
        }),
        UpsetOutcome::DetectedUncorrectable => {
            tally.edac.push(EdacRecord {
                time: when,
                array,
                severity: EdacSeverity::Uncorrected,
            });
            if let Some(class) = escalation.escalate_ue(rng) {
                tally.crash = Some(worst(tally.crash, class));
            }
        }
        UpsetOutcome::MiscorrectedReported => {
            // Logged as corrected — but the data is wrong.
            tally.edac.push(EdacRecord {
                time: when,
                array,
                severity: EdacSeverity::Corrected,
            });
            if rng.chance(consume_probability) {
                tally.silent_corruptions += 1;
                tally.corruption_with_notification = true;
            }
        }
        UpsetOutcome::SilentCorruption => {
            if rng.chance(consume_probability) {
                tally.silent_corruptions += 1;
            }
        }
    }
}

/// Runs one trial's event loop against an envelope: one Poisson count,
/// then per event one source-selection uniform plus that source's own
/// draws. Zero-count trials return without touching any array state.
fn execute_trial(
    env: &RateEnvelope,
    escalation: &EscalationModel,
    mut mode: StrikeMode<'_>,
    rng: &mut SimRng,
    benchmark: Benchmark,
    start: SimInstant,
) -> TrialEvents {
    let mut tally = TrialEvents::default();
    let events = sample_poisson(rng, env.total);
    if events == 0 {
        return tally;
    }
    let consume_probability = benchmark.profile().consume_probability();
    for _ in 0..events {
        match env.pick(rng.uniform()) {
            EventSource::Array(idx) => {
                let src = &env.arrays[idx];
                tally.sram_strikes += 1;
                let cluster = src.mbu.sample_cluster_len_with(rng, src.p_extra);
                let kind = src.instance.kind();
                match &mut mode {
                    StrikeMode::Batched(scratch) => {
                        src.instance.array().strike_into(rng, cluster, scratch);
                        let when = start + SimDuration::from_secs(rng.uniform() * env.dt);
                        for i in 0..scratch.outcomes().len() {
                            apply_word_outcome(
                                scratch.outcomes()[i],
                                when,
                                kind,
                                consume_probability,
                                escalation,
                                rng,
                                &mut tally,
                            );
                        }
                    }
                    StrikeMode::Reference => {
                        let effect = src.instance.array().strike(rng, cluster);
                        let when = start + SimDuration::from_secs(rng.uniform() * env.dt);
                        for word in &effect.words {
                            apply_word_outcome(
                                word.outcome,
                                when,
                                kind,
                                consume_probability,
                                escalation,
                                rng,
                                &mut tally,
                            );
                        }
                    }
                }
            }
            EventSource::Control => {
                if let Some(class) = escalation.escalate_control(rng) {
                    tally.crash = Some(worst(tally.crash, class));
                }
            }
            EventSource::Data => {
                if rng.chance(consume_probability) {
                    tally.silent_corruptions += 1;
                }
            }
        }
    }
    tally
}

/// Executes benchmark runs against a [`DeviceUnderTest`] in a beam.
pub struct BenchmarkRunner {
    dut: DeviceUnderTest,
    flux: Flux,
    escalation: EscalationModel,
    control_pc: ControlPc,
    /// Per-benchmark arrival-rate envelopes, rebuilt when the operating
    /// point moves. Worker-local, like everything else in the runner.
    envelopes: BTreeMap<Benchmark, RateEnvelope>,
    /// The per-worker strike arena the batched path classifies into.
    scratch: StrikeScratch,
}

impl BenchmarkRunner {
    /// Creates a runner for a DUT under the given beam flux.
    pub fn new(dut: DeviceUnderTest, flux: Flux) -> Self {
        BenchmarkRunner {
            dut,
            flux,
            escalation: EscalationModel::calibrated(),
            control_pc: ControlPc::typical(),
            envelopes: BTreeMap::new(),
            scratch: StrikeScratch::new(),
        }
    }

    /// The device under test.
    pub const fn dut(&self) -> &DeviceUnderTest {
        &self.dut
    }

    /// Mutable access to the DUT (e.g. to change operating point between
    /// sessions). Cached rate envelopes revalidate against the DUT's
    /// point on the next run, so moving it is always safe.
    pub fn dut_mut(&mut self) -> &mut DeviceUnderTest {
        &mut self.dut
    }

    /// The beam flux the runner samples under.
    pub const fn flux(&self) -> Flux {
        self.flux
    }

    /// The Control-PC watchdog configuration.
    pub const fn control_pc(&self) -> &ControlPc {
        &self.control_pc
    }

    /// The effective run duration at the DUT's current frequency: class-A
    /// runtimes are quoted at 2.4 GHz and stretch proportionally at lower
    /// clocks.
    pub fn run_duration(&self, benchmark: Benchmark) -> SimDuration {
        let profile = benchmark.profile();
        let stretch = 2400.0 / f64::from(self.dut.operating_point().frequency.get());
        profile.runtime() * stretch
    }

    /// Rebuilds the cached envelope for `benchmark` if the DUT has moved
    /// since it was built (or none exists yet).
    fn ensure_envelope(&mut self, benchmark: Benchmark) {
        let point = self.dut.operating_point();
        let vmin = self.dut.vmin();
        let fresh = self
            .envelopes
            .get(&benchmark)
            .is_some_and(|e| e.point == point && e.vmin == vmin);
        if !fresh {
            let duration = self.run_duration(benchmark);
            let env = RateEnvelope::build(&self.dut, self.flux, benchmark, duration);
            self.envelopes.insert(benchmark, env);
        }
    }

    /// Runs one benchmark execution starting at `start` simulated time —
    /// the batched hot path (cached envelope, scratch-arena strikes,
    /// mask-based classification).
    pub fn run_once(
        &mut self,
        rng: &mut SimRng,
        benchmark: Benchmark,
        start: SimInstant,
    ) -> RunOutcome {
        self.ensure_envelope(benchmark);
        let env = self.envelopes.get(&benchmark).expect("envelope just built");
        let duration = env.duration;
        let tally = execute_trial(
            env,
            &self.escalation,
            StrikeMode::Batched(&mut self.scratch),
            rng,
            benchmark,
            start,
        );
        self.finish_trial(rng, benchmark, duration, tally)
    }

    /// [`Self::run_once`] through the naive per-event path: the envelope
    /// is rebuilt from the physics on every call and every strike goes
    /// through the real encode/decode codecs. Draw-for-draw identical
    /// RNG consumption and bit-identical outcomes to the batched path —
    /// the invariant the differential oracles check.
    pub fn run_once_reference(
        &mut self,
        rng: &mut SimRng,
        benchmark: Benchmark,
        start: SimInstant,
    ) -> RunOutcome {
        let duration = self.run_duration(benchmark);
        let env = RateEnvelope::build(&self.dut, self.flux, benchmark, duration);
        let tally = execute_trial(
            &env,
            &self.escalation,
            StrikeMode::Reference,
            rng,
            benchmark,
            start,
        );
        self.finish_trial(rng, benchmark, duration, tally)
    }

    /// The verdict phase shared by both paths: kernel-level SDC
    /// adjudication, recovery overhead, and the canonical EDAC sort.
    fn finish_trial(
        &mut self,
        rng: &mut SimRng,
        benchmark: Benchmark,
        duration: SimDuration,
        tally: TrialEvents,
    ) -> RunOutcome {
        let TrialEvents {
            mut edac,
            sram_strikes,
            crash,
            silent_corruptions,
            corruption_with_notification,
        } = tally;
        let verdict = if let Some(class) = crash {
            match class {
                FailureClass::SysCrash => RunVerdict::SysCrash,
                FailureClass::AppCrash => RunVerdict::AppCrash,
                FailureClass::Sdc => unreachable!("crash path never yields SDC"),
            }
        } else if silent_corruptions > 0 {
            // Corruption reached live program state: run the real kernel
            // with an injected bit flip and compare against the golden
            // output. Computation can still mask the flip (e.g. the value
            // is overwritten, or an iterative solve repairs it to the
            // same bits).
            let corruption = Corruption::new(
                rng.uniform_in(0.0, 0.999),
                rng.below(1 << 20) as usize,
                rng.below(64) as u8,
            );
            let output = benchmark.shared_kernel().run_corrupted(corruption);
            if output.matches(benchmark.shared_golden()) {
                RunVerdict::Correct
            } else {
                // §6.2's two notification cases: (1) a SECDED
                // mis-correction caused the corruption itself, or (2) an
                // unrelated corrected error happened to be logged during
                // the same run, so the output mismatch arrives alongside a
                // CE notification.
                let coincident_ce = edac.iter().any(|r| r.severity == EdacSeverity::Corrected);
                RunVerdict::Sdc {
                    with_hw_notification: corruption_with_notification || coincident_ce,
                }
            }
        } else {
            RunVerdict::Correct
        };

        let wall_time = duration + self.control_pc.recovery_overhead(verdict);
        // Report times are sampled event by event, not chronologically;
        // sort (stably — words of one strike share a timestamp) so
        // observers see each trial's records in nondecreasing time order.
        edac.sort_by(|a, b| {
            a.time
                .partial_cmp(&b.time)
                .expect("EDAC report times are finite")
        });
        RunOutcome {
            benchmark,
            verdict,
            edac,
            wall_time,
            sram_strikes,
        }
    }
}

impl std::fmt::Debug for BenchmarkRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BenchmarkRunner")
            .field("dut", &self.dut)
            .field("flux", &self.flux)
            .field("escalation", &self.escalation)
            .field("control_pc", &self.control_pc)
            .field("cached_envelopes", &self.envelopes.len())
            .finish()
    }
}

/// Crash severity ordering: a system crash preempts an application crash.
fn worst(current: Option<FailureClass>, new: FailureClass) -> FailureClass {
    match (current, new) {
        (Some(FailureClass::SysCrash), _) => FailureClass::SysCrash,
        (_, c) => c,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serscale_soc::platform::OperatingPoint;
    use serscale_types::Millivolts;

    const WORKING_FLUX: f64 = 1.5e6;

    fn runner(point: OperatingPoint) -> BenchmarkRunner {
        let vmin = DeviceUnderTest::paper_vmin(point.frequency);
        BenchmarkRunner::new(
            DeviceUnderTest::xgene2(point, vmin),
            Flux::per_cm2_s(WORKING_FLUX),
        )
    }

    #[test]
    fn quiet_beam_means_correct_runs() {
        // With zero flux nothing can fail.
        let vmin = Millivolts::new(920);
        let mut r = BenchmarkRunner::new(
            DeviceUnderTest::xgene2(OperatingPoint::nominal(), vmin),
            Flux::per_cm2_s(0.0),
        );
        let mut rng = SimRng::seed_from(1);
        for b in Benchmark::ALL {
            let out = r.run_once(&mut rng, b, SimInstant::EPOCH);
            assert_eq!(out.verdict, RunVerdict::Correct, "{b}");
            assert!(out.edac.is_empty());
            assert_eq!(out.sram_strikes, 0);
        }
    }

    #[test]
    fn upset_rate_under_beam_matches_table2() {
        // Aggregate EDAC records per minute across many runs at nominal:
        // Table 2 says 1.01/min.
        let mut r = runner(OperatingPoint::nominal());
        let mut rng = SimRng::seed_from(2);
        let mut records = 0u64;
        let mut minutes = 0.0;
        for i in 0..9000 {
            let b = Benchmark::ALL[i % 6];
            let out = r.run_once(&mut rng, b, SimInstant::EPOCH);
            records += out.edac.len() as u64;
            minutes += r.run_duration(b).as_minutes();
        }
        let rate = records as f64 / minutes;
        // Live (run-time-normalized) rate: Table 2's 1.01/min wall rate
        // plus the ≈7% recovery dead-time share.
        assert!((rate - 1.08).abs() < 0.12, "rate = {rate}/min");
    }

    #[test]
    fn run_duration_stretches_at_900mhz() {
        let r24 = runner(OperatingPoint::nominal());
        let r09 = runner(OperatingPoint::vmin_900());
        let d24 = r24.run_duration(Benchmark::Cg).as_secs();
        let d09 = r09.run_duration(Benchmark::Cg).as_secs();
        assert!((d09 / d24 - 2400.0 / 900.0).abs() < 1e-9);
    }

    #[test]
    fn crashes_add_recovery_time() {
        let mut r = runner(OperatingPoint::nominal());
        let mut rng = SimRng::seed_from(3);
        // Hunt for a crash verdict; with ~2.4 crashes/h and ~3 s runs, a
        // few thousand runs suffice.
        let mut found_crash = false;
        for i in 0..30_000 {
            let b = Benchmark::ALL[i % 6];
            let out = r.run_once(&mut rng, b, SimInstant::EPOCH);
            if matches!(out.verdict, RunVerdict::AppCrash | RunVerdict::SysCrash) {
                assert!(out.wall_time > r.run_duration(b));
                found_crash = true;
                break;
            }
        }
        assert!(found_crash, "no crash observed in 30k runs at nominal");
    }

    #[test]
    fn sdcs_appear_much_more_often_at_vmin() {
        let count_sdcs = |point: OperatingPoint, seed: u64| {
            let mut r = runner(point);
            let mut rng = SimRng::seed_from(seed);
            let mut sdcs = 0;
            for i in 0..6000 {
                let b = Benchmark::ALL[i % 6];
                if matches!(
                    r.run_once(&mut rng, b, SimInstant::EPOCH).verdict,
                    RunVerdict::Sdc { .. }
                ) {
                    sdcs += 1;
                }
            }
            sdcs
        };
        let nominal = count_sdcs(OperatingPoint::nominal(), 4);
        let vmin = count_sdcs(OperatingPoint::vmin_2400(), 4);
        assert!(
            vmin > nominal.max(1) * 5,
            "SDC explosion missing: nominal {nominal}, vmin {vmin}"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed| {
            let mut r = runner(OperatingPoint::vmin_2400());
            let mut rng = SimRng::seed_from(seed);
            (0..200)
                .map(|i| {
                    let out = r.run_once(&mut rng, Benchmark::ALL[i % 6], SimInstant::EPOCH);
                    (out.verdict, out.edac.len(), out.sram_strikes)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn reference_path_matches_batched_path_and_rng_stream() {
        for point in [
            OperatingPoint::nominal(),
            OperatingPoint::vmin_2400(),
            OperatingPoint::vmin_900(),
        ] {
            let mut fast = runner(point);
            let mut slow = runner(point);
            let mut fast_rng = SimRng::seed_from(31);
            let mut slow_rng = SimRng::seed_from(31);
            for i in 0..2000 {
                let b = Benchmark::ALL[i % 6];
                let a = fast.run_once(&mut fast_rng, b, SimInstant::EPOCH);
                let r = slow.run_once_reference(&mut slow_rng, b, SimInstant::EPOCH);
                assert_eq!(a, r, "trial {i} at {point:?}");
            }
            // Identical draw consumption, not just identical outcomes.
            assert_eq!(fast_rng.uniform(), slow_rng.uniform(), "{point:?}");
        }
    }

    #[test]
    fn envelope_cache_revalidates_when_the_point_moves() {
        let mut r = runner(OperatingPoint::nominal());
        let mut rng = SimRng::seed_from(5);
        let before = r.run_once(&mut rng, Benchmark::Cg, SimInstant::EPOCH);
        // Move the DUT to Vmin and back: the envelope must follow.
        let vmin_point = OperatingPoint::vmin_2400();
        r.dut_mut().set_operating_point(
            vmin_point,
            DeviceUnderTest::paper_vmin(vmin_point.frequency),
        );
        let _ = r.run_once(&mut rng, Benchmark::Cg, SimInstant::EPOCH);
        let nominal = OperatingPoint::nominal();
        r.dut_mut()
            .set_operating_point(nominal, DeviceUnderTest::paper_vmin(nominal.frequency));
        // Same point as `before`, replayed on a fresh stream: a stale
        // envelope (wrong rates) would shift outcomes detectably across
        // many trials; compare against a fresh runner as ground truth.
        let mut check_rng = SimRng::seed_from(5);
        let mut fresh = runner(OperatingPoint::nominal());
        let expected = fresh.run_once(&mut check_rng, Benchmark::Cg, SimInstant::EPOCH);
        assert_eq!(before, expected);
        let mut replay_rng = SimRng::seed_from(77);
        let mut fresh_rng = SimRng::seed_from(77);
        for i in 0..500 {
            let b = Benchmark::ALL[i % 6];
            assert_eq!(
                r.run_once(&mut replay_rng, b, SimInstant::EPOCH),
                fresh.run_once(&mut fresh_rng, b, SimInstant::EPOCH),
                "trial {i} after point round-trip"
            );
        }
    }
}
