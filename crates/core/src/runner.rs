//! One benchmark execution under beam.
//!
//! The runner is where the substrates meet: Poisson strike arrivals over
//! every SRAM array (beam × physics), cluster interleaving and ECC decode
//! by the real codecs (sram × ecc), escalation of uncorrectable and
//! control-path faults (classify), and — when corruption reaches live
//! program state — an *actual corrupted execution* of the benchmark kernel
//! whose output is compared bit-exactly against the golden reference,
//! which is precisely the SDC detector of the paper's test flow (§3.6).

use std::collections::BTreeMap;

use serscale_ecc::UpsetOutcome;
use serscale_soc::edac::{EdacRecord, EdacSeverity};
use serscale_stats::poisson::sample_poisson;
use serscale_stats::SimRng;
use serscale_types::{Flux, SimDuration, SimInstant};
use serscale_workload::kernel::{Corruption, Kernel, KernelOutput};
use serscale_workload::Benchmark;

use crate::classify::{ControlPc, EscalationModel, FailureClass, RunVerdict};
use crate::dut::DeviceUnderTest;

/// Everything one benchmark run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Which benchmark ran.
    pub benchmark: Benchmark,
    /// The software-level verdict.
    pub verdict: RunVerdict,
    /// EDAC records emitted during the run.
    pub edac: Vec<EdacRecord>,
    /// Beam-on wall-clock consumed: the run itself plus any crash
    /// recovery.
    pub wall_time: SimDuration,
    /// Raw neutron strikes that hit SRAM during the run (telemetry; the
    /// EDAC records are the *observable* subset bookkeeping downstream
    /// uses).
    pub sram_strikes: u64,
}

/// Executes benchmark runs against a [`DeviceUnderTest`] in a beam.
pub struct BenchmarkRunner {
    dut: DeviceUnderTest,
    flux: Flux,
    escalation: EscalationModel,
    control_pc: ControlPc,
    kernels: BTreeMap<Benchmark, Box<dyn Kernel>>,
    goldens: BTreeMap<Benchmark, KernelOutput>,
}

impl BenchmarkRunner {
    /// Creates a runner for a DUT under the given beam flux.
    pub fn new(dut: DeviceUnderTest, flux: Flux) -> Self {
        BenchmarkRunner {
            dut,
            flux,
            escalation: EscalationModel::calibrated(),
            control_pc: ControlPc::typical(),
            kernels: BTreeMap::new(),
            goldens: BTreeMap::new(),
        }
    }

    /// The device under test.
    pub const fn dut(&self) -> &DeviceUnderTest {
        &self.dut
    }

    /// Mutable access to the DUT (e.g. to change operating point between
    /// sessions).
    pub fn dut_mut(&mut self) -> &mut DeviceUnderTest {
        &mut self.dut
    }

    /// The beam flux the runner samples under.
    pub const fn flux(&self) -> Flux {
        self.flux
    }

    /// The Control-PC watchdog configuration.
    pub const fn control_pc(&self) -> &ControlPc {
        &self.control_pc
    }

    /// The effective run duration at the DUT's current frequency: class-A
    /// runtimes are quoted at 2.4 GHz and stretch proportionally at lower
    /// clocks.
    pub fn run_duration(&self, benchmark: Benchmark) -> SimDuration {
        let profile = benchmark.profile();
        let stretch = 2400.0 / f64::from(self.dut.operating_point().frequency.get());
        profile.runtime() * stretch
    }

    fn golden(&mut self, benchmark: Benchmark) -> &KernelOutput {
        self.kernels
            .entry(benchmark)
            .or_insert_with(|| benchmark.kernel());
        self.goldens
            .entry(benchmark)
            .or_insert_with(|| self.kernels[&benchmark].golden())
    }

    /// Runs one benchmark execution starting at `start` simulated time.
    pub fn run_once(
        &mut self,
        rng: &mut SimRng,
        benchmark: Benchmark,
        start: SimInstant,
    ) -> RunOutcome {
        let profile = benchmark.profile();
        let duration = self.run_duration(benchmark);
        let dt = duration.as_secs();
        let flux = self.flux.as_per_cm2_s();

        let mut edac = Vec::new();
        let mut sram_strikes = 0u64;
        let mut crash: Option<FailureClass> = None;
        let mut silent_corruptions = 0u64;
        let mut corruption_with_notification = false;

        // --- SRAM strikes, array by array -------------------------------
        // Collected owned descriptors first: strike application needs &mut
        // rng while iterating.
        let arrays: Vec<_> = self.dut.soc().arrays().copied().collect();
        for instance in &arrays {
            let sigma = self
                .dut
                .observable_sigma(instance, profile.detection_factor())
                .as_cm2();
            let strikes = sample_poisson(rng, sigma * flux * dt);
            sram_strikes += strikes;
            for _ in 0..strikes {
                let v = self.dut.array_voltage(instance);
                let domain = instance.array().voltage_domain();
                let cluster = self.dut.mbu_model(domain).sample_cluster_len(rng, v);
                let effect = instance.array().strike(rng, cluster);
                let when = start + SimDuration::from_secs(rng.uniform() * dt);
                for word in &effect.words {
                    match word.outcome {
                        UpsetOutcome::Corrected => edac.push(EdacRecord {
                            time: when,
                            array: instance.kind(),
                            severity: EdacSeverity::Corrected,
                        }),
                        UpsetOutcome::DetectedUncorrectable => {
                            edac.push(EdacRecord {
                                time: when,
                                array: instance.kind(),
                                severity: EdacSeverity::Uncorrected,
                            });
                            if let Some(class) = self.escalation.escalate_ue(rng) {
                                crash = Some(worst(crash, class));
                            }
                        }
                        UpsetOutcome::MiscorrectedReported => {
                            // Logged as corrected — but the data is wrong.
                            edac.push(EdacRecord {
                                time: when,
                                array: instance.kind(),
                                severity: EdacSeverity::Corrected,
                            });
                            if rng.chance(profile.consume_probability()) {
                                silent_corruptions += 1;
                                corruption_with_notification = true;
                            }
                        }
                        UpsetOutcome::SilentCorruption => {
                            if rng.chance(profile.consume_probability()) {
                                silent_corruptions += 1;
                            }
                        }
                    }
                }
            }
        }

        // --- Unprotected core logic -------------------------------------
        let ctrl_faults = sample_poisson(rng, self.dut.control_sigma().as_cm2() * flux * dt);
        for _ in 0..ctrl_faults {
            if let Some(class) = self.escalation.escalate_control(rng) {
                crash = Some(worst(crash, class));
            }
        }
        let data_faults = sample_poisson(rng, self.dut.datapath_sigma().as_cm2() * flux * dt);
        for _ in 0..data_faults {
            if rng.chance(profile.consume_probability()) {
                silent_corruptions += 1;
            }
        }

        // --- Verdict -----------------------------------------------------
        let verdict = if let Some(class) = crash {
            match class {
                FailureClass::SysCrash => RunVerdict::SysCrash,
                FailureClass::AppCrash => RunVerdict::AppCrash,
                FailureClass::Sdc => unreachable!("crash path never yields SDC"),
            }
        } else if silent_corruptions > 0 {
            // Corruption reached live program state: run the real kernel
            // with an injected bit flip and compare against the golden
            // output. Computation can still mask the flip (e.g. the value
            // is overwritten, or an iterative solve repairs it to the
            // same bits).
            let corruption = Corruption::new(
                rng.uniform_in(0.0, 0.999),
                rng.below(1 << 20) as usize,
                rng.below(64) as u8,
            );
            let golden = self.golden(benchmark).clone();
            let output = self.kernels[&benchmark].run_corrupted(corruption);
            if output.matches(&golden) {
                RunVerdict::Correct
            } else {
                // §6.2's two notification cases: (1) a SECDED
                // mis-correction caused the corruption itself, or (2) an
                // unrelated corrected error happened to be logged during
                // the same run, so the output mismatch arrives alongside a
                // CE notification.
                let coincident_ce = edac.iter().any(|r| r.severity == EdacSeverity::Corrected);
                RunVerdict::Sdc {
                    with_hw_notification: corruption_with_notification || coincident_ce,
                }
            }
        } else {
            RunVerdict::Correct
        };

        let wall_time = duration + self.control_pc.recovery_overhead(verdict);
        // Report times are sampled array by array, not chronologically;
        // sort (stably — words of one strike share a timestamp) so
        // observers see each trial's records in nondecreasing time order.
        edac.sort_by(|a, b| {
            a.time
                .partial_cmp(&b.time)
                .expect("EDAC report times are finite")
        });
        RunOutcome {
            benchmark,
            verdict,
            edac,
            wall_time,
            sram_strikes,
        }
    }
}

impl std::fmt::Debug for BenchmarkRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BenchmarkRunner")
            .field("dut", &self.dut)
            .field("flux", &self.flux)
            .field("escalation", &self.escalation)
            .field("control_pc", &self.control_pc)
            .field("cached_kernels", &self.kernels.len())
            .finish()
    }
}

/// Crash severity ordering: a system crash preempts an application crash.
fn worst(current: Option<FailureClass>, new: FailureClass) -> FailureClass {
    match (current, new) {
        (Some(FailureClass::SysCrash), _) => FailureClass::SysCrash,
        (_, c) => c,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serscale_soc::platform::OperatingPoint;
    use serscale_types::Millivolts;

    const WORKING_FLUX: f64 = 1.5e6;

    fn runner(point: OperatingPoint) -> BenchmarkRunner {
        let vmin = DeviceUnderTest::paper_vmin(point.frequency);
        BenchmarkRunner::new(
            DeviceUnderTest::xgene2(point, vmin),
            Flux::per_cm2_s(WORKING_FLUX),
        )
    }

    #[test]
    fn quiet_beam_means_correct_runs() {
        // With zero flux nothing can fail.
        let vmin = Millivolts::new(920);
        let mut r = BenchmarkRunner::new(
            DeviceUnderTest::xgene2(OperatingPoint::nominal(), vmin),
            Flux::per_cm2_s(0.0),
        );
        let mut rng = SimRng::seed_from(1);
        for b in Benchmark::ALL {
            let out = r.run_once(&mut rng, b, SimInstant::EPOCH);
            assert_eq!(out.verdict, RunVerdict::Correct, "{b}");
            assert!(out.edac.is_empty());
            assert_eq!(out.sram_strikes, 0);
        }
    }

    #[test]
    fn upset_rate_under_beam_matches_table2() {
        // Aggregate EDAC records per minute across many runs at nominal:
        // Table 2 says 1.01/min.
        let mut r = runner(OperatingPoint::nominal());
        let mut rng = SimRng::seed_from(2);
        let mut records = 0u64;
        let mut minutes = 0.0;
        for i in 0..9000 {
            let b = Benchmark::ALL[i % 6];
            let out = r.run_once(&mut rng, b, SimInstant::EPOCH);
            records += out.edac.len() as u64;
            minutes += r.run_duration(b).as_minutes();
        }
        let rate = records as f64 / minutes;
        // Live (run-time-normalized) rate: Table 2's 1.01/min wall rate
        // plus the ≈7% recovery dead-time share.
        assert!((rate - 1.08).abs() < 0.12, "rate = {rate}/min");
    }

    #[test]
    fn run_duration_stretches_at_900mhz() {
        let r24 = runner(OperatingPoint::nominal());
        let r09 = runner(OperatingPoint::vmin_900());
        let d24 = r24.run_duration(Benchmark::Cg).as_secs();
        let d09 = r09.run_duration(Benchmark::Cg).as_secs();
        assert!((d09 / d24 - 2400.0 / 900.0).abs() < 1e-9);
    }

    #[test]
    fn crashes_add_recovery_time() {
        let mut r = runner(OperatingPoint::nominal());
        let mut rng = SimRng::seed_from(3);
        // Hunt for a crash verdict; with ~2.4 crashes/h and ~3 s runs, a
        // few thousand runs suffice.
        let mut found_crash = false;
        for i in 0..30_000 {
            let b = Benchmark::ALL[i % 6];
            let out = r.run_once(&mut rng, b, SimInstant::EPOCH);
            if matches!(out.verdict, RunVerdict::AppCrash | RunVerdict::SysCrash) {
                assert!(out.wall_time > r.run_duration(b));
                found_crash = true;
                break;
            }
        }
        assert!(found_crash, "no crash observed in 30k runs at nominal");
    }

    #[test]
    fn sdcs_appear_much_more_often_at_vmin() {
        let count_sdcs = |point: OperatingPoint, seed: u64| {
            let mut r = runner(point);
            let mut rng = SimRng::seed_from(seed);
            let mut sdcs = 0;
            for i in 0..6000 {
                let b = Benchmark::ALL[i % 6];
                if matches!(
                    r.run_once(&mut rng, b, SimInstant::EPOCH).verdict,
                    RunVerdict::Sdc { .. }
                ) {
                    sdcs += 1;
                }
            }
            sdcs
        };
        let nominal = count_sdcs(OperatingPoint::nominal(), 4);
        let vmin = count_sdcs(OperatingPoint::vmin_2400(), 4);
        assert!(
            vmin > nominal.max(1) * 5,
            "SDC explosion missing: nominal {nominal}, vmin {vmin}"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed| {
            let mut r = runner(OperatingPoint::vmin_2400());
            let mut rng = SimRng::seed_from(seed);
            (0..200)
                .map(|i| {
                    let out = r.run_once(&mut rng, Benchmark::ALL[i % 6], SimInstant::EPOCH);
                    (out.verdict, out.edac.len(), out.sram_strikes)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
    }
}
