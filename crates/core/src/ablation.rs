//! Mechanism ablations: turn each modelled cause off and show which
//! measured effect disappears.
//!
//! The simulator earns its keep by being *dissectable* — something the
//! beam campaign cannot be. Each ablation here removes exactly one
//! mechanism the paper identifies and recomputes the observable it
//! explains:
//!
//! | ablation | removed mechanism | effect that disappears |
//! |---|---|---|
//! | [`no_margin_amplification`] | near-Vmin timing-margin collapse | the SDC-FIT cliff at Vmin (Fig. 8/11) |
//! | [`interleaved_l3`] | the L3's *lack* of interleaving | L3-exclusive uncorrectable errors (Fig. 6) |
//! | [`voltage_insensitive_sram`] | Qcrit ∝ V | Table 2's rising upset rates |
//! | [`secded_everywhere`] | parity-only L1/TLB protection | (nothing — L1 SBUs were already harmless, the paper's Design implication #1) |

use serscale_ecc::{ProtectionScheme, UpsetOutcome};
use serscale_soc::platform::OperatingPoint;
use serscale_soc::LogicSusceptibility;
use serscale_sram::{MbuModel, SoftErrorModel, SramArray};
use serscale_stats::SimRng;
use serscale_types::{ArrayKind, Bytes, CrossSection, Megahertz, Millivolts};

use crate::dut::DeviceUnderTest;

/// Ablation 1: a logic model with the margin amplification removed
/// (`A = 0`), all else equal. The returned pair is
/// `(σ_data ratio Vmin/nominal with the mechanism, without it)`.
pub fn no_margin_amplification() -> (f64, f64) {
    let full = LogicSusceptibility::xgene2();
    let f = Megahertz::new(2400);
    let vmin = Millivolts::new(920);
    let nominal = Millivolts::new(980);
    let with = full.sigma_data(vmin, f, vmin).as_cm2() / full.sigma_data(nominal, f, vmin).as_cm2();
    // Without the amplification the datapath scales like any stored bit:
    // the pure Qcrit factor.
    let bare = SoftErrorModel::tech_28nm();
    let without = bare.sigma_ratio(vmin);
    (with, without)
}

/// Ablation 2: give the L3 the same 4-way interleaving as the smaller
/// arrays and measure the uncorrectable-error share of its strikes at the
/// given voltage. Returns `(ue_share_uninterleaved, ue_share_interleaved)`
/// over `strikes` sampled strikes.
pub fn interleaved_l3(rng_seed: u64, strikes: u32, voltage: Millivolts) -> (f64, f64) {
    let mbu = MbuModel::tech_28nm();
    let share = |interleave: u32, rng: &mut SimRng| {
        let array = SramArray::new(
            ArrayKind::L3Shared,
            Bytes::mib(8),
            ProtectionScheme::Secded,
            interleave,
        );
        let mut ue = 0u32;
        for _ in 0..strikes {
            let cluster = mbu.sample_cluster_len(rng, voltage);
            let effect = array.strike(rng, cluster);
            if effect
                .words
                .iter()
                .any(|w| w.outcome == UpsetOutcome::DetectedUncorrectable)
            {
                ue += 1;
            }
        }
        f64::from(ue) / f64::from(strikes)
    };
    let mut rng_a = SimRng::seed_from(rng_seed);
    let mut rng_b = SimRng::seed_from(rng_seed);
    (share(1, &mut rng_a), share(4, &mut rng_b))
}

/// Ablation 3: a voltage-insensitive SRAM model (`k = 0`): the chip-level
/// observable σ becomes flat in voltage. Returns the Vmin/nominal σ ratio
/// `(with_sensitivity, without)`.
pub fn voltage_insensitive_sram() -> (f64, f64) {
    let vmin_anchor = DeviceUnderTest::paper_vmin(Megahertz::new(2400));
    let nominal = DeviceUnderTest::xgene2(OperatingPoint::nominal(), vmin_anchor);
    let vmin = DeviceUnderTest::xgene2(OperatingPoint::vmin_2400(), vmin_anchor);
    let with = vmin.total_observable_sram_sigma(1.0).as_cm2()
        / nominal.total_observable_sram_sigma(1.0).as_cm2();

    let flat = SoftErrorModel::new(
        CrossSection::cm2(SoftErrorModel::SIGMA_28NM_NOMINAL_CM2),
        Millivolts::new(980),
        0.0,
    );
    let without = flat.sigma_ratio(Millivolts::new(920));
    (with, without)
}

/// Ablation 4: upgrade the L1/TLB parity arrays to SECDED and measure the
/// share of single-bit strikes whose outcome *changes*. Returns that share
/// over `strikes` samples — expected 0: parity + write-through already
/// recovers every SBU, the paper's Design implication #1.
pub fn secded_everywhere(rng_seed: u64, strikes: u32) -> f64 {
    let parity_l1 = SramArray::new(
        ArrayKind::L1Data,
        Bytes::kib(32),
        ProtectionScheme::Parity,
        4,
    );
    let secded_l1 = SramArray::new(
        ArrayKind::L1Data,
        Bytes::kib(32),
        ProtectionScheme::Secded,
        4,
    );
    let mut rng_a = SimRng::seed_from(rng_seed);
    let mut rng_b = SimRng::seed_from(rng_seed);
    let mut changed = 0u32;
    for _ in 0..strikes {
        // Single-bit strikes: the L1's dominant case.
        let a = parity_l1.strike(&mut rng_a, 1);
        let b = secded_l1.strike(&mut rng_b, 1);
        let a_ok = a.words.iter().all(|w| w.outcome == UpsetOutcome::Corrected);
        let b_ok = b.words.iter().all(|w| w.outcome == UpsetOutcome::Corrected);
        if a_ok != b_ok {
            changed += 1;
        }
    }
    f64::from(changed) / f64::from(strikes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn removing_margin_amplification_kills_the_sdc_cliff() {
        let (with, without) = no_margin_amplification();
        assert!(with > 12.0, "with mechanism: {with}");
        assert!(without < 1.4, "without mechanism: {without}");
        assert!(with / without > 10.0);
    }

    #[test]
    fn interleaving_the_l3_eliminates_its_ues() {
        let (uninterleaved, interleaved) = interleaved_l3(1, 4000, Millivolts::new(920));
        // Un-interleaved: the MBU share (~5–7%) becomes UEs.
        assert!(
            uninterleaved > 0.03,
            "uninterleaved UE share = {uninterleaved}"
        );
        // 4-way interleaving: clusters ≤4 split into correctable singles;
        // only rarer ≥5 clusters can still defeat it.
        assert!(
            interleaved < uninterleaved / 10.0,
            "interleaved {interleaved} vs uninterleaved {uninterleaved}"
        );
    }

    #[test]
    fn flat_sram_model_flattens_table2() {
        let (with, without) = voltage_insensitive_sram();
        assert!(with > 1.05, "with Qcrit scaling: {with}");
        assert!((without - 1.0).abs() < 1e-12, "without: {without}");
    }

    #[test]
    fn upgrading_l1_to_secded_changes_nothing_for_sbus() {
        // Design implication #1: the existing schemes already suffice.
        let changed = secded_everywhere(2, 2000);
        assert_eq!(changed, 0.0, "SBU outcomes must be identical");
    }
}
