//! The crash-safe run journal: append-only trial records + recovery.
//!
//! The paper's 64-hour campaigns survived real system crashes because the
//! Control-PC could restart the DUT and *continue counting* (§3); this
//! module gives the simulator the same property. As the wave engine merges
//! outcomes (see [`crate::session`]), every absorbed trial is appended to
//! a JSONL journal and the file is fsync'd once per wave. After a crash,
//! [`start_or_resume`] replays the journal into a [`RecoveredCampaign`]
//! and the engine fast-forwards: replayed trials are folded through the
//! same accumulator the live path uses (no physics re-run), the RNG
//! streams re-derive from the campaign seed (they are counter-derived pure
//! functions, so "fast-forward" is free), and the continued run produces a
//! report and trace **bit-identical** to an uninterrupted one at any
//! `--jobs N`.
//!
//! ## Record schema
//!
//! One JSON object per line, every line carrying a FNV-1a digest of its
//! own prefix in a trailing `"crc"` field:
//!
//! * `campaign` — header: format version, master seed, a fingerprint of
//!   the full configuration, and the session count. A journal can only be
//!   resumed against the exact configuration that produced it.
//! * `session` — a session driver came up (index + operating point).
//! * `trial` — one absorbed trial: index, benchmark, verdict, wall time,
//!   strike telemetry, retry/quarantine bookkeeping and the EDAC records
//!   (epoch-relative, exactly as the runner produced them).
//! * `session_end` — the session reached a stopping rule.
//!
//! ## Fsync policy and torn-tail recovery
//!
//! Lines are buffered in memory and flushed + `fsync`'d at wave
//! boundaries (and at session start/end), so the crash-loss granularity
//! is one wave of trials — they are simply re-executed on resume, landing
//! on the same counter-derived streams. A crash mid-flush leaves a *torn
//! tail*: an unterminated final fragment, or a final line whose digest
//! does not verify. Recovery drops the tail and truncates the file back
//! to the last verified line. A digest failure *before* the final line is
//! not a torn write — it is corruption, and recovery refuses it loudly.

use std::fs::OpenOptions;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use serscale_soc::edac::{EdacRecord, EdacSeverity};
use serscale_soc::platform::OperatingPoint;
use serscale_types::{ArrayKind, SimDuration, SimInstant};
use serscale_workload::Benchmark;

use crate::campaign::CampaignConfig;
use crate::classify::RunVerdict;
use crate::runner::RunOutcome;
use crate::session::{StopReason, TrialExecution};
use crate::trace::{fmt_f64, json_string};

/// The journal format version; bumped on any schema change so a resume
/// against records from another version fails loudly instead of silently
/// diverging.
pub const JOURNAL_VERSION: u32 = 1;

/// The journal file name inside a journal directory.
pub const JOURNAL_FILE: &str = "journal.jsonl";

/// The journal file path for a journal directory.
pub fn journal_path(dir: &Path) -> PathBuf {
    dir.join(JOURNAL_FILE)
}

/// FNV-1a over a byte string — the line digest and the config
/// fingerprint hash. Stable, dependency-free, and plenty for detecting
/// torn writes (this is not an integrity MAC).
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A fingerprint of the full campaign configuration (sessions, limits,
/// facility, Vmin source, seed). Two configs with the same fingerprint
/// replay the same trial grid, so a journal is only resumable against the
/// configuration that wrote it.
pub fn config_fingerprint(config: &CampaignConfig) -> u64 {
    fnv1a64(format!("{config:?}").as_bytes())
}

/// One journal record.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// The journal header: which campaign this is.
    Campaign {
        /// Format version ([`JOURNAL_VERSION`]).
        version: u32,
        /// The campaign master seed.
        seed: u64,
        /// [`config_fingerprint`] of the configuration.
        fingerprint: u64,
        /// How many sessions the campaign configures.
        sessions: u32,
    },
    /// A session driver came up.
    SessionStart {
        /// Session index in configuration order.
        session: u64,
        /// The operating point under test (consistency check on resume).
        point: OperatingPoint,
    },
    /// The canonical merge absorbed one trial.
    Trial {
        /// Session index the trial belongs to.
        session: u64,
        /// The absorbed execution.
        execution: TrialExecution,
    },
    /// The session reached a stopping rule.
    SessionEnd {
        /// Session index.
        session: u64,
        /// Why it stopped.
        reason: StopReason,
    },
}

impl Record {
    /// The header record for a configuration.
    pub fn campaign_header(config: &CampaignConfig) -> Self {
        Record::Campaign {
            version: JOURNAL_VERSION,
            seed: config.seed,
            fingerprint: config_fingerprint(config),
            sessions: u32::try_from(config.sessions.len()).expect("session count fits u32"),
        }
    }

    /// Serializes the record as one digest-carrying JSONL line (without
    /// the trailing newline).
    pub fn to_line(&self) -> String {
        let body = self.body_json();
        let crc = fnv1a64(body.as_bytes());
        format!("{},\"crc\":\"{crc:016x}\"}}", &body[..body.len() - 1])
    }

    /// The record as a JSON object *without* the digest field — the exact
    /// bytes the digest covers (with the closing brace).
    fn body_json(&self) -> String {
        match self {
            Record::Campaign {
                version,
                seed,
                fingerprint,
                sessions,
            } => format!(
                "{{\"rec\":\"campaign\",\"version\":{version},\"seed\":\"{seed:016x}\",\
                 \"fingerprint\":\"{fingerprint:016x}\",\"sessions\":{sessions}}}"
            ),
            Record::SessionStart { session, point } => format!(
                "{{\"rec\":\"session\",\"session\":{session},\"pmd_mv\":{},\"soc_mv\":{},\
                 \"freq_mhz\":{}}}",
                point.pmd.get(),
                point.soc.get(),
                point.frequency.get()
            ),
            Record::Trial { session, execution } => {
                let outcome = &execution.outcome;
                let (kind, notified) = verdict_to_parts(outcome.verdict);
                let mut edac = String::from("[");
                for (i, r) in outcome.edac.iter().enumerate() {
                    if i > 0 {
                        edac.push(',');
                    }
                    edac.push_str(&format!(
                        "[{},{},\"{}\"]",
                        fmt_f64(r.time.as_secs()),
                        json_string(&r.array.to_string()),
                        r.severity
                    ));
                }
                edac.push(']');
                format!(
                    "{{\"rec\":\"trial\",\"session\":{session},\"trial\":{},\"benchmark\":{},\
                     \"verdict\":\"{kind}\",\"ce_notified\":{notified},\"wall_s\":{},\
                     \"strikes\":{},\"retries\":{},\"quarantined\":{},\"edac\":{edac}}}",
                    execution.trial,
                    json_string(&outcome.benchmark.to_string()),
                    fmt_f64(outcome.wall_time.as_secs()),
                    outcome.sram_strikes,
                    execution.retries,
                    execution.quarantined,
                )
            }
            Record::SessionEnd { session, reason } => format!(
                "{{\"rec\":\"session_end\",\"session\":{session},\"reason\":\"{reason:?}\"}}"
            ),
        }
    }

    /// Parses one journal line, verifying its digest.
    pub fn parse_line(line: &str) -> Result<Self, String> {
        let crc_at = line
            .rfind(",\"crc\":\"")
            .ok_or_else(|| "line has no crc field".to_string())?;
        let body = format!("{}}}", &line[..crc_at]);
        let json = Json::parse(line)?;
        let claimed = json
            .get("crc")
            .and_then(Json::str)
            .ok_or_else(|| "crc is not a string".to_string())?;
        let claimed = u64::from_str_radix(claimed, 16).map_err(|e| format!("bad crc: {e}"))?;
        if claimed != fnv1a64(body.as_bytes()) {
            return Err("crc mismatch".to_string());
        }
        Self::from_json(&json)
    }

    fn from_json(json: &Json) -> Result<Self, String> {
        let rec = json
            .get("rec")
            .and_then(Json::str)
            .ok_or_else(|| "missing rec tag".to_string())?;
        let field_u64 = |name: &str| {
            json.get(name)
                .and_then(Json::u64)
                .ok_or_else(|| format!("missing or non-integer {name}"))
        };
        let field_hex = |name: &str| {
            json.get(name)
                .and_then(Json::str)
                .ok_or_else(|| format!("missing {name}"))
                .and_then(|s| {
                    u64::from_str_radix(s, 16).map_err(|e| format!("bad hex {name}: {e}"))
                })
        };
        match rec {
            "campaign" => Ok(Record::Campaign {
                version: u32::try_from(field_u64("version")?)
                    .map_err(|_| "version out of range".to_string())?,
                seed: field_hex("seed")?,
                fingerprint: field_hex("fingerprint")?,
                sessions: u32::try_from(field_u64("sessions")?)
                    .map_err(|_| "session count out of range".to_string())?,
            }),
            "session" => {
                let mv = |name: &str| {
                    field_u64(name)
                        .and_then(|v| u32::try_from(v).map_err(|_| format!("{name} out of range")))
                };
                Ok(Record::SessionStart {
                    session: field_u64("session")?,
                    point: OperatingPoint {
                        pmd: serscale_types::Millivolts::new(mv("pmd_mv")?),
                        soc: serscale_types::Millivolts::new(mv("soc_mv")?),
                        frequency: serscale_types::Megahertz::new(mv("freq_mhz")?),
                    },
                })
            }
            "trial" => {
                let benchmark = json
                    .get("benchmark")
                    .and_then(Json::str)
                    .ok_or_else(|| "missing benchmark".to_string())
                    .and_then(benchmark_from_name)?;
                let kind = json
                    .get("verdict")
                    .and_then(Json::str)
                    .ok_or_else(|| "missing verdict".to_string())?;
                let notified = json
                    .get("ce_notified")
                    .and_then(Json::bool)
                    .ok_or_else(|| "missing ce_notified".to_string())?;
                let verdict = verdict_from_parts(kind, notified)?;
                let wall_s = json
                    .get("wall_s")
                    .and_then(Json::f64)
                    .filter(|w| w.is_finite() && *w >= 0.0)
                    .ok_or_else(|| "missing or invalid wall_s".to_string())?;
                let mut edac = Vec::new();
                for entry in json
                    .get("edac")
                    .and_then(Json::array)
                    .ok_or_else(|| "missing edac array".to_string())?
                {
                    let triple = entry
                        .array()
                        .filter(|t| t.len() == 3)
                        .ok_or_else(|| "edac entry is not a triple".to_string())?;
                    let t_s = triple[0]
                        .f64()
                        .filter(|t| t.is_finite() && *t >= 0.0)
                        .ok_or_else(|| "bad edac time".to_string())?;
                    let array = triple[1]
                        .str()
                        .ok_or_else(|| "bad edac array name".to_string())
                        .and_then(array_from_name)?;
                    let severity = triple[2]
                        .str()
                        .ok_or_else(|| "bad edac severity".to_string())
                        .and_then(severity_from_name)?;
                    edac.push(EdacRecord {
                        time: SimInstant::EPOCH + SimDuration::from_secs(t_s),
                        array,
                        severity,
                    });
                }
                Ok(Record::Trial {
                    session: field_u64("session")?,
                    execution: TrialExecution {
                        trial: field_u64("trial")?,
                        outcome: RunOutcome {
                            benchmark,
                            verdict,
                            edac,
                            wall_time: SimDuration::from_secs(wall_s),
                            sram_strikes: field_u64("strikes")?,
                        },
                        retries: u32::try_from(field_u64("retries")?)
                            .map_err(|_| "retries out of range".to_string())?,
                        quarantined: json
                            .get("quarantined")
                            .and_then(Json::bool)
                            .ok_or_else(|| "missing quarantined".to_string())?,
                    },
                })
            }
            "session_end" => {
                let reason = json
                    .get("reason")
                    .and_then(Json::str)
                    .ok_or_else(|| "missing reason".to_string())?;
                Ok(Record::SessionEnd {
                    session: field_u64("session")?,
                    reason: reason_from_name(reason)?,
                })
            }
            other => Err(format!("unknown record type {other:?}")),
        }
    }
}

fn verdict_to_parts(verdict: RunVerdict) -> (&'static str, bool) {
    match verdict {
        RunVerdict::Correct => ("ok", false),
        RunVerdict::Sdc {
            with_hw_notification,
        } => ("sdc", with_hw_notification),
        RunVerdict::AppCrash => ("app_crash", false),
        RunVerdict::SysCrash => ("sys_crash", false),
    }
}

fn verdict_from_parts(kind: &str, notified: bool) -> Result<RunVerdict, String> {
    match kind {
        "ok" => Ok(RunVerdict::Correct),
        "sdc" => Ok(RunVerdict::Sdc {
            with_hw_notification: notified,
        }),
        "app_crash" => Ok(RunVerdict::AppCrash),
        "sys_crash" => Ok(RunVerdict::SysCrash),
        other => Err(format!("unknown verdict {other:?}")),
    }
}

fn benchmark_from_name(name: &str) -> Result<Benchmark, String> {
    Benchmark::ALL
        .into_iter()
        .find(|b| b.to_string() == name)
        .ok_or_else(|| format!("unknown benchmark {name:?}"))
}

fn array_from_name(name: &str) -> Result<ArrayKind, String> {
    ArrayKind::ALL
        .into_iter()
        .find(|a| a.to_string() == name)
        .ok_or_else(|| format!("unknown array {name:?}"))
}

fn severity_from_name(name: &str) -> Result<EdacSeverity, String> {
    match name {
        "CE" => Ok(EdacSeverity::Corrected),
        "UE" => Ok(EdacSeverity::Uncorrected),
        other => Err(format!("unknown severity {other:?}")),
    }
}

fn reason_from_name(name: &str) -> Result<StopReason, String> {
    match name {
        "ErrorEvents" => Ok(StopReason::ErrorEvents),
        "Fluence" => Ok(StopReason::Fluence),
        "BeamTime" => Ok(StopReason::BeamTime),
        other => Err(format!("unknown stop reason {other:?}")),
    }
}

/// The append side of the journal. Records are buffered in memory until
/// [`sync`](Self::sync) hands them to the OS — the wave engine calls
/// `sync` at every wave merge, making the wave the crash-loss granularity
/// for a *process* crash (the OS keeps written pages across a SIGKILL).
/// The costlier fdatasync — surviving a *machine* crash — is throttled to
/// once per [`FSYNC_INTERVAL`] of host time and forced by
/// [`sync_durable`](Self::sync_durable) when the journal is created and
/// when the writer drops, so journal overhead stays within the
/// campaign-throughput budget while a power loss costs at most
/// `FSYNC_INTERVAL` of replayable progress. Losing a journal suffix is
/// always safe: recovery simply re-simulates the missing trials on their
/// counter-derived streams.
#[derive(Debug)]
pub struct JournalWriter {
    file: std::fs::File,
    pending: String,
    last_fsync: Option<std::time::Instant>,
    /// Bytes handed to the OS since the last fdatasync.
    dirty: bool,
    /// Observe-only durability probe for the monitoring plane.
    probe: Option<SyncProbe>,
}

/// A shared, observe-only view of the journal's durability: how long ago
/// the last fdatasync landed. A monitoring endpoint holding a clone can
/// report fsync lag without any channel back into the writer — the probe
/// is a pair of atomics the writer stamps and readers load.
#[derive(Debug, Clone)]
pub struct SyncProbe {
    inner: std::sync::Arc<SyncProbeInner>,
}

#[derive(Debug)]
struct SyncProbeInner {
    epoch: std::time::Instant,
    /// Nanoseconds from `epoch` to the most recent fdatasync.
    last_sync_ns: std::sync::atomic::AtomicU64,
    /// Total fdatasyncs observed.
    syncs: std::sync::atomic::AtomicU64,
}

impl Default for SyncProbe {
    fn default() -> Self {
        Self::new()
    }
}

impl SyncProbe {
    /// A fresh probe; attach it with [`JournalWriter::attach_probe`].
    pub fn new() -> Self {
        SyncProbe {
            inner: std::sync::Arc::new(SyncProbeInner {
                epoch: std::time::Instant::now(),
                last_sync_ns: std::sync::atomic::AtomicU64::new(0),
                syncs: std::sync::atomic::AtomicU64::new(0),
            }),
        }
    }

    /// Records that an fdatasync just completed.
    fn mark(&self) {
        let now = u64::try_from(self.inner.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.inner
            .last_sync_ns
            .store(now, std::sync::atomic::Ordering::Relaxed);
        self.inner
            .syncs
            .fetch_add(1, std::sync::atomic::Ordering::Release);
    }

    /// How many fdatasyncs the writer has completed.
    pub fn syncs(&self) -> u64 {
        self.inner.syncs.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Host time since the last completed fdatasync, or `None` before the
    /// first one. Bounded by [`FSYNC_INTERVAL`] plus one wave during a
    /// healthy run — a growing lag means the journal has stalled.
    pub fn lag(&self) -> Option<std::time::Duration> {
        if self.syncs() == 0 {
            return None;
        }
        let last = self
            .inner
            .last_sync_ns
            .load(std::sync::atomic::Ordering::Relaxed);
        let now = u64::try_from(self.inner.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        Some(std::time::Duration::from_nanos(now.saturating_sub(last)))
    }
}

/// Host-time throttle between fdatasyncs on the per-wave sync path.
pub const FSYNC_INTERVAL: std::time::Duration = std::time::Duration::from_millis(50);

impl JournalWriter {
    fn from_file(file: std::fs::File) -> Self {
        JournalWriter {
            file,
            pending: String::new(),
            last_fsync: None,
            dirty: false,
            probe: None,
        }
    }

    /// Attaches a [`SyncProbe`] the writer stamps on every fdatasync, so
    /// a monitoring endpoint can report fsync lag. Observe-only: the
    /// probe never changes what or when the writer syncs.
    pub fn attach_probe(&mut self, probe: SyncProbe) {
        self.probe = Some(probe);
    }

    /// Buffers one record. Nothing reaches the OS until
    /// [`sync`](Self::sync).
    pub fn append(&mut self, record: &Record) {
        self.pending.push_str(&record.to_line());
        self.pending.push('\n');
    }

    /// Hands buffered records to the OS.
    fn flush(&mut self) -> std::io::Result<()> {
        if !self.pending.is_empty() {
            self.file.write_all(self.pending.as_bytes())?;
            self.pending.clear();
            self.dirty = true;
        }
        Ok(())
    }

    fn fdatasync(&mut self) -> std::io::Result<()> {
        self.file.sync_data()?;
        self.last_fsync = Some(std::time::Instant::now());
        self.dirty = false;
        if let Some(probe) = &self.probe {
            probe.mark();
        }
        Ok(())
    }

    /// Flushes buffered records to the OS, fdatasyncing at most once per
    /// [`FSYNC_INTERVAL`] (host time). Journal *content* never depends on
    /// when the fdatasync lands — only the machine-crash durability
    /// window does.
    ///
    /// # Errors
    ///
    /// Propagates the write or fsync failure — a journal that cannot
    /// reach stable storage cannot provide crash safety, so callers are
    /// expected to fail the run loudly rather than continue unjournaled.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.flush()?;
        if self.dirty
            && self
                .last_fsync
                .is_none_or(|at| at.elapsed() >= FSYNC_INTERVAL)
        {
            self.fdatasync()?;
        }
        Ok(())
    }

    /// Flushes buffered records and fdatasyncs regardless of the
    /// throttle — the journal-creation and shutdown path.
    ///
    /// # Errors
    ///
    /// Propagates the write or fsync failure, like [`sync`](Self::sync).
    pub fn sync_durable(&mut self) -> std::io::Result<()> {
        self.flush()?;
        if self.dirty || self.last_fsync.is_none() {
            self.fdatasync()?;
        }
        Ok(())
    }
}

impl Drop for JournalWriter {
    /// Best-effort final flush+fsync so a writer dropped between session
    /// boundaries still leaves every buffered record durable.
    fn drop(&mut self) {
        let _ = self.sync_durable();
    }
}

/// One session's journaled history.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredSession {
    /// Session index in configuration order.
    pub index: u64,
    /// The absorbed trials, in trial order (trial `i` at position `i`).
    pub trials: Vec<TrialExecution>,
    /// The journaled stop reason, if the session completed before the
    /// crash.
    pub ended: Option<StopReason>,
}

/// Everything a journal recovered about an interrupted campaign.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RecoveredCampaign {
    sessions: Vec<RecoveredSession>,
}

impl RecoveredCampaign {
    /// The recovered history for one session index, if the journal
    /// reached it.
    pub fn session(&self, index: u64) -> Option<&RecoveredSession> {
        self.sessions.iter().find(|s| s.index == index)
    }

    /// How many sessions the journal has any record of.
    pub fn sessions_seen(&self) -> usize {
        self.sessions.len()
    }

    /// Total journaled (replayable) trials across all sessions.
    pub fn trials_recovered(&self) -> u64 {
        self.sessions.iter().map(|s| s.trials.len() as u64).sum()
    }
}

fn invalid_data(message: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, message)
}

/// Parses raw journal bytes into records, returning the records of the
/// verified prefix and its byte length. An unterminated or
/// digest-failing *final* line is a torn tail and is dropped; an invalid
/// line anywhere before that is corruption and errors.
fn parse_journal(bytes: &[u8]) -> Result<(Vec<Record>, usize), String> {
    let mut records = Vec::new();
    let mut valid = 0usize;
    let mut offset = 0usize;
    while offset < bytes.len() {
        let Some(nl) = bytes[offset..].iter().position(|&b| b == b'\n') else {
            break; // Unterminated tail: torn write, drop it.
        };
        let line_end = offset + nl + 1;
        let line = std::str::from_utf8(&bytes[offset..offset + nl])
            .map_err(|_| "journal line is not UTF-8".to_string());
        match line.and_then(Record::parse_line) {
            Ok(record) => {
                records.push(record);
                valid = line_end;
                offset = line_end;
            }
            Err(e) => {
                if line_end >= bytes.len() {
                    break; // Invalid final line: torn flush, drop it.
                }
                return Err(format!("journal corrupted before the tail: {e}"));
            }
        }
    }
    Ok((records, valid))
}

/// Reads a journal file into its verified records without opening it for
/// writing — the offline-forensics path (`repro inspect`). Applies the
/// same torn-tail tolerance as recovery: an unterminated or
/// digest-failing *final* line is silently dropped, an invalid line
/// anywhere earlier is corruption.
///
/// # Errors
///
/// I/O errors reading the file, or a mid-file digest/parse failure.
pub fn read_journal(path: &Path) -> std::io::Result<Vec<Record>> {
    let bytes = std::fs::read(path)?;
    let (records, _valid) = parse_journal(&bytes).map_err(invalid_data)?;
    Ok(records)
}

/// Folds the post-header records into per-session histories, validating
/// ordering against the configuration.
fn build_recovered(
    records: &[Record],
    config: &CampaignConfig,
) -> Result<RecoveredCampaign, String> {
    let mut sessions: Vec<RecoveredSession> = Vec::new();
    for record in records {
        match record {
            Record::Campaign { .. } => {
                return Err("duplicate campaign header".to_string());
            }
            Record::SessionStart { session, point } => {
                if *session != sessions.len() as u64 {
                    return Err(format!(
                        "session {session} started out of order (expected {})",
                        sessions.len()
                    ));
                }
                let configured = config
                    .sessions
                    .get(sessions.len())
                    .map(|(p, _)| *p)
                    .ok_or_else(|| format!("session {session} beyond configuration"))?;
                if *point != configured {
                    return Err(format!(
                        "session {session} ran at {point:?}, configuration says {configured:?}"
                    ));
                }
                sessions.push(RecoveredSession {
                    index: *session,
                    trials: Vec::new(),
                    ended: None,
                });
            }
            Record::Trial { session, execution } => {
                let current = sessions
                    .last_mut()
                    .filter(|s| s.index == *session)
                    .ok_or_else(|| format!("trial for session {session} before its start"))?;
                if current.ended.is_some() {
                    return Err(format!("trial after session {session} ended"));
                }
                if execution.trial != current.trials.len() as u64 {
                    return Err(format!(
                        "session {session} trial {} out of order (expected {})",
                        execution.trial,
                        current.trials.len()
                    ));
                }
                current.trials.push(execution.clone());
            }
            Record::SessionEnd { session, reason } => {
                let current = sessions
                    .last_mut()
                    .filter(|s| s.index == *session)
                    .ok_or_else(|| format!("end for session {session} before its start"))?;
                if current.ended.is_some() {
                    return Err(format!("session {session} ended twice"));
                }
                current.ended = Some(*reason);
            }
        }
    }
    Ok(RecoveredCampaign { sessions })
}

/// Opens (or creates) the journal for a campaign in `dir`.
///
/// * Fresh (missing or empty journal): writes and fsyncs the campaign
///   header and returns no recovered state.
/// * Existing journal: verifies the header against `config` (version,
///   seed, fingerprint, session count), recovers the per-session trial
///   histories, truncates any torn tail, and positions the writer to
///   append.
///
/// A journal whose header was itself torn away recovers as fresh.
///
/// # Errors
///
/// I/O errors, a mid-file digest failure (corruption, not a torn tail),
/// a header that does not match `config`, or records inconsistent with
/// the configured session order.
pub fn start_or_resume(
    dir: &Path,
    config: &CampaignConfig,
) -> std::io::Result<(JournalWriter, Option<RecoveredCampaign>)> {
    std::fs::create_dir_all(dir)?;
    let path = journal_path(dir);
    let mut file = OpenOptions::new()
        .create(true)
        .truncate(false)
        .read(true)
        .write(true)
        .open(&path)?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;

    let (records, valid) = parse_journal(&bytes).map_err(invalid_data)?;
    if records.is_empty() {
        // Fresh journal (or one whose very first flush tore).
        file.set_len(0)?;
        file.seek(SeekFrom::Start(0))?;
        let mut writer = JournalWriter::from_file(file);
        writer.append(&Record::campaign_header(config));
        writer.sync_durable()?;
        return Ok((writer, None));
    }

    let expected = Record::campaign_header(config);
    if records[0] != expected {
        return Err(invalid_data(format!(
            "journal header {:?} does not match this campaign {expected:?}",
            records[0]
        )));
    }
    let recovered = build_recovered(&records[1..], config).map_err(invalid_data)?;

    file.set_len(valid as u64)?;
    file.seek(SeekFrom::Start(valid as u64))?;
    Ok((JournalWriter::from_file(file), Some(recovered)))
}

/// A minimal JSON value, kept as close to the wire as possible: numbers
/// stay raw tokens so 64-bit integers survive without a float round-trip
/// (the core crate deliberately has no serde-JSON backend — see the
/// workspace's vendored no-op `serde`).
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Json {
    Object(Vec<(String, Json)>),
    Array(Vec<Json>),
    String(String),
    Number(String),
    Bool(bool),
    Null,
}

impl Json {
    pub(crate) fn parse(text: &str) -> Result<Json, String> {
        let mut parser = JsonParser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err("trailing bytes after JSON value".to_string());
        }
        Ok(value)
    }

    pub(crate) fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub(crate) fn str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    pub(crate) fn u64(&self) -> Option<u64> {
        match self {
            Json::Number(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    pub(crate) fn f64(&self) -> Option<f64> {
        match self {
            Json::Number(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    pub(crate) fn bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub(crate) fn array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}",
                char::from(byte),
                self.pos
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.list(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-UTF-8 number".to_string())?;
        if raw.is_empty() || raw == "-" {
            return Err(format!("empty number at byte {start}"));
        }
        Ok(Json::Number(raw.to_string()))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|e| format!("bad \\u escape: {e}"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| "non-scalar \\u escape".to_string())?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err("bad escape".to_string()),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is validated
                    // UTF-8, so char boundaries are well-defined).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "non-UTF-8 string".to_string())?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn list(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("serscale-journal-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn config() -> CampaignConfig {
        let mut c = CampaignConfig::paper_scaled(0.001);
        c.seed = 7;
        c
    }

    fn sample_execution(trial: u64) -> TrialExecution {
        TrialExecution {
            trial,
            outcome: RunOutcome {
                benchmark: Benchmark::ALL[(trial % 6) as usize],
                verdict: RunVerdict::Sdc {
                    with_hw_notification: true,
                },
                edac: vec![
                    EdacRecord {
                        time: SimInstant::EPOCH + SimDuration::from_secs(0.125),
                        array: ArrayKind::L2Unified,
                        severity: EdacSeverity::Corrected,
                    },
                    EdacRecord {
                        time: SimInstant::EPOCH + SimDuration::from_secs(2.8400000000000003),
                        array: ArrayKind::L3Shared,
                        severity: EdacSeverity::Uncorrected,
                    },
                ],
                wall_time: SimDuration::from_secs(3.0999999999999996),
                sram_strikes: 11,
            },
            retries: 1,
            quarantined: false,
        }
    }

    #[test]
    fn every_record_type_round_trips() {
        let records = vec![
            Record::campaign_header(&config()),
            Record::SessionStart {
                session: 0,
                point: config().sessions[0].0,
            },
            Record::Trial {
                session: 0,
                execution: sample_execution(3),
            },
            Record::SessionEnd {
                session: 0,
                reason: StopReason::Fluence,
            },
        ];
        for record in records {
            let line = record.to_line();
            let parsed = Record::parse_line(&line).expect("round trip");
            assert_eq!(parsed, record, "line: {line}");
        }
    }

    #[test]
    fn digest_rejects_a_flipped_byte() {
        let line = Record::SessionEnd {
            session: 2,
            reason: StopReason::BeamTime,
        }
        .to_line();
        let tampered = line.replace("\"session\":2", "\"session\":3");
        assert!(Record::parse_line(&tampered).is_err());
    }

    #[test]
    fn fresh_journal_writes_a_verified_header() {
        let dir = temp_dir("fresh");
        let config = config();
        let (writer, recovered) = start_or_resume(&dir, &config).unwrap();
        assert!(recovered.is_none());
        drop(writer);
        let text = std::fs::read_to_string(journal_path(&dir)).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1);
        assert_eq!(
            Record::parse_line(lines[0]).unwrap(),
            Record::campaign_header(&config)
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_recovers_sessions_and_trials() {
        let dir = temp_dir("resume");
        let config = config();
        let (mut writer, _) = start_or_resume(&dir, &config).unwrap();
        writer.append(&Record::SessionStart {
            session: 0,
            point: config.sessions[0].0,
        });
        for t in 0..3 {
            writer.append(&Record::Trial {
                session: 0,
                execution: sample_execution(t),
            });
        }
        writer.append(&Record::SessionEnd {
            session: 0,
            reason: StopReason::BeamTime,
        });
        writer.append(&Record::SessionStart {
            session: 1,
            point: config.sessions[1].0,
        });
        writer.append(&Record::Trial {
            session: 1,
            execution: sample_execution(0),
        });
        writer.sync().unwrap();
        drop(writer);

        let (_, recovered) = start_or_resume(&dir, &config).unwrap();
        let recovered = recovered.expect("non-empty journal");
        assert_eq!(recovered.sessions_seen(), 2);
        assert_eq!(recovered.trials_recovered(), 4);
        let s0 = recovered.session(0).unwrap();
        assert_eq!(s0.trials.len(), 3);
        assert_eq!(s0.ended, Some(StopReason::BeamTime));
        assert_eq!(s0.trials[1], sample_execution(1));
        let s1 = recovered.session(1).unwrap();
        assert_eq!(s1.ended, None);
        assert_eq!(s1.trials.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_unterminated_tail_is_truncated() {
        let dir = temp_dir("torn-tail");
        let config = config();
        let (mut writer, _) = start_or_resume(&dir, &config).unwrap();
        writer.append(&Record::SessionStart {
            session: 0,
            point: config.sessions[0].0,
        });
        writer.sync().unwrap();
        drop(writer);
        let path = journal_path(&dir);
        let intact = std::fs::read(&path).unwrap();
        // Simulate a flush torn mid-record: a fragment with no newline.
        let mut torn = intact.clone();
        torn.extend_from_slice(b"{\"rec\":\"trial\",\"session\":0,\"tri");
        std::fs::write(&path, &torn).unwrap();

        let (_, recovered) = start_or_resume(&dir, &config).unwrap();
        let recovered = recovered.unwrap();
        assert_eq!(recovered.sessions_seen(), 1);
        assert_eq!(recovered.trials_recovered(), 0);
        assert_eq!(std::fs::read(&path).unwrap(), intact, "tail truncated");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_final_line_with_bad_digest_is_truncated() {
        let dir = temp_dir("torn-crc");
        let config = config();
        let (mut writer, _) = start_or_resume(&dir, &config).unwrap();
        writer.append(&Record::SessionStart {
            session: 0,
            point: config.sessions[0].0,
        });
        writer.sync().unwrap();
        drop(writer);
        let path = journal_path(&dir);
        let intact = std::fs::read(&path).unwrap();
        // A terminated final line whose digest does not verify.
        let mut torn = intact.clone();
        let mut bad = Record::SessionEnd {
            session: 0,
            reason: StopReason::Fluence,
        }
        .to_line()
        .into_bytes();
        let flip = bad.len() / 2;
        bad[flip] ^= 0x01;
        torn.extend_from_slice(&bad);
        torn.push(b'\n');
        std::fs::write(&path, &torn).unwrap();

        let (_, recovered) = start_or_resume(&dir, &config).unwrap();
        let recovered = recovered.unwrap();
        assert_eq!(recovered.session(0).unwrap().ended, None);
        assert_eq!(std::fs::read(&path).unwrap(), intact, "tail truncated");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_file_corruption_is_refused() {
        let dir = temp_dir("corrupt");
        let config = config();
        let (mut writer, _) = start_or_resume(&dir, &config).unwrap();
        writer.append(&Record::SessionStart {
            session: 0,
            point: config.sessions[0].0,
        });
        writer.append(&Record::SessionEnd {
            session: 0,
            reason: StopReason::BeamTime,
        });
        writer.sync().unwrap();
        drop(writer);
        let path = journal_path(&dir);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte in the *second* line (mid-file, lines follow it).
        let first_nl = bytes.iter().position(|&b| b == b'\n').unwrap();
        bytes[first_nl + 10] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let err = start_or_resume(&dir, &config).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("corrupted"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn journal_for_a_different_campaign_is_refused() {
        let dir = temp_dir("mismatch");
        let (writer, _) = start_or_resume(&dir, &config()).unwrap();
        drop(writer);
        let mut other = config();
        other.seed = 8;
        let err = start_or_resume(&dir, &other).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("does not match"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn journal_for_a_different_platform_is_refused() {
        // The platform spec folds into the config fingerprint, so an
        // X-Gene journal must never silently resume as a Zynq run.
        let dir = temp_dir("platform-mismatch");
        let (writer, _) = start_or_resume(&dir, &config()).unwrap();
        drop(writer);
        let mut zynq =
            CampaignConfig::for_platform_scaled(&serscale_soc::PlatformSpec::zynq_mpsoc(), 0.001);
        zynq.seed = 7;
        let err = start_or_resume(&dir, &zynq).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("does not match"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fingerprint_tracks_the_configuration() {
        let a = config_fingerprint(&config());
        assert_eq!(a, config_fingerprint(&config()), "deterministic");
        let mut scaled = config();
        scaled.sessions.truncate(2);
        assert_ne!(a, config_fingerprint(&scaled));
        // A different platform alone moves the fingerprint too.
        let zynq =
            CampaignConfig::for_platform_scaled(&serscale_soc::PlatformSpec::zynq_mpsoc(), 0.001);
        assert_ne!(config_fingerprint(&config()), {
            let mut z = zynq;
            z.seed = 7;
            config_fingerprint(&z)
        });
    }

    #[test]
    fn out_of_order_trials_are_refused() {
        let dir = temp_dir("order");
        let config = config();
        let (mut writer, _) = start_or_resume(&dir, &config).unwrap();
        writer.append(&Record::SessionStart {
            session: 0,
            point: config.sessions[0].0,
        });
        writer.append(&Record::Trial {
            session: 0,
            execution: sample_execution(5), // expected trial 0
        });
        // A later record keeps the bad one off the tail (tails are
        // forgiven as torn writes; mid-file inconsistency is not).
        writer.append(&Record::SessionEnd {
            session: 0,
            reason: StopReason::BeamTime,
        });
        writer.sync().unwrap();
        drop(writer);
        let err = start_or_resume(&dir, &config).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("out of order"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
