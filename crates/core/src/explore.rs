//! Voltage-space exploration: fine-grained SER/power sweeps and the
//! operating-point advisor of Design implication #2.
//!
//! The beam campaign sampled four voltages; the calibrated simulator can
//! sweep the whole regulator grid. [`sweep_voltage`] produces the
//! SER(V)/power(V)/SDC-FIT(V) curves between nominal and Vmin, and
//! [`recommend`] finds the paper's recommendation mechanically: the
//! lowest-power point whose predicted SDC FIT stays within a tolerance of
//! nominal — which lands a step or two above Vmin, never on it, because of
//! the margin-collapse cliff.

use serde::{Deserialize, Serialize};

use serscale_soc::PowerModel;
use serscale_types::{Fit, Flux, Millivolts, Watts, NYC_SEA_LEVEL_FLUX};

use crate::dut::DeviceUnderTest;

/// One voltage step of a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// PMD voltage at this step (the SoC rail follows the campaign's
    /// pairing rule: min(PMD, SoC nominal)).
    pub pmd: Millivolts,
    /// Package power.
    pub power: Watts,
    /// Chip-level observable SRAM upset rate, events/minute, under the
    /// campaign's working beam flux (the Figure 9 susceptibility axis).
    pub upsets_per_minute: f64,
    /// Predicted SDC FIT at NYC (datapath σ × mean consume probability).
    pub sdc_fit: Fit,
}

/// The analytic voltage sweep from `from` down to `to` (inclusive) on the
/// 5 mV grid at a fixed frequency, using the same physics the campaign
/// samples from — no Monte Carlo noise.
///
/// # Panics
///
/// Panics if `from < to`.
pub fn sweep_voltage(
    from: Millivolts,
    to: Millivolts,
    template: &DeviceUnderTest,
    power_model: &PowerModel,
    beam_flux: Flux,
) -> Vec<SweepPoint> {
    sweep_voltage_jobs(from, to, template, power_model, beam_flux, 1)
}

/// [`sweep_voltage`] with the grid points sharded over `jobs` worker
/// threads. Each point is an independent analytic evaluation, so the
/// result is identical to the sequential sweep at any `jobs`.
///
/// # Panics
///
/// Panics if `from < to` or `jobs == 0`.
pub fn sweep_voltage_jobs(
    from: Millivolts,
    to: Millivolts,
    template: &DeviceUnderTest,
    power_model: &PowerModel,
    beam_flux: Flux,
    jobs: usize,
) -> Vec<SweepPoint> {
    assert!(from >= to, "sweep runs downward: {from} → {to}");
    let mut grid = Vec::new();
    let mut v = from;
    loop {
        grid.push(v);
        if v <= to {
            break;
        }
        v = v.stepped_down(1);
    }
    crate::parallel::par_map(jobs, grid, |v| {
        sweep_point(v, template, power_model, beam_flux)
    })
}

/// Evaluates one grid point of the sweep.
fn sweep_point(
    v: Millivolts,
    template: &DeviceUnderTest,
    power_model: &PowerModel,
    beam_flux: Flux,
) -> SweepPoint {
    let mean_consume: f64 = serscale_workload::Benchmark::ALL
        .iter()
        .map(|b| b.profile().consume_probability())
        .sum::<f64>()
        / 6.0;
    let spec = template.soc().spec();
    let mut op = template.operating_point();
    op.pmd = v;
    // The campaign lowered both rails together, capped at the SoC
    // nominal (Table 3).
    op.soc = Millivolts::new(v.get().min(spec.soc_rail.nominal.get()));
    let dut = DeviceUnderTest::for_platform(spec, op, template.vmin());
    let upsets_per_minute = dut.total_observable_sram_sigma(1.0).event_rate(beam_flux) * 60.0;
    let sdc_fit = Fit::new(dut.datapath_sigma().fit_at(NYC_SEA_LEVEL_FLUX).get() * mean_consume);
    SweepPoint {
        pmd: v,
        power: power_model.total_power(op),
        upsets_per_minute,
        sdc_fit,
    }
}

/// The advisor: among swept points, pick the lowest-power one whose SDC
/// FIT stays within `tolerance × nominal` (e.g. `3.0` = accept up to 3×
/// the nominal SDC rate).
///
/// Returns `None` when even the first (nominal) point violates the
/// tolerance — impossible for tolerance ≥ 1.
///
/// # Panics
///
/// Panics if `points` is empty or `tolerance < 1`.
pub fn recommend(points: &[SweepPoint], tolerance: f64) -> Option<SweepPoint> {
    assert!(!points.is_empty(), "sweep produced no points");
    assert!(
        tolerance >= 1.0,
        "tolerance below 1 rejects the baseline itself"
    );
    let nominal_fit = points[0].sdc_fit.get().max(1e-12);
    points
        .iter()
        .filter(|p| p.sdc_fit.get() <= tolerance * nominal_fit)
        .min_by(|a, b| a.power.partial_cmp(&b.power).expect("finite power"))
        .copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use serscale_soc::platform::OperatingPoint;

    fn template() -> DeviceUnderTest {
        let point = OperatingPoint::nominal();
        DeviceUnderTest::xgene2(point, DeviceUnderTest::paper_vmin(point.frequency))
    }

    fn sweep() -> Vec<SweepPoint> {
        sweep_voltage(
            Millivolts::new(980),
            Millivolts::new(920),
            &template(),
            &PowerModel::xgene2(),
            Flux::per_cm2_s(1.5e6),
        )
    }

    #[test]
    fn sweep_covers_the_grid() {
        let points = sweep();
        assert_eq!(points.len(), 13); // 980..920 in 5 mV steps
        assert_eq!(points[0].pmd, Millivolts::new(980));
        assert_eq!(points[12].pmd, Millivolts::new(920));
    }

    #[test]
    fn power_and_susceptibility_move_oppositely() {
        let points = sweep();
        for pair in points.windows(2) {
            assert!(pair[1].power <= pair[0].power);
            assert!(pair[1].upsets_per_minute >= pair[0].upsets_per_minute);
            assert!(pair[1].sdc_fit.get() >= pair[0].sdc_fit.get());
        }
    }

    #[test]
    fn the_sdc_cliff_sits_in_the_last_two_steps() {
        // Design implication #2's mechanism: SDC FIT is gentle until a few
        // steps above Vmin, then explodes.
        let points = sweep();
        let at = |mv: u32| {
            points
                .iter()
                .find(|p| p.pmd.get() == mv)
                .expect("grid point")
                .sdc_fit
                .get()
        };
        assert!(at(930) < 3.0 * at(980), "930 mV still gentle");
        assert!(at(920) > 8.0 * at(980), "920 mV is over the cliff");
        assert!(at(920) > 4.0 * at(930), "the cliff is the last 10 mV");
    }

    #[test]
    fn advisor_recommends_above_vmin() {
        let points = sweep();
        let pick = recommend(&points, 3.0).expect("tolerance ≥ 1 always yields a point");
        // The paper's recommendation: 930 mV-ish, never 920.
        assert!(
            pick.pmd > Millivolts::new(920),
            "advisor must not sit on the cliff: picked {}",
            pick.pmd
        );
        assert!(
            pick.pmd <= Millivolts::new(940),
            "advisor should harvest most of the guardband: picked {}",
            pick.pmd
        );
    }

    #[test]
    fn parallel_sweep_matches_sequential() {
        let sequential = sweep();
        for jobs in [2, 8] {
            let parallel = sweep_voltage_jobs(
                Millivolts::new(980),
                Millivolts::new(920),
                &template(),
                &PowerModel::xgene2(),
                Flux::per_cm2_s(1.5e6),
                jobs,
            );
            assert_eq!(parallel, sequential, "jobs = {jobs}");
        }
    }

    #[test]
    fn advisor_with_huge_tolerance_takes_vmin() {
        let points = sweep();
        let pick = recommend(&points, 1.0e6).unwrap();
        assert_eq!(pick.pmd, Millivolts::new(920));
    }

    #[test]
    fn advisor_with_unit_tolerance_stays_at_nominal() {
        let points = sweep();
        let pick = recommend(&points, 1.0).unwrap();
        assert_eq!(pick.pmd, Millivolts::new(980));
    }
}
