//! The campaign logbook: an ordered event trace of a session.
//!
//! A real beam campaign lives or dies by its logs — the paper's Control-PC
//! "controls, monitors, and collects data from the server" and every event
//! is timestamped for post-analysis (§3.6). [`SessionObserver`] is the
//! hook the session driver reports through, and [`Logbook`] is the default
//! observer: an append-only trace of runs, EDAC reports, failures and
//! recoveries that renders to a human-readable log.

use serde::{Deserialize, Serialize};

use serscale_soc::edac::EdacRecord;
use serscale_types::{SimDuration, SimInstant};
use serscale_workload::Benchmark;

use crate::classify::RunVerdict;
use crate::session::StopReason;

/// One timestamped logbook entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LogEvent {
    /// A benchmark run completed (any verdict).
    Run {
        /// When the run started.
        start: SimInstant,
        /// Which benchmark ran.
        benchmark: Benchmark,
        /// Its verdict.
        verdict: RunVerdict,
    },
    /// The hardware reported an EDAC event.
    Edac(EdacRecord),
    /// The Control-PC performed a recovery (restart or power cycle).
    Recovery {
        /// When the recovery began.
        start: SimInstant,
        /// How long it took.
        duration: SimDuration,
    },
    /// The session reached a stopping rule.
    SessionEnded {
        /// When.
        at: SimInstant,
        /// Why.
        reason: StopReason,
    },
}

/// The observation hook the session driver calls. All methods default to
/// no-ops, so observers implement only what they care about.
pub trait SessionObserver {
    /// A benchmark run finished.
    fn on_run(&mut self, _start: SimInstant, _benchmark: Benchmark, _verdict: RunVerdict) {}
    /// An EDAC record was harvested.
    fn on_edac(&mut self, _record: EdacRecord) {}
    /// A crash recovery consumed beam time.
    fn on_recovery(&mut self, _start: SimInstant, _duration: SimDuration) {}
    /// The session stopped.
    fn on_session_end(&mut self, _at: SimInstant, _reason: StopReason) {}
}

/// The do-nothing observer (what plain `TestSession::run` uses).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl SessionObserver for NoopObserver {}

/// An append-only event trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Logbook {
    events: Vec<LogEvent>,
}

impl Logbook {
    /// Creates an empty logbook.
    pub fn new() -> Self {
        Self::default()
    }

    /// All events in occurrence order.
    pub fn events(&self) -> &[LogEvent] {
        &self.events
    }

    /// The number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Only the failed runs, in order — the post-analysis list the paper's
    /// SDC/crash accounting starts from.
    pub fn failures(&self) -> impl Iterator<Item = &LogEvent> {
        self.events.iter().filter(|e| {
            matches!(
                e,
                LogEvent::Run { verdict, .. } if *verdict != RunVerdict::Correct
            )
        })
    }

    /// Renders the logbook as a human-readable experiment log.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            let line = match event {
                LogEvent::Run {
                    start,
                    benchmark,
                    verdict,
                } => match verdict {
                    RunVerdict::Correct => {
                        format!("{start} RUN  {benchmark}: ok")
                    }
                    RunVerdict::Sdc {
                        with_hw_notification,
                    } => format!(
                        "{start} RUN  {benchmark}: SDC (output mismatch{})",
                        if *with_hw_notification {
                            ", CE notification seen"
                        } else {
                            ""
                        }
                    ),
                    RunVerdict::AppCrash => {
                        format!("{start} RUN  {benchmark}: APPLICATION CRASH")
                    }
                    RunVerdict::SysCrash => {
                        format!("{start} RUN  {benchmark}: SYSTEM CRASH")
                    }
                },
                LogEvent::Edac(r) => format!("{} EDAC {} {}", r.time, r.array, r.severity),
                LogEvent::Recovery { start, duration } => {
                    format!("{start} RCVR board recovery, {duration}")
                }
                LogEvent::SessionEnded { at, reason } => {
                    format!("{at} END  session stopped: {reason:?}")
                }
            };
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

impl SessionObserver for Logbook {
    fn on_run(&mut self, start: SimInstant, benchmark: Benchmark, verdict: RunVerdict) {
        self.events.push(LogEvent::Run {
            start,
            benchmark,
            verdict,
        });
    }

    fn on_edac(&mut self, record: EdacRecord) {
        self.events.push(LogEvent::Edac(record));
    }

    fn on_recovery(&mut self, start: SimInstant, duration: SimDuration) {
        self.events.push(LogEvent::Recovery { start, duration });
    }

    fn on_session_end(&mut self, at: SimInstant, reason: StopReason) {
        self.events.push(LogEvent::SessionEnded { at, reason });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dut::DeviceUnderTest;
    use crate::session::{SessionLimits, TestSession};
    use serscale_soc::platform::OperatingPoint;
    use serscale_stats::SimRng;
    use serscale_types::Flux;

    fn logbook_for(minutes: f64, seed: u64) -> (crate::session::SessionReport, Logbook) {
        let point = OperatingPoint::vmin_2400();
        let dut = DeviceUnderTest::xgene2(point, DeviceUnderTest::paper_vmin(point.frequency));
        let mut session = TestSession::new(
            dut,
            Flux::per_cm2_s(1.5e6),
            SessionLimits::time_boxed(serscale_types::SimDuration::from_minutes(minutes)),
        );
        let mut logbook = Logbook::new();
        let report = session.run_observed(&mut SimRng::seed_from(seed), &mut logbook);
        (report, logbook)
    }

    #[test]
    fn logbook_traces_every_run_and_edac_record() {
        let (report, logbook) = logbook_for(60.0, 1);
        let runs = logbook
            .events()
            .iter()
            .filter(|e| matches!(e, LogEvent::Run { .. }))
            .count() as u64;
        let edacs = logbook
            .events()
            .iter()
            .filter(|e| matches!(e, LogEvent::Edac(_)))
            .count() as u64;
        assert_eq!(runs, report.runs);
        assert_eq!(edacs, report.memory_upsets);
    }

    #[test]
    fn logbook_failures_match_the_report() {
        let (report, logbook) = logbook_for(120.0, 2);
        assert_eq!(logbook.failures().count() as u64, report.error_events());
    }

    #[test]
    fn logbook_ends_with_the_stop_reason() {
        let (report, logbook) = logbook_for(10.0, 3);
        match logbook.events().last() {
            Some(LogEvent::SessionEnded { reason, .. }) => {
                assert_eq!(*reason, report.stop_reason)
            }
            other => panic!("last event must be SessionEnded, got {other:?}"),
        }
    }

    #[test]
    fn recoveries_follow_crashes() {
        let (_, logbook) = logbook_for(300.0, 4);
        let mut expecting_recovery = false;
        let mut saw_recovery = false;
        for event in logbook.events() {
            match event {
                LogEvent::Run { verdict, .. } => {
                    assert!(
                        !expecting_recovery,
                        "crash without recovery before next run"
                    );
                    expecting_recovery =
                        matches!(verdict, RunVerdict::AppCrash | RunVerdict::SysCrash);
                }
                LogEvent::Recovery { .. } => {
                    assert!(expecting_recovery, "recovery without a preceding crash");
                    expecting_recovery = false;
                    saw_recovery = true;
                }
                _ => {}
            }
        }
        assert!(
            saw_recovery,
            "a 5-hour Vmin session must include recoveries"
        );
    }

    #[test]
    fn render_is_greppable() {
        let (report, logbook) = logbook_for(120.0, 5);
        let text = logbook.render();
        assert_eq!(
            text.matches(" RUN ").count() as u64,
            report.runs,
            "one RUN line per run"
        );
        if report.failure_count(crate::classify::FailureClass::Sdc) > 0 {
            assert!(text.contains("SDC (output mismatch"));
        }
        assert!(text.trim_end().ends_with("session stopped: BeamTime"));
    }

    #[test]
    fn observed_and_plain_runs_agree() {
        let point = OperatingPoint::safe();
        let make = || {
            let dut = DeviceUnderTest::xgene2(point, DeviceUnderTest::paper_vmin(point.frequency));
            TestSession::new(
                dut,
                Flux::per_cm2_s(1.5e6),
                SessionLimits::time_boxed(serscale_types::SimDuration::from_minutes(20.0)),
            )
        };
        let plain = make().run(&mut SimRng::seed_from(9));
        let mut logbook = Logbook::new();
        let observed = make().run_observed(&mut SimRng::seed_from(9), &mut logbook);
        assert_eq!(plain, observed, "observation must not perturb the physics");
    }
}
