//! The campaign logbook: an ordered event trace of a session.
//!
//! A real beam campaign lives or dies by its logs — the paper's Control-PC
//! "controls, monitors, and collects data from the server" and every event
//! is timestamped for post-analysis (§3.6). [`SessionObserver`] is the
//! hook the session driver reports through, and [`Logbook`] is the default
//! observer: an append-only trace of runs, EDAC reports, failures and
//! recoveries that renders to a human-readable log.

use serde::{Deserialize, Serialize};

use serscale_soc::edac::EdacRecord;
use serscale_soc::platform::OperatingPoint;
use serscale_types::{SimDuration, SimInstant};
use serscale_workload::Benchmark;

use crate::classify::RunVerdict;
use crate::session::StopReason;

/// One timestamped logbook entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LogEvent {
    /// The session driver came up at an operating point (the logbook
    /// header: without it a trace cannot be interpreted — every
    /// cross-section in it is conditional on the V/F setting).
    SessionStarted {
        /// When (the session epoch).
        at: SimInstant,
        /// The voltage/frequency setting under test.
        point: OperatingPoint,
    },
    /// A benchmark run completed (any verdict).
    Run {
        /// When the run started.
        start: SimInstant,
        /// Which benchmark ran.
        benchmark: Benchmark,
        /// Its verdict.
        verdict: RunVerdict,
    },
    /// The hardware reported an EDAC event.
    Edac(EdacRecord),
    /// The Control-PC performed a recovery (restart or power cycle).
    Recovery {
        /// When the recovery began.
        start: SimInstant,
        /// How long it took.
        duration: SimDuration,
    },
    /// The session reached a stopping rule.
    SessionEnded {
        /// When.
        at: SimInstant,
        /// Why.
        reason: StopReason,
    },
}

/// What the wave engine measured while executing and merging one
/// speculative wave. Reported through [`SessionObserver::on_wave`] for
/// engine telemetry only: `host_nanos` is *host* wall-clock (it varies
/// run to run and across `--jobs`), so simulation-facing observers like
/// [`Logbook`] must ignore it — and the reference executor, which has no
/// waves, never reports it at all.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WaveStats {
    /// Index of the first trial in the wave.
    pub first_trial: u64,
    /// How many trials the wave launched speculatively.
    pub planned: usize,
    /// How many outcomes the canonical merge absorbed before a stopping
    /// rule fired (the rest were discarded speculation).
    pub absorbed: usize,
    /// Host wall-clock nanoseconds spent executing and merging the wave.
    pub host_nanos: u64,
    /// Retry attempts spent by this wave's absorbed trials (panicking or
    /// timed-out attempts re-run on their own counter-derived streams).
    pub retries: u64,
    /// Absorbed trials that exhausted every retry and were quarantined.
    pub quarantined: u64,
    /// Per-worker busy/steal accounting for the wave's pool invocation
    /// (host-clock telemetry like `host_nanos`; a single inline entry at
    /// `jobs == 1`).
    pub pool: crate::parallel::PoolProfile,
}

impl WaveStats {
    /// The fraction of launched trials whose outcome was used — the wave
    /// engine's speculation efficiency (1.0 = nothing wasted).
    pub fn efficiency(&self) -> f64 {
        if self.planned == 0 {
            1.0
        } else {
            self.absorbed as f64 / self.planned as f64
        }
    }
}

/// The observation hook the session driver calls. All methods default to
/// no-ops, so observers implement only what they care about.
///
/// ## Contract
///
/// Observation is strictly one-way: the driver never reads anything back,
/// so an observer cannot perturb the physics, the RNG streams or the
/// stopping rules (the `serscale-telemetry` determinism tests hold the
/// engine to this). Callbacks other than [`on_wave`](Self::on_wave) are
/// invoked by the single-threaded canonical merge in trial order, so
/// their simulated timestamps are nondecreasing and identical at any
/// `--jobs` count.
pub trait SessionObserver {
    /// The session driver started at an operating point (fires before any
    /// run, from both the wave engine and the reference executor).
    fn on_session_start(&mut self, _at: SimInstant, _point: OperatingPoint) {}
    /// A benchmark run finished.
    fn on_run(&mut self, _start: SimInstant, _benchmark: Benchmark, _verdict: RunVerdict) {}
    /// An EDAC record was harvested.
    fn on_edac(&mut self, _record: EdacRecord) {}
    /// A crash recovery consumed beam time.
    fn on_recovery(&mut self, _start: SimInstant, _duration: SimDuration) {}
    /// The session stopped.
    fn on_session_end(&mut self, _at: SimInstant, _reason: StopReason) {}
    /// The wave engine executed and merged one speculative wave.
    ///
    /// Engine telemetry, not simulation history: wave boundaries depend on
    /// `--jobs` and `host_nanos` on the host's clock, so trace-equivalence
    /// observers must leave this as the default no-op ([`Logbook`] does).
    fn on_wave(&mut self, _stats: WaveStats) {}
}

/// Forwarding impl so `&mut observer` is itself an observer: drivers can
/// take observers by value (e.g. [`Tee`]) while callers keep ownership.
impl<T: SessionObserver + ?Sized> SessionObserver for &mut T {
    fn on_session_start(&mut self, at: SimInstant, point: OperatingPoint) {
        (**self).on_session_start(at, point);
    }
    fn on_run(&mut self, start: SimInstant, benchmark: Benchmark, verdict: RunVerdict) {
        (**self).on_run(start, benchmark, verdict);
    }
    fn on_edac(&mut self, record: EdacRecord) {
        (**self).on_edac(record);
    }
    fn on_recovery(&mut self, start: SimInstant, duration: SimDuration) {
        (**self).on_recovery(start, duration);
    }
    fn on_session_end(&mut self, at: SimInstant, reason: StopReason) {
        (**self).on_session_end(at, reason);
    }
    fn on_wave(&mut self, stats: WaveStats) {
        (**self).on_wave(stats);
    }
}

/// Fans every callback out to two observers, `a` first — so a [`Logbook`]
/// and a telemetry collector can watch the same run without bespoke glue:
/// `tee(&mut logbook, &mut telemetry)`.
pub fn tee<A: SessionObserver, B: SessionObserver>(a: A, b: B) -> Tee<A, B> {
    Tee(a, b)
}

/// The two-way fan-out observer built by [`tee`]. Nests for wider fans:
/// `tee(a, tee(b, c))`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Tee<A, B>(pub A, pub B);

impl<A: SessionObserver, B: SessionObserver> SessionObserver for Tee<A, B> {
    fn on_session_start(&mut self, at: SimInstant, point: OperatingPoint) {
        self.0.on_session_start(at, point);
        self.1.on_session_start(at, point);
    }
    fn on_run(&mut self, start: SimInstant, benchmark: Benchmark, verdict: RunVerdict) {
        self.0.on_run(start, benchmark, verdict);
        self.1.on_run(start, benchmark, verdict);
    }
    fn on_edac(&mut self, record: EdacRecord) {
        self.0.on_edac(record);
        self.1.on_edac(record);
    }
    fn on_recovery(&mut self, start: SimInstant, duration: SimDuration) {
        self.0.on_recovery(start, duration);
        self.1.on_recovery(start, duration);
    }
    fn on_session_end(&mut self, at: SimInstant, reason: StopReason) {
        self.0.on_session_end(at, reason);
        self.1.on_session_end(at, reason);
    }
    fn on_wave(&mut self, stats: WaveStats) {
        self.0.on_wave(stats.clone());
        self.1.on_wave(stats);
    }
}

/// The do-nothing observer (what plain `TestSession::run` uses).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl SessionObserver for NoopObserver {}

/// An append-only event trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Logbook {
    events: Vec<LogEvent>,
}

impl Logbook {
    /// Creates an empty logbook.
    pub fn new() -> Self {
        Self::default()
    }

    /// All events in occurrence order.
    pub fn events(&self) -> &[LogEvent] {
        &self.events
    }

    /// The number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Only the failed runs, in order — the post-analysis list the paper's
    /// SDC/crash accounting starts from.
    pub fn failures(&self) -> impl Iterator<Item = &LogEvent> {
        self.events.iter().filter(|e| {
            matches!(
                e,
                LogEvent::Run { verdict, .. } if *verdict != RunVerdict::Correct
            )
        })
    }

    /// Renders the logbook as a human-readable experiment log, headed by
    /// the session's operating point (a trace is meaningless without the
    /// V/F setting it was recorded under).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            let line = match event {
                LogEvent::SessionStarted { at, point } => format!(
                    "{at} HEAD session at {} (PMD {}, SoC {}, {})",
                    point.label(),
                    point.pmd,
                    point.soc,
                    point.frequency
                ),
                LogEvent::Run {
                    start,
                    benchmark,
                    verdict,
                } => match verdict {
                    RunVerdict::Correct => {
                        format!("{start} RUN  {benchmark}: ok")
                    }
                    RunVerdict::Sdc {
                        with_hw_notification,
                    } => format!(
                        "{start} RUN  {benchmark}: SDC (output mismatch{})",
                        if *with_hw_notification {
                            ", CE notification seen"
                        } else {
                            ""
                        }
                    ),
                    RunVerdict::AppCrash => {
                        format!("{start} RUN  {benchmark}: APPLICATION CRASH")
                    }
                    RunVerdict::SysCrash => {
                        format!("{start} RUN  {benchmark}: SYSTEM CRASH")
                    }
                },
                LogEvent::Edac(r) => format!("{} EDAC {} {}", r.time, r.array, r.severity),
                LogEvent::Recovery { start, duration } => {
                    format!("{start} RCVR board recovery, {duration}")
                }
                LogEvent::SessionEnded { at, reason } => {
                    format!("{at} END  session stopped: {reason:?}")
                }
            };
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// Serializes the logbook as one JSON object per line (JSONL) — the
    /// machine-readable twin of [`render`](Self::render), and the format
    /// the telemetry exporter embeds in its event stream. Timestamps are
    /// simulated seconds, so two campaign traces diff line-by-line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            out.push_str(&event.to_json());
            out.push('\n');
        }
        out
    }
}

impl LogEvent {
    /// One flat JSON object (`{"event":...}`) describing this entry.
    pub fn to_json(&self) -> String {
        match self {
            LogEvent::SessionStarted { at, point } => format!(
                "{{\"event\":\"session_start\",\"t_s\":{},\"pmd_mv\":{},\"soc_mv\":{},\
                 \"freq_mhz\":{}}}",
                fmt_f64(at.as_secs()),
                point.pmd.get(),
                point.soc.get(),
                point.frequency.get()
            ),
            LogEvent::Run {
                start,
                benchmark,
                verdict,
            } => {
                let (kind, notified) = match verdict {
                    RunVerdict::Correct => ("ok", false),
                    RunVerdict::Sdc {
                        with_hw_notification,
                    } => ("sdc", *with_hw_notification),
                    RunVerdict::AppCrash => ("app_crash", false),
                    RunVerdict::SysCrash => ("sys_crash", false),
                };
                format!(
                    "{{\"event\":\"run\",\"t_s\":{},\"benchmark\":{},\"verdict\":\"{kind}\",\
                     \"ce_notified\":{notified}}}",
                    fmt_f64(start.as_secs()),
                    json_string(&benchmark.to_string()),
                )
            }
            LogEvent::Edac(r) => format!(
                "{{\"event\":\"edac\",\"t_s\":{},\"array\":{},\"severity\":\"{}\",\
                 \"domain\":\"{}\"}}",
                fmt_f64(r.time.as_secs()),
                json_string(&r.array.to_string()),
                r.severity,
                r.array.voltage_domain()
            ),
            LogEvent::Recovery { start, duration } => format!(
                "{{\"event\":\"recovery\",\"t_s\":{},\"duration_s\":{}}}",
                fmt_f64(start.as_secs()),
                fmt_f64(duration.as_secs())
            ),
            LogEvent::SessionEnded { at, reason } => format!(
                "{{\"event\":\"session_end\",\"t_s\":{},\"reason\":\"{reason:?}\"}}",
                fmt_f64(at.as_secs())
            ),
        }
    }
}

/// Full-precision, bit-stable float formatting for the JSONL trace (the
/// shortest representation that round-trips, which `{}` guarantees).
/// Shared with the run journal, whose resume-equivalence contract leans
/// on the exact-round-trip property.
pub(crate) fn fmt_f64(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        // Keep integral values valid JSON numbers with a decimal point so
        // consumers that distinguish int/float see a stable type.
        format!("{x:.1}")
    } else {
        format!("{x}")
    }
}

/// Escapes a string into a JSON string literal (benchmark and array names
/// are ASCII identifiers today, but the trace format should not depend on
/// that staying true).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl SessionObserver for Logbook {
    fn on_session_start(&mut self, at: SimInstant, point: OperatingPoint) {
        self.events.push(LogEvent::SessionStarted { at, point });
    }

    fn on_run(&mut self, start: SimInstant, benchmark: Benchmark, verdict: RunVerdict) {
        self.events.push(LogEvent::Run {
            start,
            benchmark,
            verdict,
        });
    }

    fn on_edac(&mut self, record: EdacRecord) {
        self.events.push(LogEvent::Edac(record));
    }

    fn on_recovery(&mut self, start: SimInstant, duration: SimDuration) {
        self.events.push(LogEvent::Recovery { start, duration });
    }

    fn on_session_end(&mut self, at: SimInstant, reason: StopReason) {
        self.events.push(LogEvent::SessionEnded { at, reason });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dut::DeviceUnderTest;
    use crate::session::{SessionLimits, TestSession};
    use serscale_soc::platform::OperatingPoint;
    use serscale_stats::SimRng;
    use serscale_types::Flux;

    fn logbook_for(minutes: f64, seed: u64) -> (crate::session::SessionReport, Logbook) {
        let point = OperatingPoint::vmin_2400();
        let dut = DeviceUnderTest::xgene2(point, DeviceUnderTest::paper_vmin(point.frequency));
        let mut session = TestSession::new(
            dut,
            Flux::per_cm2_s(1.5e6),
            SessionLimits::time_boxed(serscale_types::SimDuration::from_minutes(minutes)),
        );
        let mut logbook = Logbook::new();
        let report = session.run_observed(&mut SimRng::seed_from(seed), &mut logbook);
        (report, logbook)
    }

    #[test]
    fn logbook_traces_every_run_and_edac_record() {
        let (report, logbook) = logbook_for(60.0, 1);
        let runs = logbook
            .events()
            .iter()
            .filter(|e| matches!(e, LogEvent::Run { .. }))
            .count() as u64;
        let edacs = logbook
            .events()
            .iter()
            .filter(|e| matches!(e, LogEvent::Edac(_)))
            .count() as u64;
        assert_eq!(runs, report.runs);
        assert_eq!(edacs, report.memory_upsets);
    }

    #[test]
    fn logbook_failures_match_the_report() {
        let (report, logbook) = logbook_for(120.0, 2);
        assert_eq!(logbook.failures().count() as u64, report.error_events());
    }

    #[test]
    fn logbook_ends_with_the_stop_reason() {
        let (report, logbook) = logbook_for(10.0, 3);
        match logbook.events().last() {
            Some(LogEvent::SessionEnded { reason, .. }) => {
                assert_eq!(*reason, report.stop_reason)
            }
            other => panic!("last event must be SessionEnded, got {other:?}"),
        }
    }

    #[test]
    fn recoveries_follow_crashes() {
        let (_, logbook) = logbook_for(300.0, 4);
        let mut expecting_recovery = false;
        let mut saw_recovery = false;
        for event in logbook.events() {
            match event {
                LogEvent::Run { verdict, .. } => {
                    assert!(
                        !expecting_recovery,
                        "crash without recovery before next run"
                    );
                    expecting_recovery =
                        matches!(verdict, RunVerdict::AppCrash | RunVerdict::SysCrash);
                }
                LogEvent::Recovery { .. } => {
                    assert!(expecting_recovery, "recovery without a preceding crash");
                    expecting_recovery = false;
                    saw_recovery = true;
                }
                _ => {}
            }
        }
        assert!(
            saw_recovery,
            "a 5-hour Vmin session must include recoveries"
        );
    }

    #[test]
    fn render_is_greppable() {
        let (report, logbook) = logbook_for(120.0, 5);
        let text = logbook.render();
        assert_eq!(
            text.matches(" RUN ").count() as u64,
            report.runs,
            "one RUN line per run"
        );
        if report.failure_count(crate::classify::FailureClass::Sdc) > 0 {
            assert!(text.contains("SDC (output mismatch"));
        }
        assert!(text.trim_end().ends_with("session stopped: BeamTime"));
    }

    #[test]
    fn render_heads_with_the_operating_point() {
        let (_, logbook) = logbook_for(10.0, 6);
        match logbook.events().first() {
            Some(LogEvent::SessionStarted { point, .. }) => {
                assert_eq!(*point, OperatingPoint::vmin_2400());
            }
            other => panic!("first event must be SessionStarted, got {other:?}"),
        }
        let text = logbook.render();
        let head = text.lines().next().unwrap();
        assert!(
            head.contains("HEAD session at 920mV@2.4 GHz"),
            "header line: {head}"
        );
        assert!(head.contains("SoC 920 mV"), "header line: {head}");
    }

    #[test]
    fn jsonl_covers_every_event_and_escapes() {
        let (report, logbook) = logbook_for(60.0, 7);
        let jsonl = logbook.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), logbook.len());
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"event\":"), "{line}");
        }
        assert_eq!(
            lines
                .iter()
                .filter(|l| l.contains("\"event\":\"run\""))
                .count() as u64,
            report.runs
        );
        assert!(lines[0].contains("\"event\":\"session_start\""));
        assert!(lines[0].contains("\"pmd_mv\":920"));
        assert!(lines.last().unwrap().contains("\"event\":\"session_end\""));
    }

    #[test]
    fn json_string_escapes_control_characters() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn tee_feeds_both_observers_in_order() {
        let point = OperatingPoint::safe();
        let dut = DeviceUnderTest::xgene2(point, DeviceUnderTest::paper_vmin(point.frequency));
        let mut session = TestSession::new(
            dut,
            Flux::per_cm2_s(1.5e6),
            SessionLimits::time_boxed(serscale_types::SimDuration::from_minutes(15.0)),
        );
        let mut left = Logbook::new();
        let mut right = Logbook::new();
        let mut both = tee(&mut left, &mut right);
        session.run_observed(&mut SimRng::seed_from(21), &mut both);
        assert!(!left.is_empty());
        assert_eq!(left, right, "tee must mirror the full trace");
    }

    #[test]
    fn wave_stats_efficiency() {
        let full = WaveStats {
            first_trial: 0,
            planned: 32,
            absorbed: 32,
            host_nanos: 1,
            ..WaveStats::default()
        };
        assert!((full.efficiency() - 1.0).abs() < 1e-12);
        let cut = WaveStats {
            first_trial: 32,
            planned: 32,
            absorbed: 8,
            host_nanos: 1,
            ..WaveStats::default()
        };
        assert!((cut.efficiency() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn observed_and_plain_runs_agree() {
        let point = OperatingPoint::safe();
        let make = || {
            let dut = DeviceUnderTest::xgene2(point, DeviceUnderTest::paper_vmin(point.frequency));
            TestSession::new(
                dut,
                Flux::per_cm2_s(1.5e6),
                SessionLimits::time_boxed(serscale_types::SimDuration::from_minutes(20.0)),
            )
        };
        let plain = make().run(&mut SimRng::seed_from(9));
        let mut logbook = Logbook::new();
        let observed = make().run_observed(&mut SimRng::seed_from(9), &mut logbook);
        assert_eq!(plain, observed, "observation must not perturb the physics");
    }
}
