//! Operating-policy comparison: DVFS throttling vs guardband harvesting.
//!
//! The paper's framing (§1) is that undervolting saves power *without
//! giving up performance*, unlike frequency scaling. This module makes
//! the three-way comparison concrete at each frequency on the PLL grid:
//!
//! * **DVFS**: the conservative P-state — the frequency's *nominal*
//!   voltage from the [`serscale_soc::dvfs`] table (what the platform
//!   does out of the box; the paper disabled it);
//! * **Harvested**: the same frequency at its characterized safe Vmin
//!   plus a configurable margin (Design implication #2's posture);
//! * and the relative performance each carries (∝ f for these
//!   compute-bound kernels).
//!
//! The output quantifies the paper's pitch: at full frequency, harvesting
//! buys most of a P-state's power saving at zero performance cost — at
//! the price of the SER increase the beam campaign measured.

use serde::{Deserialize, Serialize};

use serscale_soc::dvfs::DvfsTable;
use serscale_soc::platform::OperatingPoint;
use serscale_soc::{PlatformSpec, PowerModel};
use serscale_types::{Fit, Megahertz, Millivolts, Watts, NYC_SEA_LEVEL_FLUX};

use crate::dut::DeviceUnderTest;

/// One frequency's three-way comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PolicyRow {
    /// The clock frequency.
    pub frequency: Megahertz,
    /// Relative performance (1.0 at 2.4 GHz).
    pub performance: f64,
    /// The DVFS P-state voltage and power.
    pub dvfs_voltage: Millivolts,
    /// Power at the DVFS P-state.
    pub dvfs_power: Watts,
    /// The harvested (safe Vmin + margin) voltage and power.
    pub harvested_voltage: Millivolts,
    /// Power at the harvested point.
    pub harvested_power: Watts,
    /// Predicted SDC FIT at the harvested point (NYC).
    pub harvested_sdc_fit: Fit,
    /// Predicted SDC FIT at the DVFS point (NYC).
    pub dvfs_sdc_fit: Fit,
}

impl PolicyRow {
    /// The extra power harvesting saves over DVFS at this frequency.
    pub fn harvest_dividend(&self) -> Watts {
        self.dvfs_power - self.harvested_power
    }

    /// The SER price of that dividend: harvested/DVFS SDC-FIT ratio.
    pub fn ser_price(&self) -> f64 {
        self.harvested_sdc_fit.get() / self.dvfs_sdc_fit.get().max(1e-12)
    }
}

/// Builds the comparison across the PLL grid.
///
/// `margin_steps` is how many 5 mV regulator steps above the characterized
/// Vmin the harvested point sits (Design implication #2 argues for ≥ 2).
pub fn compare_policies(margin_steps: u32) -> Vec<PolicyRow> {
    compare_policies_for(&PlatformSpec::xgene2(), margin_steps)
}

/// [`compare_policies`] on an arbitrary platform: the DVFS table, power
/// model, Vmin anchors and rail caps all come from the spec.
pub fn compare_policies_for(spec: &PlatformSpec, margin_steps: u32) -> Vec<PolicyRow> {
    let table = DvfsTable::for_platform(spec);
    let power_model = PowerModel::for_platform(spec);
    let mean_consume: f64 = serscale_workload::Benchmark::ALL
        .iter()
        .map(|b| b.profile().consume_probability())
        .sum::<f64>()
        / 6.0;

    table
        .states()
        .iter()
        .map(|state| {
            let frequency = state.frequency;
            let vmin = spec.vmin_at(frequency);
            let harvested_voltage = vmin.stepped_up(margin_steps);
            let dvfs_point = table
                .operating_point_at(frequency)
                .expect("state comes from its own table");
            let harvested_point = OperatingPoint {
                pmd: harvested_voltage,
                soc: Millivolts::new(harvested_voltage.get().min(spec.soc_rail.nominal.get())),
                frequency,
            };
            let sdc_fit = |point: OperatingPoint| {
                let dut = DeviceUnderTest::for_platform(spec, point, vmin);
                Fit::new(dut.datapath_sigma().fit_at(NYC_SEA_LEVEL_FLUX).get() * mean_consume)
            };
            PolicyRow {
                frequency,
                performance: frequency.ratio_to(spec.freq_max),
                dvfs_voltage: state.voltage,
                dvfs_power: power_model.total_power(dvfs_point),
                harvested_voltage,
                harvested_power: power_model.total_power(harvested_point),
                harvested_sdc_fit: sdc_fit(harvested_point),
                dvfs_sdc_fit: sdc_fit(dvfs_point),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<PolicyRow> {
        compare_policies(2)
    }

    #[test]
    fn covers_the_pll_grid() {
        let rows = rows();
        assert_eq!(rows.len(), 8);
        assert_eq!(rows[7].frequency, Megahertz::new(2400));
        assert!((rows[7].performance - 1.0).abs() < 1e-12);
        assert!((rows[0].performance - 0.125).abs() < 1e-12);
    }

    #[test]
    fn harvesting_always_undercuts_dvfs_power() {
        for row in rows() {
            assert!(
                row.harvested_power < row.dvfs_power,
                "{}: {} !< {}",
                row.frequency,
                row.harvested_power,
                row.dvfs_power
            );
            assert!(row.harvested_voltage < row.dvfs_voltage);
        }
    }

    #[test]
    fn full_frequency_harvest_matches_the_papers_numbers() {
        // At 2.4 GHz, DVFS = nominal (980 mV, 20.40 W) and harvesting at
        // Vmin+2 steps = the paper's 930 mV "safe" point (~18.8 W):
        // ~1.6 W for free, performance untouched.
        let top = rows().into_iter().last().unwrap();
        assert_eq!(top.dvfs_voltage, Millivolts::new(980));
        assert_eq!(top.harvested_voltage, Millivolts::new(930));
        let dividend = top.harvest_dividend().get();
        assert!((1.0..2.5).contains(&dividend), "dividend = {dividend} W");
    }

    #[test]
    fn ser_price_is_finite_and_modest_at_margin_two() {
        // Two steps above Vmin keeps the SDC amplification off the cliff:
        // the price stays low single-digit at every frequency.
        for row in rows() {
            let price = row.ser_price();
            assert!(price >= 1.0, "{}: price {price}", row.frequency);
            assert!(price < 6.0, "{}: price {price}", row.frequency);
        }
    }

    #[test]
    fn zero_margin_pays_the_cliff() {
        // Sitting exactly on Vmin multiplies the SER price enormously at
        // full frequency — the quantitative form of implication #2.
        let on_cliff = compare_policies(0).into_iter().last().unwrap();
        let with_margin = compare_policies(2).into_iter().last().unwrap();
        assert!(
            on_cliff.ser_price() > 3.0 * with_margin.ser_price(),
            "cliff {} vs margin {}",
            on_cliff.ser_price(),
            with_margin.ser_price()
        );
    }

    #[test]
    fn zynq_policies_ride_their_own_grid() {
        let spec = PlatformSpec::zynq_mpsoc();
        let rows = compare_policies_for(&spec, 2);
        let top = rows.last().expect("non-empty grid");
        assert_eq!(top.frequency, spec.freq_max);
        assert!((top.performance - 1.0).abs() < 1e-12);
        for row in &rows {
            assert!(
                row.harvested_voltage <= spec.pmd_rail.nominal,
                "{}: harvested {} above the Zynq rail",
                row.frequency,
                row.harvested_voltage
            );
            assert!(
                row.harvested_power < row.dvfs_power || row.harvested_voltage == row.dvfs_voltage
            );
            assert!(row.ser_price() >= 1.0);
        }
    }

    #[test]
    fn performance_is_what_dvfs_gives_up() {
        // The whole point: to save what harvesting saves at 2.4 GHz, DVFS
        // must drop at least one P-state — and every P-state costs 12.5%
        // performance.
        let rows = rows();
        let top = &rows[7];
        let one_down = &rows[6];
        assert!(one_down.dvfs_power < top.harvested_power + Watts::new(3.0));
        assert!(one_down.performance < top.performance);
    }
}
