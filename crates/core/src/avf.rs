//! Architectural-Vulnerability-Factor estimation by statistical fault
//! injection — the paper's Design implication #3, implemented.
//!
//! > "The reported cache upset rates can be used in microarchitecture-level
//! > fault injection studies to estimate the application FIT rates of
//! > different microprocessor designs at scaled supply voltage levels."
//!
//! Beam testing measures the end-to-end rate but cannot localize faults;
//! fault injection can. This module runs the *actual benchmark kernels*
//! with single bit flips injected at uniformly random (time, word, bit)
//! coordinates and measures the probability that the flip corrupts the
//! output — the workload's AVF in the Mukherjee \[46\] sense, with a Wilson
//! 95 % interval from `serscale-stats`.
//!
//! Combining the measured AVF with a raw per-structure FIT (cross-section
//! × flux) predicts the application-level SDC FIT at any voltage, which is
//! exactly the methodology the design implication proposes — and the
//! prediction can be cross-checked against the simulated beam campaign.

use serde::{Deserialize, Serialize};

use serscale_stats::ci::wilson_ci;
use serscale_stats::SimRng;
use serscale_types::{Fit, Flux, Millivolts, NYC_SEA_LEVEL_FLUX};
use serscale_workload::kernel::Corruption;
use serscale_workload::Benchmark;

use crate::dut::DeviceUnderTest;

/// The result of a fault-injection campaign on one benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AvfEstimate {
    /// The injected benchmark.
    pub benchmark: Benchmark,
    /// Injections performed.
    pub injections: u32,
    /// Injections whose output mismatched the golden reference.
    pub corruptions: u32,
    /// Wilson 95 % lower bound on the AVF.
    pub lower: f64,
    /// Wilson 95 % upper bound on the AVF.
    pub upper: f64,
}

impl AvfEstimate {
    /// The point estimate: corrupted / injected.
    pub fn avf(&self) -> f64 {
        f64::from(self.corruptions) / f64::from(self.injections)
    }
}

/// Statistical fault injector for the benchmark kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultInjector {
    injections_per_benchmark: u32,
}

impl FaultInjector {
    /// Creates an injector.
    ///
    /// # Panics
    ///
    /// Panics if `injections_per_benchmark` is zero.
    pub fn new(injections_per_benchmark: u32) -> Self {
        assert!(injections_per_benchmark > 0, "need at least one injection");
        FaultInjector {
            injections_per_benchmark,
        }
    }

    /// Runs the injection campaign for one benchmark: every injection is a
    /// full kernel execution with one bit flipped at random coordinates,
    /// verdicted by bit-exact golden comparison.
    pub fn estimate(&self, rng: &mut SimRng, benchmark: Benchmark) -> AvfEstimate {
        let kernel = benchmark.kernel();
        let golden = kernel.golden();
        let mut corruptions = 0u32;
        for _ in 0..self.injections_per_benchmark {
            let corruption = Corruption::new(
                rng.uniform_in(0.0, 0.999),
                rng.below(1 << 20) as usize,
                rng.below(64) as u8,
            );
            if !kernel.run_corrupted(corruption).matches(&golden) {
                corruptions += 1;
            }
        }
        let (lower, upper) = wilson_ci(
            u64::from(corruptions),
            u64::from(self.injections_per_benchmark),
            0.95,
        );
        AvfEstimate {
            benchmark,
            injections: self.injections_per_benchmark,
            corruptions,
            lower,
            upper,
        }
    }

    /// Injection campaign across the whole suite.
    pub fn estimate_suite(&self, rng: &mut SimRng) -> Vec<AvfEstimate> {
        Benchmark::ALL
            .into_iter()
            .map(|b| self.estimate(&mut rng.fork_indexed("avf", b as u64), b))
            .collect()
    }
}

/// The IEEE-754 bit regions of a 64-bit float, for position-resolved AVF.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum BitClass {
    /// Bits 0–31: low mantissa — tiny relative perturbations.
    MantissaLow,
    /// Bits 32–51: high mantissa — visible relative perturbations.
    MantissaHigh,
    /// Bits 52–62: exponent — order-of-magnitude corruption.
    Exponent,
    /// Bit 63: sign.
    Sign,
}

impl BitClass {
    /// All classes, least significant first.
    pub const ALL: [BitClass; 4] = [
        BitClass::MantissaLow,
        BitClass::MantissaHigh,
        BitClass::Exponent,
        BitClass::Sign,
    ];

    /// The class's short name.
    pub const fn name(self) -> &'static str {
        match self {
            BitClass::MantissaLow => "mantissa-low",
            BitClass::MantissaHigh => "mantissa-high",
            BitClass::Exponent => "exponent",
            BitClass::Sign => "sign",
        }
    }

    /// Samples a bit index within this class.
    pub fn sample_bit(self, rng: &mut SimRng) -> u8 {
        match self {
            BitClass::MantissaLow => rng.below(32) as u8,
            BitClass::MantissaHigh => 32 + rng.below(20) as u8,
            BitClass::Exponent => 52 + rng.below(11) as u8,
            BitClass::Sign => 63,
        }
    }
}

impl std::fmt::Display for BitClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl FaultInjector {
    /// Position-resolved injection: AVF per IEEE-754 bit region. Exponent
    /// and sign flips essentially always corrupt a numeric kernel's
    /// output; low-mantissa flips are where architectural masking lives
    /// (rounding, overwrites, integer-coded state).
    pub fn estimate_by_bit_class(
        &self,
        rng: &mut SimRng,
        benchmark: Benchmark,
    ) -> Vec<(BitClass, AvfEstimate)> {
        let kernel = benchmark.kernel();
        let golden = kernel.golden();
        BitClass::ALL
            .into_iter()
            .map(|class| {
                let mut class_rng = rng.fork_indexed("bitclass", class as u64);
                let mut corruptions = 0u32;
                for _ in 0..self.injections_per_benchmark {
                    let corruption = Corruption::new(
                        class_rng.uniform_in(0.0, 0.999),
                        class_rng.below(1 << 20) as usize,
                        class.sample_bit(&mut class_rng),
                    );
                    if !kernel.run_corrupted(corruption).matches(&golden) {
                        corruptions += 1;
                    }
                }
                let (lower, upper) = wilson_ci(
                    u64::from(corruptions),
                    u64::from(self.injections_per_benchmark),
                    0.95,
                );
                (
                    class,
                    AvfEstimate {
                        benchmark,
                        injections: self.injections_per_benchmark,
                        corruptions,
                        lower,
                        upper,
                    },
                )
            })
            .collect()
    }
}

/// The design-implication-#3 prediction: application SDC FIT at a voltage
/// from (raw datapath FIT at that voltage) × (injected AVF) ×
/// (the benchmark's probability of holding live state when struck).
///
/// `consume_probability` plays the "live state" role the beam campaign
/// uses; the AVF then refines "consumed" into "actually corrupts the
/// output" with measured masking.
pub fn predicted_sdc_fit(dut: &DeviceUnderTest, avf: &AvfEstimate, natural_flux: Flux) -> Fit {
    let raw_fit = dut.datapath_sigma().fit_at(natural_flux);
    let profile = avf.benchmark.profile();
    Fit::new(raw_fit.get() * profile.consume_probability() * avf.avf())
}

/// Suite-average predicted SDC FIT at an operating voltage, comparable to
/// the beam campaign's measured SDC FIT.
pub fn predicted_suite_sdc_fit(dut: &DeviceUnderTest, avfs: &[AvfEstimate]) -> Fit {
    assert!(!avfs.is_empty(), "need at least one AVF estimate");
    let sum: f64 = avfs
        .iter()
        .map(|a| predicted_sdc_fit(dut, a, NYC_SEA_LEVEL_FLUX).get())
        .sum();
    Fit::new(sum / avfs.len() as f64)
}

/// A voltage-resolved SDC FIT prediction table (the "design space
/// exploration" rows implication #3 asks for).
pub fn sdc_fit_vs_voltage(
    avfs: &[AvfEstimate],
    voltages: &[Millivolts],
    template: &DeviceUnderTest,
) -> Vec<(Millivolts, Fit)> {
    voltages
        .iter()
        .map(|&v| {
            let mut point = template.operating_point();
            point.pmd = v;
            let dut = DeviceUnderTest::xgene2(point, template.vmin());
            (v, predicted_suite_sdc_fit(&dut, avfs))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use serscale_soc::platform::OperatingPoint;

    // Debug-mode kernel runs are slow; small samples suffice for the
    // invariants checked here (the example and benches run larger ones).
    fn injector() -> FaultInjector {
        FaultInjector::new(12)
    }

    #[test]
    fn avf_estimates_are_probabilities_with_brackets() {
        let mut rng = SimRng::seed_from(1);
        for est in injector().estimate_suite(&mut rng) {
            let avf = est.avf();
            assert!((0.0..=1.0).contains(&avf), "{:?}", est.benchmark);
            assert!(est.lower <= avf + 1e-12 && avf <= est.upper + 1e-12);
            assert_eq!(est.injections, 12);
        }
    }

    #[test]
    fn most_injected_flips_corrupt_dense_numeric_kernels() {
        // Bit flips in live f64 state rarely mask completely in CG/FT/LU —
        // the classic reason numeric codes have high SDC AVFs.
        let mut rng = SimRng::seed_from(2);
        let est = FaultInjector::new(40).estimate(&mut rng, Benchmark::Cg);
        assert!(est.avf() > 0.5, "CG AVF = {}", est.avf());
    }

    #[test]
    fn injection_is_deterministic_under_seed() {
        let run = |seed| {
            let mut rng = SimRng::seed_from(seed);
            injector().estimate(&mut rng, Benchmark::Is)
        };
        assert_eq!(run(3), run(3));
    }

    #[test]
    fn predicted_sdc_fit_scales_with_voltage() {
        let mut rng = SimRng::seed_from(4);
        let avfs = FaultInjector::new(12).estimate_suite(&mut rng);
        let vmin = DeviceUnderTest::paper_vmin(OperatingPoint::nominal().frequency);
        let template = DeviceUnderTest::xgene2(OperatingPoint::nominal(), vmin);
        let table = sdc_fit_vs_voltage(
            &avfs,
            &[
                Millivolts::new(980),
                Millivolts::new(930),
                Millivolts::new(920),
            ],
            &template,
        );
        assert_eq!(table.len(), 3);
        // FIT rises as voltage falls, with the Vmin cliff.
        assert!(table[1].1.get() > table[0].1.get());
        assert!(table[2].1.get() > 5.0 * table[1].1.get());
    }

    #[test]
    fn exponent_flips_corrupt_more_than_low_mantissa() {
        // CG: an exponent flip in the solution vector is catastrophic; a
        // low-mantissa flip can round away or vanish under convergence.
        let mut rng = SimRng::seed_from(6);
        let by_class = FaultInjector::new(24).estimate_by_bit_class(&mut rng, Benchmark::Cg);
        let avf = |c: BitClass| {
            by_class
                .iter()
                .find(|(class, _)| *class == c)
                .expect("class present")
                .1
                .avf()
        };
        assert!(avf(BitClass::Exponent) >= avf(BitClass::MantissaLow));
        assert!(
            avf(BitClass::Exponent) > 0.8,
            "exponent AVF = {}",
            avf(BitClass::Exponent)
        );
    }

    #[test]
    fn bit_class_sampling_stays_in_region() {
        let mut rng = SimRng::seed_from(7);
        for _ in 0..200 {
            assert!(BitClass::MantissaLow.sample_bit(&mut rng) < 32);
            let hi = BitClass::MantissaHigh.sample_bit(&mut rng);
            assert!((32..52).contains(&hi));
            let e = BitClass::Exponent.sample_bit(&mut rng);
            assert!((52..63).contains(&e));
            assert_eq!(BitClass::Sign.sample_bit(&mut rng), 63);
        }
    }

    #[test]
    fn prediction_brackets_the_campaign_scale() {
        // The implication-#3 prediction at nominal should land in the same
        // decade as the beam campaign's measured SDC FIT (paper: 2.54).
        let mut rng = SimRng::seed_from(5);
        let avfs = FaultInjector::new(12).estimate_suite(&mut rng);
        let vmin = DeviceUnderTest::paper_vmin(OperatingPoint::nominal().frequency);
        let dut = DeviceUnderTest::xgene2(OperatingPoint::nominal(), vmin);
        let fit = predicted_suite_sdc_fit(&dut, &avfs).get();
        assert!(fit > 0.3 && fit < 10.0, "predicted SDC FIT = {fit}");
    }
}
