//! Failure classification: from hardware fault outcome to software
//! verdict.
//!
//! The paper's taxonomy (§2.1): a bit upset either vanishes (masked),
//! silently corrupts the application output (**SDC**), kills the process
//! while Linux survives (**AppCrash**), or takes the whole machine down
//! (**SysCrash**). The Control-PC tells the crash flavours apart by
//! watchdog behaviour (§3.6): if the board still answers after a timeout,
//! the application crashed; if the connection is gone, the system did.
//!
//! The propagation constants here are the workload-averaged probabilities
//! that a given hardware outcome escalates to each verdict, calibrated so
//! the nominal-voltage failure mix reproduces Figure 8's 980 mV panel
//! (AppCrash 17.9 %, SysCrash 51.6 %, SDC 30.5 % of a 3.45 events/hour
//! total — see `DESIGN.md` §3).

use serde::{Deserialize, Serialize};

use serscale_stats::SimRng;
use serscale_types::SimDuration;

/// The three abnormal-behaviour classes of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FailureClass {
    /// Silent data corruption: output mismatch with no other symptom.
    Sdc,
    /// The benchmark process died or hung; the OS survived.
    AppCrash,
    /// The machine stopped responding entirely (or rebooted itself).
    SysCrash,
}

impl FailureClass {
    /// All classes in Figure 8's plotting order.
    pub const ALL: [FailureClass; 3] = [
        FailureClass::AppCrash,
        FailureClass::SysCrash,
        FailureClass::Sdc,
    ];
}

impl std::fmt::Display for FailureClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FailureClass::Sdc => "SDC",
            FailureClass::AppCrash => "AppCrash",
            FailureClass::SysCrash => "SysCrash",
        })
    }
}

/// The verdict of one benchmark run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RunVerdict {
    /// Output matched the golden reference; no crash.
    Correct,
    /// Output mismatch. `with_hw_notification` is true when a corrected-
    /// error EDAC event accompanied the corrupted run — the rare deceptive
    /// case of Figure 12.
    Sdc {
        /// Whether a corrected-error notification coincided with the run.
        with_hw_notification: bool,
    },
    /// The application died or hung; the OS answered the watchdog.
    AppCrash,
    /// The machine did not answer; a power cycle was required.
    SysCrash,
}

impl RunVerdict {
    /// The failure class, if the run failed.
    pub fn failure_class(&self) -> Option<FailureClass> {
        match self {
            RunVerdict::Correct => None,
            RunVerdict::Sdc { .. } => Some(FailureClass::Sdc),
            RunVerdict::AppCrash => Some(FailureClass::AppCrash),
            RunVerdict::SysCrash => Some(FailureClass::SysCrash),
        }
    }
}

/// How an uncorrectable or control-path fault escalates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EscalationModel {
    /// P(uncorrectable cache error → system crash).
    pub ue_to_syscrash: f64,
    /// P(uncorrectable cache error → application crash).
    pub ue_to_appcrash: f64,
    /// P(control-logic fault → system crash).
    pub ctrl_to_syscrash: f64,
    /// P(control-logic fault → application crash).
    pub ctrl_to_appcrash: f64,
}

impl EscalationModel {
    /// Calibrated against Figure 8's nominal-voltage mix (see module
    /// docs). The remainders are architectural masking (a UE in a clean or
    /// dead line; a control flip in an idle unit).
    pub fn calibrated() -> Self {
        EscalationModel {
            ue_to_syscrash: 0.50,
            ue_to_appcrash: 0.18,
            ctrl_to_syscrash: 0.55,
            ctrl_to_appcrash: 0.17,
        }
    }

    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]` or a pair sums past 1.
    pub fn new(
        ue_to_syscrash: f64,
        ue_to_appcrash: f64,
        ctrl_to_syscrash: f64,
        ctrl_to_appcrash: f64,
    ) -> Self {
        for p in [
            ue_to_syscrash,
            ue_to_appcrash,
            ctrl_to_syscrash,
            ctrl_to_appcrash,
        ] {
            assert!((0.0..=1.0).contains(&p), "probabilities must be in [0,1]");
        }
        assert!(
            ue_to_syscrash + ue_to_appcrash <= 1.0,
            "UE escalation exceeds certainty"
        );
        assert!(
            ctrl_to_syscrash + ctrl_to_appcrash <= 1.0,
            "control escalation exceeds certainty"
        );
        EscalationModel {
            ue_to_syscrash,
            ue_to_appcrash,
            ctrl_to_syscrash,
            ctrl_to_appcrash,
        }
    }

    /// Samples the fate of an uncorrectable cache error.
    pub fn escalate_ue(&self, rng: &mut SimRng) -> Option<FailureClass> {
        let u = rng.uniform();
        if u < self.ue_to_syscrash {
            Some(FailureClass::SysCrash)
        } else if u < self.ue_to_syscrash + self.ue_to_appcrash {
            Some(FailureClass::AppCrash)
        } else {
            None
        }
    }

    /// Samples the fate of a control-logic fault.
    pub fn escalate_control(&self, rng: &mut SimRng) -> Option<FailureClass> {
        let u = rng.uniform();
        if u < self.ctrl_to_syscrash {
            Some(FailureClass::SysCrash)
        } else if u < self.ctrl_to_syscrash + self.ctrl_to_appcrash {
            Some(FailureClass::AppCrash)
        } else {
            None
        }
    }
}

/// The Control-PC watchdog of §3.6: response-timeout classification and
/// recovery timing.
///
/// On any unexpected behaviour the Control-PC first tries to reach the
/// board and restart the application (AppCrash path); if the board does
/// not answer, it power-cycles it (SysCrash path). Both recoveries cost
/// wall-clock time during which the beam keeps delivering fluence but no
/// measurements are taken.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControlPc {
    /// How long the Control-PC waits before declaring a run unresponsive.
    pub response_timeout: SimDuration,
    /// Time to restart the benchmark after an application crash.
    pub app_restart_time: SimDuration,
    /// Time to power-cycle and reboot Linux after a system crash.
    pub reboot_time: SimDuration,
}

impl ControlPc {
    /// Plausible values for the paper's setup: a 10 s watchdog, ~15 s to
    /// restart a benchmark over SSH, ~120 s for a full power-cycle and
    /// CentOS boot.
    pub fn typical() -> Self {
        ControlPc {
            response_timeout: SimDuration::from_secs(10.0),
            app_restart_time: SimDuration::from_secs(15.0),
            reboot_time: SimDuration::from_secs(120.0),
        }
    }

    /// The wall-clock overhead a verdict adds beyond the run itself.
    pub fn recovery_overhead(&self, verdict: RunVerdict) -> SimDuration {
        match verdict {
            RunVerdict::Correct | RunVerdict::Sdc { .. } => SimDuration::ZERO,
            RunVerdict::AppCrash => self.response_timeout + self.app_restart_time,
            RunVerdict::SysCrash => self.response_timeout + self.reboot_time,
        }
    }
}

impl Default for ControlPc {
    fn default() -> Self {
        Self::typical()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_to_class() {
        assert_eq!(RunVerdict::Correct.failure_class(), None);
        assert_eq!(
            RunVerdict::Sdc {
                with_hw_notification: false
            }
            .failure_class(),
            Some(FailureClass::Sdc)
        );
        assert_eq!(
            RunVerdict::AppCrash.failure_class(),
            Some(FailureClass::AppCrash)
        );
        assert_eq!(
            RunVerdict::SysCrash.failure_class(),
            Some(FailureClass::SysCrash)
        );
    }

    #[test]
    fn escalation_frequencies_match_probabilities() {
        let m = EscalationModel::calibrated();
        let mut rng = SimRng::seed_from(5);
        let n = 50_000;
        let mut sys = 0;
        let mut app = 0;
        let mut masked = 0;
        for _ in 0..n {
            match m.escalate_ue(&mut rng) {
                Some(FailureClass::SysCrash) => sys += 1,
                Some(FailureClass::AppCrash) => app += 1,
                Some(FailureClass::Sdc) => unreachable!("UEs are detected, never silent"),
                None => masked += 1,
            }
        }
        let f = |c: i32| f64::from(c) / n as f64;
        assert!((f(sys) - 0.50).abs() < 0.01);
        assert!((f(app) - 0.18).abs() < 0.01);
        assert!((f(masked) - 0.32).abs() < 0.01);
    }

    #[test]
    fn control_escalation_sums_to_one() {
        let m = EscalationModel::calibrated();
        let mut rng = SimRng::seed_from(6);
        let outcomes: Vec<_> = (0..1000).map(|_| m.escalate_control(&mut rng)).collect();
        assert!(outcomes.iter().any(|o| o == &Some(FailureClass::SysCrash)));
        assert!(outcomes.iter().any(|o| o == &Some(FailureClass::AppCrash)));
        assert!(outcomes.iter().any(|o| o.is_none()));
    }

    #[test]
    #[should_panic(expected = "exceeds certainty")]
    fn overcommitted_escalation_rejected() {
        let _ = EscalationModel::new(0.7, 0.5, 0.1, 0.1);
    }

    #[test]
    fn recovery_overheads_ordered() {
        let pc = ControlPc::typical();
        let sdc = pc.recovery_overhead(RunVerdict::Sdc {
            with_hw_notification: false,
        });
        let app = pc.recovery_overhead(RunVerdict::AppCrash);
        let sys = pc.recovery_overhead(RunVerdict::SysCrash);
        assert!(sdc.is_zero());
        assert!(app < sys, "reboot must dominate restart");
        assert!(sys.as_secs() > 100.0);
    }

    /// Table-driven: every verdict variant maps to exactly one failure
    /// class (or none) and to the right recovery-cost bucket — including
    /// both SDC notification flavours, which must classify identically.
    #[test]
    fn verdict_classification_table() {
        let table: &[(RunVerdict, Option<FailureClass>, bool)] = &[
            (RunVerdict::Correct, None, false),
            (
                RunVerdict::Sdc {
                    with_hw_notification: false,
                },
                Some(FailureClass::Sdc),
                false,
            ),
            (
                RunVerdict::Sdc {
                    with_hw_notification: true,
                },
                Some(FailureClass::Sdc),
                false,
            ),
            (RunVerdict::AppCrash, Some(FailureClass::AppCrash), true),
            (RunVerdict::SysCrash, Some(FailureClass::SysCrash), true),
        ];
        let pc = ControlPc::typical();
        for &(verdict, class, costs_recovery) in table {
            assert_eq!(verdict.failure_class(), class, "{verdict:?}");
            assert_eq!(
                !pc.recovery_overhead(verdict).is_zero(),
                costs_recovery,
                "{verdict:?}"
            );
        }
    }

    /// Table-driven: degenerate escalation models behave deterministically
    /// at the probability extremes — an all-zero model masks every fault
    /// (the EDAC-masked path), a certainty model always crashes.
    #[test]
    fn escalation_extremes_table() {
        let never = EscalationModel::new(0.0, 0.0, 0.0, 0.0);
        let always_sys = EscalationModel::new(1.0, 0.0, 1.0, 0.0);
        let always_app = EscalationModel::new(0.0, 1.0, 0.0, 1.0);
        let mut rng = SimRng::seed_from(7);
        for _ in 0..500 {
            assert_eq!(never.escalate_ue(&mut rng), None);
            assert_eq!(never.escalate_control(&mut rng), None);
            assert_eq!(
                always_sys.escalate_ue(&mut rng),
                Some(FailureClass::SysCrash)
            );
            assert_eq!(
                always_sys.escalate_control(&mut rng),
                Some(FailureClass::SysCrash)
            );
            assert_eq!(
                always_app.escalate_ue(&mut rng),
                Some(FailureClass::AppCrash)
            );
            assert_eq!(
                always_app.escalate_control(&mut rng),
                Some(FailureClass::AppCrash)
            );
        }
    }

    #[test]
    fn failure_class_display() {
        assert_eq!(FailureClass::Sdc.to_string(), "SDC");
        assert_eq!(FailureClass::AppCrash.to_string(), "AppCrash");
        assert_eq!(FailureClass::SysCrash.to_string(), "SysCrash");
    }
}
