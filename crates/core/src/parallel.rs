//! A deterministic worker pool for embarrassingly parallel shards.
//!
//! The campaign engine splits a session into independent trials and a
//! voltage sweep into independent grid points; this module provides the
//! pool that executes such shards across threads while keeping the
//! *results* exactly what the sequential code would have produced:
//!
//! * **Order canonicalization** — work is dispatched as contiguous
//!   *chunks* of input items, each tagged with its queue index, and the
//!   output vector is reassembled in input order, so callers can reduce
//!   left-to-right exactly as the sequential loop does. Chunking keeps the
//!   channel round-trips per item negligible even for microsecond shards.
//! * **No shared mutable state** — each worker builds its own scratch
//!   state (e.g. a [`BenchmarkRunner`](crate::runner::BenchmarkRunner)
//!   with its strike buffers and envelope caches) via a factory closure;
//!   shards communicate only through bounded channels.
//! * **Panic isolation** — a panicking shard does not tear down the pool
//!   mid-flight. The pool stops feeding new work, drains the in-flight
//!   results, joins every worker, and only then resumes the first panic
//!   payload on the caller's thread, so the process-visible behavior
//!   matches the sequential loop panicking at that shard.
//!
//! Determinism across thread counts is *not* the pool's job alone: shards
//! must not read ambient state that depends on scheduling. The campaign
//! side guarantees that by deriving each trial's RNG with
//! [`SimRng::stream`](serscale_stats::SimRng::stream), which is a pure
//! function of (seed, session, trial).

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use crossbeam::channel;
use crossbeam::thread;

/// What one pool worker did during a [`par_map_with_profile`] call:
/// observe-only utilization accounting for the live monitoring plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkerReport {
    /// Host nanoseconds this worker spent inside the work closure.
    pub busy_nanos: u64,
    /// Shards (input items) this worker pulled off the queue, counted
    /// across every chunk it stole (work stealing makes the split uneven;
    /// the skew *is* the signal).
    pub shards: u64,
}

/// Per-worker utilization for one pool invocation. Produced alongside the
/// outputs by [`par_map_with_profile`]; purely host-clock telemetry, so it
/// varies run to run and must never feed back into the simulation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PoolProfile {
    /// One report per worker, in worker-index order (a single entry for
    /// the inline `jobs == 1` path).
    pub workers: Vec<WorkerReport>,
    /// Host wall nanoseconds of the whole invocation (feed → drain).
    pub wall_nanos: u64,
}

impl PoolProfile {
    /// A profile for work that ran inline on the calling thread.
    pub fn inline(wall_nanos: u64, shards: u64) -> Self {
        PoolProfile {
            workers: vec![WorkerReport {
                busy_nanos: wall_nanos,
                shards,
            }],
            wall_nanos,
        }
    }

    /// The longest single-worker busy time — the invocation's critical
    /// path. Wall time below this bound is unreachable at any worker
    /// count.
    pub fn critical_path_nanos(&self) -> u64 {
        self.workers.iter().map(|w| w.busy_nanos).max().unwrap_or(0)
    }

    /// Total busy nanoseconds summed across workers.
    pub fn busy_nanos(&self) -> u64 {
        self.workers.iter().map(|w| w.busy_nanos).sum()
    }

    /// Total idle nanoseconds: wall time not spent in the work closure,
    /// summed across workers (queue waits, channel sends, merge stalls).
    pub fn idle_nanos(&self) -> u64 {
        let span = self.wall_nanos.saturating_mul(self.workers.len() as u64);
        span.saturating_sub(self.busy_nanos())
    }

    /// Busy fraction of the pool's total worker-time, in `[0, 1]`
    /// (1.0 when the profile is empty, matching a no-op pool).
    pub fn utilization(&self) -> f64 {
        let span = self.wall_nanos.saturating_mul(self.workers.len() as u64);
        if span == 0 {
            1.0
        } else {
            (self.busy_nanos() as f64 / span as f64).min(1.0)
        }
    }
}

/// Why one supervised attempt failed (see [`call_caught`] and
/// [`call_with_deadline`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttemptFailure {
    /// The attempt panicked; the payload rendered as text.
    Panicked(String),
    /// The attempt exceeded its host-time budget and was abandoned.
    TimedOut,
}

impl std::fmt::Display for AttemptFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttemptFailure::Panicked(message) => write!(f, "panicked: {message}"),
            AttemptFailure::TimedOut => write!(f, "timed out"),
        }
    }
}

/// Renders a panic payload as text (the common `&str` / `String` cases;
/// anything else becomes a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// Runs a closure, converting a panic into an [`AttemptFailure`] instead
/// of unwinding — the supervision primitive behind trial retries.
///
/// # Errors
///
/// Returns [`AttemptFailure::Panicked`] when the closure panics.
pub fn call_caught<T>(f: impl FnOnce() -> T) -> Result<T, AttemptFailure> {
    catch_unwind(AssertUnwindSafe(f))
        .map_err(|payload| AttemptFailure::Panicked(panic_message(payload.as_ref())))
}

/// Runs a closure on a helper thread with a host-time budget. A closure
/// that finishes in time returns its value; one that panics reports
/// [`AttemptFailure::Panicked`]; one that exceeds the budget reports
/// [`AttemptFailure::TimedOut`] and is *abandoned* — the detached helper
/// thread keeps running until its closure returns, so callers must hand
/// over self-contained work (the trial runner passes an owned runner
/// clone, never shared state).
///
/// A zero budget fails immediately without launching the attempt, which
/// keeps zero-timeout behavior deterministic (useful in tests).
///
/// # Errors
///
/// Returns [`AttemptFailure::TimedOut`] or [`AttemptFailure::Panicked`]
/// as described above.
pub fn call_with_deadline<T: Send + 'static>(
    budget: Duration,
    f: impl FnOnce() -> T + Send + 'static,
) -> Result<T, AttemptFailure> {
    if budget.is_zero() {
        return Err(AttemptFailure::TimedOut);
    }
    let (tx, rx) = std::sync::mpsc::sync_channel::<Result<T, AttemptFailure>>(1);
    std::thread::spawn(move || {
        let result = catch_unwind(AssertUnwindSafe(f))
            .map_err(|payload| AttemptFailure::Panicked(panic_message(payload.as_ref())));
        let _ = tx.send(result);
    });
    match rx.recv_timeout(budget) {
        Ok(result) => result,
        Err(std::sync::mpsc::RecvTimeoutError::Timeout) => Err(AttemptFailure::TimedOut),
        Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => Err(AttemptFailure::Panicked(
            "attempt thread vanished".to_string(),
        )),
    }
}

/// The bounded exponential backoff before retry `attempt` (0-based):
/// `base × 2^attempt`, capped at one second. Host time only — the
/// simulated clock never sees it.
pub fn backoff_delay(base: Duration, attempt: u32) -> Duration {
    const CAP: Duration = Duration::from_secs(1);
    base.saturating_mul(1u32 << attempt.min(10)).min(CAP)
}

/// What a worker reports back for one chunk of shards.
enum ShardOutcome<O> {
    Done(Vec<O>),
    Panicked(Box<dyn std::any::Any + Send>),
}

/// The host's hardware thread count, probed once per process.
fn host_parallelism() -> usize {
    use std::sync::OnceLock;
    static CORES: OnceLock<usize> = OnceLock::new();
    *CORES.get_or_init(|| std::thread::available_parallelism().map_or(1, usize::from))
}

/// How many worker threads a `jobs` request actually spawns: `jobs`
/// capped at the host's hardware threads.
///
/// The engine's work is CPU-bound, so threads beyond the core count only
/// add context-switch and channel overhead — and the determinism contract
/// makes `jobs` a pure throughput knob (the report is bit-identical at
/// any value), so capping the *execution substrate* never changes a
/// result. Wave planning still uses the requested `jobs`.
pub fn effective_workers(jobs: usize) -> usize {
    jobs.min(host_parallelism())
}

/// Maps `work` over `items` on up to `jobs` worker threads, returning
/// outputs in input order.
///
/// Each worker calls `make_state()` once and threads the resulting scratch
/// value through every shard it steals. This is how the session driver
/// gives each worker its own [`BenchmarkRunner`](crate::runner) — and with
/// it the runner's per-worker scratch arenas (strike buffers, cached rate
/// envelopes), which amortize across every trial the worker executes
/// without any cross-thread sharing.
///
/// The thread count actually spawned is [`effective_workers`]`(jobs)`:
/// oversubscribing a CPU-bound pool past the core count only adds
/// overhead, and the determinism contract guarantees the outputs don't
/// depend on the worker count. When that leaves a single worker (or there
/// are fewer than two items) everything runs inline on the calling
/// thread — the reference path the determinism tests compare against.
///
/// Work is dispatched in contiguous *chunks* of several shards, not one
/// shard at a time, so per-shard channel traffic amortizes away for the
/// microsecond-scale trials the campaign engine feeds through here.
///
/// # Panics
///
/// Panics if `jobs == 0`, and re-raises the first shard panic after the
/// pool has drained (see module docs).
pub fn par_map_with<S, I, O, M, F>(jobs: usize, items: Vec<I>, make_state: M, work: F) -> Vec<O>
where
    I: Send,
    O: Send,
    M: Fn() -> S + Sync,
    F: Fn(&mut S, I) -> O + Sync,
{
    par_map_with_profile(jobs, items, make_state, work).0
}

/// [`par_map_with`] that also reports per-worker utilization: the outputs
/// (identical, bit for bit, to the unprofiled call) plus a
/// [`PoolProfile`] of busy/steal accounting per worker. Profiling is
/// observe-only — timestamps are taken around the work closure and never
/// influence scheduling, ordering or the outputs.
///
/// # Panics
///
/// Panics if `jobs == 0`, and re-raises shard panics like
/// [`par_map_with`].
pub fn par_map_with_profile<S, I, O, M, F>(
    jobs: usize,
    items: Vec<I>,
    make_state: M,
    work: F,
) -> (Vec<O>, PoolProfile)
where
    I: Send,
    O: Send,
    M: Fn() -> S + Sync,
    F: Fn(&mut S, I) -> O + Sync,
{
    assert!(jobs > 0, "a pool needs at least one worker");
    let workers = effective_workers(jobs).min(items.len());
    if workers <= 1 || items.len() < 2 {
        let clock = Instant::now();
        let mut state = make_state();
        let shards = items.len() as u64;
        let outputs: Vec<O> = items
            .into_iter()
            .map(|item| work(&mut state, item))
            .collect();
        let wall = u64::try_from(clock.elapsed().as_nanos()).unwrap_or(u64::MAX);
        return (outputs, PoolProfile::inline(wall, shards));
    }
    pooled_map(workers, items, make_state, work)
}

/// The threaded pool behind [`par_map_with_profile`], with an exact
/// worker count (no host-parallelism clamp — tests use this to exercise
/// the threaded path regardless of the machine they run on).
fn pooled_map<S, I, O, M, F>(
    workers: usize,
    items: Vec<I>,
    make_state: M,
    work: F,
) -> (Vec<O>, PoolProfile)
where
    I: Send,
    O: Send,
    M: Fn() -> S + Sync,
    F: Fn(&mut S, I) -> O + Sync,
{
    let clock = Instant::now();
    let total = items.len();
    let workers = workers.min(total).max(1);
    // Contiguous chunks, roughly four per worker: large enough that the
    // per-chunk channel round-trip amortizes across many shards, small
    // enough that the end-of-queue imbalance stays a fraction of one
    // worker's share.
    let chunk_size = total.div_ceil(workers * 4).max(1);
    let chunks: Vec<(usize, Vec<I>)> = {
        let mut iter = items.into_iter();
        let mut chunks = Vec::with_capacity(total.div_ceil(chunk_size));
        loop {
            let chunk: Vec<I> = iter.by_ref().take(chunk_size).collect();
            if chunk.is_empty() {
                break;
            }
            chunks.push((chunks.len(), chunk));
        }
        chunks
    };
    let slot_count = chunks.len();
    // Small bounded buffers: enough to keep workers from starving between
    // collector wakeups, small enough that a stop-rule overshoot or a
    // panic leaves little queued work behind.
    let (work_tx, work_rx) = channel::bounded::<(usize, Vec<I>)>(2 * workers);
    let (out_tx, out_rx) = channel::bounded::<(usize, ShardOutcome<O>)>(2 * workers);
    let abort = AtomicBool::new(false);

    let scope_result = thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let chunk_rx = work_rx.clone();
                let result_tx = out_tx.clone();
                let make_state = &make_state;
                let work = &work;
                let abort = &abort;
                scope.spawn(move |_| {
                    let mut state = make_state();
                    let mut report = WorkerReport::default();
                    for (index, chunk) in chunk_rx.iter() {
                        if abort.load(Ordering::Relaxed) {
                            break;
                        }
                        let shards = chunk.len() as u64;
                        let chunk_clock = Instant::now();
                        let outcome = match catch_unwind(AssertUnwindSafe(|| {
                            chunk
                                .into_iter()
                                .map(|item| work(&mut state, item))
                                .collect::<Vec<O>>()
                        })) {
                            Ok(outputs) => ShardOutcome::Done(outputs),
                            Err(payload) => {
                                abort.store(true, Ordering::Relaxed);
                                ShardOutcome::Panicked(payload)
                            }
                        };
                        report.busy_nanos = report.busy_nanos.saturating_add(
                            u64::try_from(chunk_clock.elapsed().as_nanos()).unwrap_or(u64::MAX),
                        );
                        report.shards += shards;
                        if result_tx.send((index, outcome)).is_err() {
                            break;
                        }
                    }
                    report
                })
            })
            .collect();
        // The scope-local handles must go: workers hold the only remaining
        // clones, so the collector's iterator can observe the disconnect.
        drop(work_rx);
        drop(out_tx);

        // Feed from a dedicated thread so a full work queue can never
        // deadlock against a full result queue.
        let abort_ref = &abort;
        scope.spawn(move |_| {
            for pair in chunks {
                if abort_ref.load(Ordering::Relaxed) || work_tx.send(pair).is_err() {
                    break;
                }
            }
        });

        let mut slots: Vec<Option<Vec<O>>> = (0..slot_count).map(|_| None).collect();
        let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;
        for (index, outcome) in out_rx.iter() {
            match outcome {
                ShardOutcome::Done(outputs) => slots[index] = Some(outputs),
                ShardOutcome::Panicked(payload) => {
                    if first_panic.is_none() {
                        first_panic = Some(payload);
                    }
                }
            }
        }
        // The result channel disconnected, so every worker has exited its
        // loop; joining here only collects their utilization reports.
        let workers: Vec<WorkerReport> = handles
            .into_iter()
            .map(|handle| handle.join().unwrap_or_default())
            .collect();
        (slots, first_panic, workers)
    });

    let (slots, first_panic, workers) = match scope_result {
        Ok(collected) => collected,
        Err(payload) => resume_unwind(payload),
    };
    if let Some(payload) = first_panic {
        resume_unwind(payload);
    }
    let outputs = slots
        .into_iter()
        .flat_map(|slot| slot.expect("pool drained without a panic, so every chunk reported"))
        .collect();
    let profile = PoolProfile {
        workers,
        wall_nanos: u64::try_from(clock.elapsed().as_nanos()).unwrap_or(u64::MAX),
    };
    (outputs, profile)
}

/// [`par_map_with`] for stateless shards.
///
/// # Panics
///
/// Panics if `jobs == 0`, and re-raises shard panics like
/// [`par_map_with`].
pub fn par_map<I, O, F>(jobs: usize, items: Vec<I>, work: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    par_map_with(jobs, items, || (), |(), item| work(item))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn outputs_come_back_in_input_order() {
        for jobs in [1, 2, 3, 8] {
            let got = par_map(jobs, (0..257u64).collect(), |x| x * x);
            let want: Vec<u64> = (0..257).map(|x| x * x).collect();
            assert_eq!(got, want, "jobs = {jobs}");
        }
    }

    #[test]
    fn threaded_pool_preserves_order_for_awkward_chunk_splits() {
        // Force the threaded path (the public API may inline on small
        // hosts) with totals that don't divide evenly into chunks.
        for workers in [2usize, 3, 8] {
            for total in [2u64, 7, 257, 1000] {
                let (got, _) = pooled_map(workers, (0..total).collect(), || (), |(), x| x * x);
                let want: Vec<u64> = (0..total).map(|x| x * x).collect();
                assert_eq!(got, want, "workers = {workers}, total = {total}");
            }
        }
    }

    #[test]
    fn effective_workers_caps_at_host_parallelism() {
        assert_eq!(effective_workers(1), 1);
        let cap = effective_workers(usize::MAX);
        assert!(cap >= 1);
        assert_eq!(effective_workers(cap + 7), cap);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert_eq!(par_map(4, Vec::<u32>::new(), |x| x), Vec::<u32>::new());
        assert_eq!(par_map(4, vec![9], |x| x + 1), vec![10]);
    }

    #[test]
    fn worker_state_is_built_per_worker_and_reused() {
        let factories = AtomicUsize::new(0);
        let workers = 3;
        let (out, _) = pooled_map(
            workers,
            (0..100u64).collect(),
            || {
                factories.fetch_add(1, Ordering::Relaxed);
                0u64
            },
            |calls, item| {
                *calls += 1;
                item
            },
        );
        assert_eq!(out.len(), 100);
        let built = factories.load(Ordering::Relaxed);
        assert!(
            built <= workers,
            "at most one state per worker, got {built}"
        );
    }

    #[test]
    fn shard_panic_propagates_after_drain() {
        let caught = catch_unwind(|| {
            pooled_map(
                4,
                (0..64u32).collect(),
                || (),
                |(), x| {
                    if x == 13 {
                        panic!("shard 13 exploded");
                    }
                    x
                },
            )
        });
        let payload = caught.expect_err("panic must propagate");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(message.contains("shard 13"), "got: {message}");
    }

    #[test]
    fn call_caught_reports_the_panic_message() {
        assert_eq!(call_caught(|| 41 + 1), Ok(42));
        let failure =
            call_caught(|| -> u32 { panic!("boom at trial 7") }).expect_err("panic must be caught");
        assert_eq!(failure, AttemptFailure::Panicked("boom at trial 7".into()));
    }

    #[test]
    fn deadline_lets_fast_work_through_and_abandons_slow_work() {
        let fast = call_with_deadline(Duration::from_secs(30), || 7u32);
        assert_eq!(fast, Ok(7));
        let slow = call_with_deadline(Duration::from_millis(5), || {
            std::thread::sleep(Duration::from_secs(10));
            0u32
        });
        assert_eq!(slow, Err(AttemptFailure::TimedOut));
    }

    #[test]
    fn zero_deadline_fails_without_running_the_closure() {
        // `f` must be 'static for the helper thread, so probe via a static
        // sentinel: the closure would flip the flag if it ever ran.
        static TOUCHED: AtomicBool = AtomicBool::new(false);
        let out = call_with_deadline(Duration::ZERO, || {
            TOUCHED.store(true, Ordering::Relaxed);
            1u32
        });
        assert_eq!(out, Err(AttemptFailure::TimedOut));
        assert!(!TOUCHED.load(Ordering::Relaxed), "closure must not launch");
    }

    #[test]
    fn deadline_surfaces_panics_from_the_helper_thread() {
        let out = call_with_deadline(Duration::from_secs(30), || -> u32 {
            panic!("helper exploded")
        });
        assert_eq!(out, Err(AttemptFailure::Panicked("helper exploded".into())));
    }

    #[test]
    fn backoff_doubles_and_saturates_at_one_second() {
        let base = Duration::from_millis(10);
        assert_eq!(backoff_delay(base, 0), Duration::from_millis(10));
        assert_eq!(backoff_delay(base, 1), Duration::from_millis(20));
        assert_eq!(backoff_delay(base, 3), Duration::from_millis(80));
        assert_eq!(backoff_delay(base, 9), Duration::from_secs(1));
        assert_eq!(backoff_delay(base, 63), Duration::from_secs(1));
        assert_eq!(backoff_delay(Duration::ZERO, 5), Duration::ZERO);
    }

    #[test]
    fn profile_accounts_for_every_shard() {
        let work = |(): &mut (), x: u64| {
            // A little real work so busy time is nonzero.
            (0..50u64).fold(x, |acc, i| acc.wrapping_mul(31).wrapping_add(i))
        };
        for jobs in [1usize, 3, 8] {
            let (out, profile) = par_map_with_profile(jobs, (0..200u64).collect(), || (), work);
            assert_eq!(out.len(), 200);
            let shards: u64 = profile.workers.iter().map(|w| w.shards).sum();
            assert_eq!(shards, 200, "jobs = {jobs}");
            assert!(!profile.workers.is_empty() && profile.workers.len() <= jobs);
            assert!(profile.critical_path_nanos() <= profile.busy_nanos());
            assert!((0.0..=1.0).contains(&profile.utilization()));
        }
        for workers in [3usize, 8] {
            let (out, profile) = pooled_map(workers, (0..200u64).collect(), || (), work);
            assert_eq!(out.len(), 200);
            let shards: u64 = profile.workers.iter().map(|w| w.shards).sum();
            assert_eq!(shards, 200, "workers = {workers}");
            assert_eq!(profile.workers.len(), workers);
            assert!(profile.critical_path_nanos() <= profile.busy_nanos());
        }
    }

    #[test]
    fn inline_profile_is_one_fully_busy_worker() {
        let (_, profile) = par_map_with_profile(1, vec![1u8, 2, 3], || (), |(), x| x);
        assert_eq!(profile.workers.len(), 1);
        assert_eq!(profile.workers[0].shards, 3);
        assert_eq!(profile.workers[0].busy_nanos, profile.wall_nanos);
        assert_eq!(profile.idle_nanos(), 0);
    }

    #[test]
    fn profiled_outputs_match_unprofiled() {
        let plain = par_map(4, (0..300u32).collect(), |x| x ^ 0x5a5a);
        let (profiled, _) =
            par_map_with_profile(4, (0..300u32).collect(), || (), |(), x| x ^ 0x5a5a);
        assert_eq!(plain, profiled);
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let reference = par_map(1, (0..500u64).collect(), |x| x.wrapping_mul(0x9e37));
        for workers in [2, 5, 16] {
            let (got, _) = pooled_map(
                workers,
                (0..500u64).collect(),
                || (),
                |(), x| x.wrapping_mul(0x9e37),
            );
            assert_eq!(got, reference, "workers = {workers}");
        }
    }
}
