//! The full beam campaign: Vmin anchoring, sessions in sequence, one
//! consolidated report — the whole of Table 2 in one call.

use serde::{Deserialize, Serialize};

use serscale_beam::facility::{BeamFacility, BeamPosition};
use serscale_soc::platform::OperatingPoint;
use serscale_soc::PlatformSpec;
use serscale_stats::SimRng;
use serscale_types::{Flux, Megahertz, Millivolts, SimDuration};
use serscale_undervolt::{characterize::Characterizer, timing::TimingFailureModel};

use crate::dut::DeviceUnderTest;
use crate::journal::{JournalWriter, RecoveredCampaign};
use crate::scheduler::{CancelToken, Cancelled};
use crate::session::{ExecutionPlan, RetryPolicy, SessionLimits, SessionReport, TestSession};

/// Where the per-frequency safe Vmin anchoring the logic amplification
/// comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VminSource {
    /// Use the paper's characterized values (920 mV @ 2.4 GHz, 790 mV @
    /// 900 MHz, interpolated elsewhere). Deterministic.
    Paper,
    /// Run the offline undervolting characterization of §4.1 first and use
    /// its sweep result (`trials` executions per benchmark per 5 mV step).
    Characterized {
        /// Trials per benchmark per voltage step.
        trials: u32,
    },
}

/// Campaign configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Master seed; everything downstream forks from it.
    pub seed: u64,
    /// The irradiation facility.
    pub facility: BeamFacility,
    /// Where the DUT sits in the beam.
    pub position: BeamPosition,
    /// The sessions to run, in order.
    pub sessions: Vec<(OperatingPoint, SessionLimits)>,
    /// How the safe Vmin is obtained.
    pub vmin_source: VminSource,
    /// The platform under test: arrays, rails, Vmin anchors and physics
    /// all come off this spec, and it is folded into the journal's
    /// configuration fingerprint so a resume on the wrong platform fails
    /// cleanly.
    pub platform: PlatformSpec,
}

impl CampaignConfig {
    /// The paper's campaign: TNF beam, halo position, and the four
    /// sessions of Table 2 replayed as their realized beam-time exposures
    /// (1651 / 1618 / 453 / 165 minutes at 980 / 930 / 920 / 790 mV).
    pub fn paper() -> Self {
        Self::for_platform(&PlatformSpec::xgene2())
    }

    /// A campaign on an arbitrary platform: the spec's own declared
    /// session schedule under the paper's beam setup. For
    /// [`PlatformSpec::xgene2`] this is exactly
    /// [`CampaignConfig::paper`].
    pub fn for_platform(spec: &PlatformSpec) -> Self {
        let sessions = spec
            .campaign
            .iter()
            .map(|c| {
                (
                    c.point,
                    SessionLimits::time_boxed(SimDuration::from_minutes(c.minutes)),
                )
            })
            .collect();
        CampaignConfig {
            seed: 0x005e_5510_2023,
            facility: BeamFacility::tnf(),
            position: BeamPosition::halo(BeamPosition::PAPER_HALO_TRANSMISSION),
            sessions,
            vmin_source: VminSource::Paper,
            platform: spec.clone(),
        }
    }

    /// A scaled-down campaign (each session `fraction` of the paper's
    /// duration) for fast exploration and CI.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fraction ≤ 1`.
    pub fn paper_scaled(fraction: f64) -> Self {
        Self::for_platform_scaled(&PlatformSpec::xgene2(), fraction)
    }

    /// [`CampaignConfig::for_platform`] with every session time box
    /// scaled by `fraction`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fraction ≤ 1`.
    pub fn for_platform_scaled(spec: &PlatformSpec, fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction must be in (0, 1]"
        );
        let mut config = Self::for_platform(spec);
        for (_, limits) in &mut config.sessions {
            if let Some(d) = limits.max_duration {
                limits.max_duration = Some(d * fraction);
            }
        }
        config
    }
}

/// The consolidated campaign outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// The working flux the DUT saw.
    pub flux: Flux,
    /// The Vmin used per session frequency (anchors the logic model).
    pub vmins: Vec<(Megahertz, Millivolts)>,
    /// Per-session reports, in configuration order.
    pub sessions: Vec<SessionReport>,
    /// The platform the campaign ran on (its spec name).
    pub platform: String,
    /// The platform's nominal operating point — the baseline of every
    /// relative figure.
    pub nominal: OperatingPoint,
}

impl CampaignReport {
    /// Finds the session run at a given operating point.
    pub fn session_at(&self, point: OperatingPoint) -> Option<&SessionReport> {
        self.sessions.iter().find(|s| s.operating_point == point)
    }

    /// Total beam-on time of the campaign (the paper's "more than 64 beam
    /// hours").
    pub fn total_beam_time(&self) -> SimDuration {
        self.sessions.iter().map(|s| s.duration).sum()
    }

    /// The nominal-voltage session (the baseline of every relative
    /// figure), if the campaign ran one.
    pub fn baseline(&self) -> Option<&SessionReport> {
        self.session_at(self.nominal)
    }
}

/// Drives a configured campaign.
#[derive(Debug, Clone)]
pub struct Campaign {
    config: CampaignConfig,
}

impl Campaign {
    /// Creates a campaign.
    pub fn new(config: CampaignConfig) -> Self {
        Campaign { config }
    }

    /// The configuration.
    pub const fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// The safe Vmin for a frequency per the configured source.
    fn vmin_for(&self, root: &SimRng, frequency: Megahertz) -> Millivolts {
        let platform = &self.config.platform;
        match self.config.vmin_source {
            VminSource::Paper => platform.vmin_at(frequency),
            VminSource::Characterized { trials } => {
                let mut rng = root.fork_indexed("vmin", u64::from(frequency.get()));
                let harness =
                    Characterizer::new(TimingFailureModel::for_platform(platform), trials);
                harness
                    .sweep_platform(&mut rng, platform, frequency)
                    .safe_vmin()
                    // A sweep that fails immediately at nominal would leave
                    // no safe level; fall back to the spec's anchor rule.
                    .unwrap_or_else(|| platform.vmin_at(frequency))
            }
        }
    }

    /// Runs every session and consolidates the report.
    pub fn run(&self) -> CampaignReport {
        self.run_parallel(1)
    }

    /// Runs the whole campaign through the naive reference executor
    /// ([`TestSession::run_reference`]): no waves, no speculation, no
    /// worker pool. Exists for differential verification — its report must
    /// be bit-identical to [`run`](Self::run) and
    /// [`run_parallel`](Self::run_parallel) at any `jobs`.
    pub fn run_reference(&self) -> CampaignReport {
        self.run_with(|_, session, rng| session.run_reference(rng))
    }

    fn run_with(
        &self,
        mut run_session: impl FnMut(u64, &mut TestSession, &mut SimRng) -> SessionReport,
    ) -> CampaignReport {
        self.try_run_with(|index, session, rng| Ok(run_session(index, session, rng)))
            .expect("infallible session runner")
    }

    fn try_run_with(
        &self,
        mut run_session: impl FnMut(
            u64,
            &mut TestSession,
            &mut SimRng,
        ) -> Result<SessionReport, Cancelled>,
    ) -> Result<CampaignReport, Cancelled> {
        let root = SimRng::seed_from(self.config.seed);
        let flux = self.config.facility.flux_at(self.config.position);

        let mut vmins: Vec<(Megahertz, Millivolts)> = Vec::new();
        let mut sessions = Vec::with_capacity(self.config.sessions.len());
        for (index, (point, limits)) in self.config.sessions.iter().enumerate() {
            let frequency = point.frequency;
            let vmin = match vmins.iter().find(|(f, _)| *f == frequency) {
                Some((_, v)) => *v,
                None => {
                    let v = self.vmin_for(&root, frequency);
                    vmins.push((frequency, v));
                    v
                }
            };
            let dut = DeviceUnderTest::for_platform(&self.config.platform, *point, vmin);
            let mut session = TestSession::new(dut, flux, *limits);
            let mut rng = root.fork_indexed("session", index as u64);
            sessions.push(run_session(index as u64, &mut session, &mut rng)?);
        }
        Ok(CampaignReport {
            flux,
            vmins,
            sessions,
            platform: self.config.platform.name.clone(),
            nominal: self.config.platform.nominal_point(),
        })
    }

    /// Runs the campaign on `jobs` workers with every session reporting
    /// through one observer (see [`crate::trace`]). Sessions are announced
    /// via [`SessionObserver::on_session_start`] in configuration order,
    /// so a single observer can attribute the merged stream — and because
    /// observation is one-way, the report is bit-identical to
    /// [`run_parallel`](Self::run_parallel) with the same `jobs`.
    ///
    /// [`SessionObserver::on_session_start`]:
    /// crate::trace::SessionObserver::on_session_start
    ///
    /// # Panics
    ///
    /// Panics if `jobs == 0`.
    pub fn run_observed(
        &self,
        jobs: usize,
        observer: &mut dyn crate::trace::SessionObserver,
    ) -> CampaignReport {
        self.run_with(|_, session, rng| session.run_observed_with(rng, jobs, &mut *observer))
    }

    /// Runs the campaign with crash-safety controls: an optional run
    /// journal recording every absorbed trial, an optional recovered
    /// prefix to replay (see [`crate::journal::start_or_resume`]), and a
    /// retry/quarantine policy for panicking or hung trials.
    ///
    /// With a fresh journal (no recovery) and [`RetryPolicy::standard`],
    /// the report is bit-identical to
    /// [`run_observed`](Self::run_observed) at the same `jobs`; with a
    /// recovered prefix, the replayed trials drive the observer exactly as
    /// the original run did, so report *and* trace stay bit-identical to
    /// an uninterrupted run at any `jobs`.
    ///
    /// # Panics
    ///
    /// Panics if `options.jobs == 0`, if the recovered prefix is
    /// inconsistent with this configuration, if a journal write cannot
    /// be made durable (a crash-safety layer that silently drops records
    /// would be worse than none), or if `options.cancel` fires — callers
    /// that cancel must use
    /// [`try_run_recoverable`](Self::try_run_recoverable).
    pub fn run_recoverable(
        &self,
        options: CampaignRunOptions<'_>,
        observer: &mut dyn crate::trace::SessionObserver,
    ) -> CampaignReport {
        self.try_run_recoverable(options, observer)
            .expect("campaign cancelled; use try_run_recoverable to observe cancellation")
    }

    /// [`run_recoverable`](Self::run_recoverable), but cancellable: when
    /// `options.cancel` fires, execution stops cleanly at the next wave
    /// boundary (or between sessions) and returns
    /// [`Err(Cancelled)`](Cancelled).
    ///
    /// The journal, if any, is left exactly as a crash at a record
    /// boundary would leave it: completed sessions closed by their
    /// `SessionEnd` records, the in-flight session holding every absorbed
    /// trial and no end record. Re-opening it through
    /// [`crate::journal::start_or_resume`] and re-running the same
    /// configuration reproduces the uninterrupted report and trace bit
    /// for bit at any `jobs` — cancellation rides the PR-tested crash
    /// recovery path rather than inventing a second lifecycle.
    ///
    /// # Errors
    ///
    /// Returns [`Cancelled`] if the token fired before the campaign
    /// completed.
    ///
    /// # Panics
    ///
    /// As [`run_recoverable`](Self::run_recoverable), minus cancellation.
    pub fn try_run_recoverable(
        &self,
        mut options: CampaignRunOptions<'_>,
        observer: &mut dyn crate::trace::SessionObserver,
    ) -> Result<CampaignReport, Cancelled> {
        let cancel = options.cancel.clone();
        self.try_run_with(|index, session, rng| {
            if cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                return Err(Cancelled);
            }
            session.try_run_planned(
                rng,
                ExecutionPlan {
                    jobs: options.jobs,
                    retry: options.retry,
                    journal: options.journal.as_deref_mut(),
                    recovered: options.recovered.and_then(|r| r.session(index)),
                    session_index: index,
                    cancel: cancel.clone(),
                },
                &mut *observer,
            )
        })
    }

    /// Runs the campaign on `jobs` worker threads.
    ///
    /// Sessions still execute in configuration order (their trial grids
    /// are what gets sharded across the pool), and every trial draws from
    /// a counter-derived stream, so the report is bit-identical to
    /// [`run`](Self::run) for any `jobs` — the determinism contract the
    /// regression suite enforces.
    ///
    /// # Panics
    ///
    /// Panics if `jobs == 0`.
    pub fn run_parallel(&self, jobs: usize) -> CampaignReport {
        self.run_with(|_, session, rng| session.run_parallel(rng, jobs))
    }
}

/// Controls for [`Campaign::run_recoverable`]: worker count, retry
/// policy, and the crash-safety hooks (journal to append to, recovered
/// prefix to replay).
#[derive(Debug)]
pub struct CampaignRunOptions<'a> {
    /// Worker threads per session (must be ≥ 1).
    pub jobs: usize,
    /// Retry/quarantine policy for panicking or hung trials.
    pub retry: RetryPolicy,
    /// Journal to append absorbed trials to, if any.
    pub journal: Option<&'a mut JournalWriter>,
    /// Recovered journal prefix to replay before running live, if any.
    pub recovered: Option<&'a RecoveredCampaign>,
    /// Cooperative cancellation flag, polled at wave boundaries (see
    /// [`Campaign::try_run_recoverable`]).
    pub cancel: Option<CancelToken>,
}

impl CampaignRunOptions<'_> {
    /// Options for a plain (journal-less) run at `jobs` workers with the
    /// standard retry policy.
    pub fn with_jobs(jobs: usize) -> CampaignRunOptions<'static> {
        CampaignRunOptions {
            jobs,
            retry: RetryPolicy::standard(),
            journal: None,
            recovered: None,
            cancel: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::FailureClass;

    fn quick_config(seed: u64, fraction: f64) -> CampaignConfig {
        let mut c = CampaignConfig::paper_scaled(fraction);
        c.seed = seed;
        c
    }

    #[test]
    fn paper_config_shape() {
        let c = CampaignConfig::paper();
        assert_eq!(c.sessions.len(), 4);
        assert_eq!(c.sessions[0].0, OperatingPoint::nominal());
        assert_eq!(c.sessions[3].0, OperatingPoint::vmin_900());
        let total: f64 = c
            .sessions
            .iter()
            .filter_map(|(_, l)| l.max_duration)
            .map(|d| d.as_hours())
            .sum();
        // Table 2 durations sum to ~64.8 beam hours.
        assert!((total - 64.78).abs() < 0.1, "total = {total} h");
    }

    #[test]
    fn paper_config_is_the_xgene2_platform_config() {
        assert_eq!(
            CampaignConfig::paper(),
            CampaignConfig::for_platform(&PlatformSpec::xgene2())
        );
        assert_eq!(CampaignConfig::paper().platform.name, "xgene2");
    }

    #[test]
    fn zynq_campaign_runs_end_to_end() {
        let mut config = CampaignConfig::for_platform_scaled(&PlatformSpec::zynq_mpsoc(), 0.01);
        config.seed = 21;
        let campaign = Campaign::new(config);
        let report = campaign.run();
        assert_eq!(report.platform, "zynq-mpsoc");
        assert_eq!(report.sessions.len(), 4);
        assert!(report.baseline().is_some(), "850 mV baseline resolves");
        let vmin_1500 = report
            .vmins
            .iter()
            .find(|(f, _)| f.get() == 1500)
            .map(|(_, v)| *v)
            .expect("1.5 GHz characterized");
        assert_eq!(vmin_1500, Millivolts::new(750));
        // The determinism contract holds off the X-Gene too.
        assert_eq!(report, campaign.run_parallel(8));
    }

    #[test]
    fn zynq_characterized_vmin_stays_on_its_own_rails() {
        let mut config = CampaignConfig::for_platform_scaled(&PlatformSpec::zynq_mpsoc(), 0.005);
        config.seed = 22;
        config.vmin_source = VminSource::Characterized { trials: 50 };
        let report = Campaign::new(config.clone()).run();
        for (f, v) in &report.vmins {
            let anchor = config.platform.vmin_at(*f);
            assert!(v.get().abs_diff(anchor.get()) <= 5, "{f}: {v} vs {anchor}");
            assert!(*v >= config.platform.sweep_floor);
        }
    }

    #[test]
    fn campaign_flux_is_the_paper_working_flux() {
        let report = Campaign::new(quick_config(1, 0.01)).run();
        assert!((report.flux.as_per_cm2_s() - 1.5e6).abs() < 1e-3);
    }

    #[test]
    fn scaled_campaign_runs_all_sessions() {
        let report = Campaign::new(quick_config(2, 0.02)).run();
        assert_eq!(report.sessions.len(), 4);
        assert!(report.baseline().is_some());
        assert!(report.session_at(OperatingPoint::vmin_900()).is_some());
        assert!(report.total_beam_time().as_hours() > 1.0);
    }

    #[test]
    fn campaign_is_deterministic() {
        let a = Campaign::new(quick_config(3, 0.01)).run();
        let b = Campaign::new(quick_config(3, 0.01)).run();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Campaign::new(quick_config(4, 0.01)).run();
        let b = Campaign::new(quick_config(5, 0.01)).run();
        assert_ne!(a, b);
    }

    #[test]
    fn reference_executor_matches_engine_paths() {
        let campaign = Campaign::new(quick_config(11, 0.01));
        let reference = campaign.run_reference();
        assert_eq!(reference, campaign.run());
        assert_eq!(reference, campaign.run_parallel(3));
    }

    #[test]
    fn observed_campaign_matches_and_announces_every_session() {
        use crate::trace::{LogEvent, Logbook};
        let campaign = Campaign::new(quick_config(12, 0.01));
        let mut logbook = Logbook::new();
        let observed = campaign.run_observed(2, &mut logbook);
        assert_eq!(observed, campaign.run(), "observation perturbed the run");
        let starts: Vec<_> = logbook
            .events()
            .iter()
            .filter_map(|e| match e {
                LogEvent::SessionStarted { point, .. } => Some(*point),
                _ => None,
            })
            .collect();
        let configured: Vec<_> = campaign.config().sessions.iter().map(|(p, _)| *p).collect();
        assert_eq!(starts, configured, "one header per session, in order");
    }

    #[test]
    fn journaled_run_resumes_bit_identically() {
        use crate::journal::{journal_path, start_or_resume};
        use crate::trace::Logbook;

        let dir =
            std::env::temp_dir().join(format!("serscale-campaign-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let campaign = Campaign::new(quick_config(13, 0.01));

        // Uninterrupted golden (journal-less observed run).
        let mut golden_log = Logbook::new();
        let golden = campaign.run_observed(2, &mut golden_log);

        // A fresh journaled run must change nothing.
        let (mut writer, recovered) =
            start_or_resume(&dir, campaign.config()).expect("journal opens");
        assert!(recovered.is_none(), "fresh directory must not recover");
        let mut log = Logbook::new();
        let report = campaign.run_recoverable(
            CampaignRunOptions {
                journal: Some(&mut writer),
                ..CampaignRunOptions::with_jobs(2)
            },
            &mut log,
        );
        drop(writer);
        assert_eq!(report, golden, "journaling perturbed the report");
        assert_eq!(log, golden_log, "journaling perturbed the trace");

        // Simulate a crash: drop the tail third of the journal.
        let path = journal_path(&dir);
        let text = std::fs::read_to_string(&path).expect("journal readable");
        let lines: Vec<&str> = text.lines().collect();
        let keep = (lines.len() * 2 / 3).max(1);
        let mut truncated: String = lines[..keep].join("\n");
        truncated.push('\n');
        std::fs::write(&path, truncated).expect("truncate journal");

        // Resume at a different worker count; report and trace must still
        // match the uninterrupted golden bit for bit.
        let (mut writer, recovered) =
            start_or_resume(&dir, campaign.config()).expect("journal reopens");
        let recovered = recovered.expect("truncated journal recovers a prefix");
        assert!(recovered.trials_recovered() > 0);
        let mut resumed_log = Logbook::new();
        let resumed = campaign.run_recoverable(
            CampaignRunOptions {
                journal: Some(&mut writer),
                recovered: Some(&recovered),
                ..CampaignRunOptions::with_jobs(8)
            },
            &mut resumed_log,
        );
        drop(writer);
        assert_eq!(resumed, golden, "resumed report diverged");
        assert_eq!(resumed_log, golden_log, "resumed trace diverged");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn vmin_anchors_match_paper_defaults() {
        let report = Campaign::new(quick_config(6, 0.01)).run();
        let lookup = |f: u32| {
            report
                .vmins
                .iter()
                .find(|(freq, _)| freq.get() == f)
                .map(|(_, v)| *v)
                .expect("frequency characterized")
        };
        assert_eq!(lookup(2400), Millivolts::new(920));
        assert_eq!(lookup(900), Millivolts::new(790));
    }

    #[test]
    fn characterized_vmin_source_works() {
        let mut c = quick_config(7, 0.005);
        c.vmin_source = VminSource::Characterized { trials: 50 };
        let report = Campaign::new(c).run();
        // The characterization lands on (or within a step of) the paper's
        // anchors.
        for (f, v) in &report.vmins {
            let paper = DeviceUnderTest::paper_vmin(*f);
            let delta = v.get().abs_diff(paper.get());
            assert!(delta <= 5, "{f:?}: {v} vs {paper}");
        }
    }

    #[test]
    fn upset_rates_rise_across_sessions() {
        // Even an 8%-length campaign shows Table 2's rate ordering between
        // the extremes.
        let report = Campaign::new(quick_config(8, 0.08)).run();
        let nominal = report.baseline().unwrap().upset_rate().per_minute();
        let v790 = report
            .session_at(OperatingPoint::vmin_900())
            .unwrap()
            .upset_rate()
            .per_minute();
        assert!(v790 > nominal, "{v790} !> {nominal}");
    }

    #[test]
    fn sdc_share_explodes_at_vmin_2400() {
        let report = Campaign::new(quick_config(9, 0.1)).run();
        let nominal_share = report.baseline().unwrap().failure_shares()[&FailureClass::Sdc];
        let vmin_share = report
            .session_at(OperatingPoint::vmin_2400())
            .unwrap()
            .failure_shares()[&FailureClass::Sdc];
        assert!(
            vmin_share > nominal_share,
            "{vmin_share} !> {nominal_share}"
        );
        assert!(vmin_share > 0.6, "vmin SDC share = {vmin_share}");
    }
}
