//! Plain-text campaign summaries.
//!
//! `serscale-bench` renders tables *against the paper's numbers*; this
//! module is the neutral, library-level renderer for users running their
//! own campaigns: one Table-2-shaped line per session plus the FIT
//! breakdown, with 95 % intervals.

use std::fmt::Write as _;

use crate::campaign::CampaignReport;
use crate::classify::FailureClass;
use crate::fit::{fit_breakdown, total_fit};
use crate::session::SessionReport;

/// Renders a campaign report as a line-oriented, bit-stable summary — the
/// format of the checked-in golden file that CI diffs a fresh scaled run
/// against, and of the control plane's `/campaigns/{id}/report` endpoint.
/// Every number here is exact (counts) or a full-precision deterministic
/// float, so any physics or determinism regression shows up as a diff.
///
/// (Historically this lived in `serscale-bench`, which still re-exports
/// it; it moved here so the server side can render byte-comparable
/// reports without depending on the reproduction harness.)
pub fn golden_summary(report: &CampaignReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "flux_per_cm2_s {:.6e}", report.flux.as_per_cm2_s());
    for (freq, vmin) in &report.vmins {
        let _ = writeln!(out, "vmin {}MHz {}mV", freq.get(), vmin.get());
    }
    for session in &report.sessions {
        let point = session.operating_point;
        let _ = writeln!(
            out,
            "session {} stop={:?} runs={} upsets={} sdc_notified={} \
             duration_s={:.6} fluence_per_cm2={:.6e}",
            point.label(),
            session.stop_reason,
            session.runs,
            session.memory_upsets,
            session.sdc_with_notification,
            session.duration.as_secs(),
            session.fluence.as_per_cm2(),
        );
        for class in FailureClass::ALL {
            let _ = writeln!(
                out,
                "  failures {:?} {}",
                class,
                session.failure_count(class)
            );
        }
        for ((level, severity), count) in session.edac_per_level.iter() {
            let _ = writeln!(out, "  edac {level:?} {severity:?} {count}");
        }
        for (benchmark, stats) in &session.per_benchmark {
            let _ = writeln!(
                out,
                "  benchmark {benchmark} runs={} upsets={} sdcs={}",
                stats.runs, stats.memory_upsets, stats.sdcs
            );
        }
        // Robustness accounting appears only when something actually went
        // wrong, so healthy runs keep producing the historical golden
        // byte-for-byte.
        if session.trial_retries > 0 {
            let _ = writeln!(out, "  trial_retries {}", session.trial_retries);
        }
        if !session.quarantined_trials.is_empty() {
            let trials: Vec<String> = session
                .quarantined_trials
                .iter()
                .map(u64::to_string)
                .collect();
            let _ = writeln!(out, "  quarantined {}", trials.join(","));
        }
    }
    out
}

/// One-line summary of a session: voltage, exposure, events, rates.
pub fn session_line(session: &SessionReport) -> String {
    let rate = session.upset_rate();
    format!(
        "{label:<16} {dur:>8.0} min  {fluence:>9.2e} n/cm2  {events:>5} events  \
         {upsets:>6} upsets ({lo:.2}-{hi:.2}/min 95%)",
        label = session.operating_point.label(),
        dur = session.duration.as_minutes(),
        fluence = session.fluence.as_per_cm2(),
        events = session.error_events(),
        upsets = session.memory_upsets,
        lo = rate.lower_per_minute(),
        hi = rate.upper_per_minute(),
    )
}

/// The full campaign summary: session lines, failure mixes and FIT
/// breakdowns with intervals.
pub fn campaign_summary(report: &CampaignReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "campaign: {} sessions, {:.1} beam hours at {}",
        report.sessions.len(),
        report.total_beam_time().as_hours(),
        report.flux,
    );
    for session in &report.sessions {
        let _ = writeln!(out, "  {}", session_line(session));
        let shares = session.failure_shares();
        let _ = writeln!(
            out,
            "    failure mix: AppCrash {:.0}%, SysCrash {:.0}%, SDC {:.0}%",
            100.0 * shares[&FailureClass::AppCrash],
            100.0 * shares[&FailureClass::SysCrash],
            100.0 * shares[&FailureClass::Sdc],
        );
        let b = fit_breakdown(session);
        let _ = writeln!(
            out,
            "    FIT at NYC: total {:.1} [{:.1}, {:.1}], SDC {:.1} [{:.1}, {:.1}]",
            b.total.point.get(),
            b.total.lower.get(),
            b.total.upper.get(),
            b.sdc.point.get(),
            b.sdc.lower.get(),
            b.sdc.upper.get(),
        );
    }
    if let Some(baseline) = report.baseline() {
        let base_fit = total_fit(baseline).point.get();
        if base_fit > 0.0 {
            for session in &report.sessions {
                if session.operating_point != baseline.operating_point {
                    let ratio = total_fit(session).point.get() / base_fit;
                    let _ = writeln!(
                        out,
                        "  {} total FIT = {ratio:.1}x nominal",
                        session.operating_point.label()
                    );
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{Campaign, CampaignConfig};

    fn report() -> CampaignReport {
        let mut config = CampaignConfig::paper_scaled(0.03);
        config.seed = 77;
        Campaign::new(config).run()
    }

    #[test]
    fn summary_covers_every_session() {
        let r = report();
        let text = campaign_summary(&r);
        for session in &r.sessions {
            assert!(
                text.contains(&session.operating_point.label()),
                "missing {}:\n{text}",
                session.operating_point.label()
            );
        }
        assert!(text.contains("FIT at NYC"));
        assert!(text.contains("failure mix"));
    }

    #[test]
    fn session_line_shape() {
        let r = report();
        let line = session_line(&r.sessions[0]);
        assert!(line.contains("980mV"), "{line}");
        assert!(line.contains("n/cm2"), "{line}");
        assert!(line.contains("95%"), "{line}");
    }

    #[test]
    fn ratios_printed_for_scaled_points() {
        let text = campaign_summary(&report());
        assert!(text.contains("x nominal"), "{text}");
    }
}
