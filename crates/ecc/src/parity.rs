//! Single even-parity protection, as used by the modelled L1 caches and
//! TLBs.
//!
//! Parity detects any *odd* number of flipped bits in an entry and detects
//! nothing about even-weight errors. The protected arrays are write-through,
//! so detection is sufficient for recovery: the entry is invalidated and
//! refilled from the next level (§3.1 of the paper), which is why L1/TLB
//! single-bit upsets never reach software.

use serde::{Deserialize, Serialize};

/// The even-parity bit of a 64-bit data word.
///
/// ```
/// use serscale_ecc::parity::parity_bit;
///
/// assert!(!parity_bit(0)); // zero ones → even → parity 0
/// assert!(parity_bit(0b1)); // one one → odd → parity 1
/// assert!(!parity_bit(0b11));
/// ```
pub fn parity_bit(data: u64) -> bool {
    data.count_ones() % 2 == 1
}

/// A parity-protected 64-bit entry: the data word plus its stored parity
/// bit, both of which radiation can flip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParityWord {
    data: u64,
    parity: bool,
}

/// The result of checking a parity-protected entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ParityCheck {
    /// Stored parity matches the data: either no error, or an undetectable
    /// even-weight error.
    Clean {
        /// The data word as stored.
        data: u64,
    },
    /// Parity mismatch: an odd-weight error is present somewhere in the
    /// entry (data or the parity bit itself). The entry must be invalidated
    /// and refilled.
    Mismatch,
}

impl ParityWord {
    /// Encodes a data word with its even-parity bit.
    pub fn encode(data: u64) -> Self {
        ParityWord {
            data,
            parity: parity_bit(data),
        }
    }

    /// The stored (possibly corrupted) data word.
    pub const fn raw_data(&self) -> u64 {
        self.data
    }

    /// The stored (possibly corrupted) parity bit.
    pub const fn raw_parity(&self) -> bool {
        self.parity
    }

    /// Flips one bit of the entry. Bits `0..=63` address the data word;
    /// bit `64` addresses the parity bit.
    ///
    /// # Panics
    ///
    /// Panics if `bit > 64`.
    pub fn flip(&mut self, bit: u32) {
        match bit {
            0..=63 => self.data ^= 1u64 << bit,
            64 => self.parity = !self.parity,
            _ => panic!("parity entry has 65 bits (0..=64), got {bit}"),
        }
    }

    /// The number of bit positions in the entry (64 data + 1 parity).
    pub const fn width() -> u32 {
        65
    }

    /// Checks the entry against its stored parity.
    pub fn check(&self) -> ParityCheck {
        if parity_bit(self.data) == self.parity {
            ParityCheck::Clean { data: self.data }
        } else {
            ParityCheck::Mismatch
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_word_checks_clean() {
        for data in [0u64, 1, u64::MAX, 0xDEAD_BEEF] {
            assert_eq!(
                ParityWord::encode(data).check(),
                ParityCheck::Clean { data }
            );
        }
    }

    #[test]
    fn single_flip_detected_anywhere() {
        let data = 0x0123_4567_89AB_CDEF;
        for bit in 0..=64 {
            let mut w = ParityWord::encode(data);
            w.flip(bit);
            assert_eq!(w.check(), ParityCheck::Mismatch, "bit {bit}");
        }
    }

    #[test]
    fn double_flip_in_data_is_silent() {
        let mut w = ParityWord::encode(0xFFFF_0000_FFFF_0000);
        w.flip(3);
        w.flip(57);
        // Undetectable — parity still matches, but the data is wrong.
        match w.check() {
            ParityCheck::Clean { data } => assert_ne!(data, 0xFFFF_0000_FFFF_0000),
            ParityCheck::Mismatch => panic!("even-weight error must be silent"),
        }
    }

    #[test]
    fn data_plus_parity_flip_is_silent() {
        let mut w = ParityWord::encode(42);
        w.flip(0);
        w.flip(64);
        assert!(matches!(w.check(), ParityCheck::Clean { .. }));
    }

    #[test]
    fn triple_flip_detected() {
        let mut w = ParityWord::encode(42);
        w.flip(1);
        w.flip(2);
        w.flip(3);
        assert_eq!(w.check(), ParityCheck::Mismatch);
    }

    #[test]
    fn flip_is_involution() {
        let original = ParityWord::encode(7);
        let mut w = original;
        w.flip(12);
        w.flip(12);
        assert_eq!(w, original);
    }

    #[test]
    #[should_panic(expected = "65 bits")]
    fn flip_out_of_range_panics() {
        ParityWord::encode(0).flip(65);
    }
}
