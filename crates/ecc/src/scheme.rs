//! A unified view of the platform's protection schemes: given the set of
//! bits an upset flipped within one protected entry, what does the hardware
//! do, and what does it report?
//!
//! This is the vocabulary the SoC model and the fault-propagation analysis
//! speak; classification is performed by the *actual* codecs in
//! [`crate::parity`] and [`crate::secded`], not by a probability table, so
//! corner cases (mis-correction, even-weight parity escapes) fall out of the
//! real code behaviour.

use serde::{Deserialize, Serialize};

use crate::parity::{ParityCheck, ParityWord};
use crate::secded::{mask_syndrome, Codeword, DecodeOutcome, DATA_MASK};

/// The protection scheme guarding an SRAM array (Table 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProtectionScheme {
    /// No protection (core-logic flops, architectural registers).
    None,
    /// Even parity per entry with invalidate-and-refill recovery
    /// (write-through L1 caches, TLBs).
    Parity,
    /// Hamming(72,64) SECDED per 64-bit word (write-back L2/L3 caches).
    Secded,
}

/// What the hardware did about a cluster of bit flips inside one protected
/// entry, and what it reported to the EDAC log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UpsetOutcome {
    /// Error removed and a *corrected error* (CE) logged. Data integrity
    /// preserved. For parity arrays this is detection + architectural
    /// refill; for SECDED it is in-line correction.
    Corrected,
    /// Error detected but not correctable; an *uncorrected error* (UE)
    /// logged. The data is lost and the consuming context sees a fault
    /// (SECDED double-bit flips).
    DetectedUncorrectable,
    /// The decoder believed it corrected a single-bit error and logged a CE,
    /// but handed back corrupt data (SECDED aliasing of ≥3-bit flips).
    /// The silent-corruption path *with* a hardware notification (Fig. 12).
    MiscorrectedReported,
    /// Nothing detected, nothing logged, data corrupt (even-weight parity
    /// escapes; any flip in an unprotected structure).
    SilentCorruption,
}

impl UpsetOutcome {
    /// Whether this outcome produces a corrected-error EDAC log entry.
    pub const fn logs_corrected(self) -> bool {
        matches!(
            self,
            UpsetOutcome::Corrected | UpsetOutcome::MiscorrectedReported
        )
    }

    /// Whether this outcome produces an uncorrected-error EDAC log entry.
    pub const fn logs_uncorrected(self) -> bool {
        matches!(self, UpsetOutcome::DetectedUncorrectable)
    }

    /// Whether the architectural data is corrupt after hardware handling.
    pub const fn corrupts_data(self) -> bool {
        matches!(
            self,
            UpsetOutcome::MiscorrectedReported | UpsetOutcome::SilentCorruption
        )
    }
}

/// The canary pattern classification encodes behind the scenes; any value
/// works because the codes are linear, a mixed pattern just makes aliasing
/// visible.
const CANARY: u64 = 0xC0FE_D00D_5EED_BEEF;

impl ProtectionScheme {
    /// The number of distinct bit positions an upset can hit within one
    /// protected entry (data + stored check bits).
    pub const fn entry_bits(self) -> u32 {
        match self {
            ProtectionScheme::None => 64,
            ProtectionScheme::Parity => 65,
            ProtectionScheme::Secded => 72,
        }
    }

    /// Classifies a cluster of flipped bit positions (each `< entry_bits()`,
    /// duplicates cancel as real double-flips would) by running the actual
    /// codec.
    ///
    /// # Panics
    ///
    /// Panics if any position is out of range for this scheme.
    ///
    /// ```
    /// use serscale_ecc::{ProtectionScheme, UpsetOutcome};
    ///
    /// assert_eq!(ProtectionScheme::Secded.classify(&[5]), UpsetOutcome::Corrected);
    /// assert_eq!(
    ///     ProtectionScheme::Secded.classify(&[5, 9]),
    ///     UpsetOutcome::DetectedUncorrectable
    /// );
    /// assert_eq!(
    ///     ProtectionScheme::None.classify(&[5]),
    ///     UpsetOutcome::SilentCorruption
    /// );
    /// ```
    pub fn classify(self, positions: &[u32]) -> UpsetOutcome {
        match self {
            ProtectionScheme::None => {
                if effective_flips(positions).is_empty() {
                    // An even number of flips on the same bit restores it.
                    UpsetOutcome::Corrected
                } else {
                    UpsetOutcome::SilentCorruption
                }
            }
            ProtectionScheme::Parity => {
                let mut w = ParityWord::encode(CANARY);
                for &p in positions {
                    w.flip(p);
                }
                match w.check() {
                    ParityCheck::Mismatch => UpsetOutcome::Corrected,
                    ParityCheck::Clean { data } => {
                        if data == CANARY {
                            UpsetOutcome::Corrected
                        } else {
                            UpsetOutcome::SilentCorruption
                        }
                    }
                }
            }
            ProtectionScheme::Secded => {
                let mut cw = Codeword::encode(CANARY);
                for &p in positions {
                    cw.flip(p);
                }
                match cw.decode() {
                    // Clean with intact data only happens when flips
                    // cancelled each other; clean with corrupt data would
                    // require a flip pattern equal to a nonzero codeword of
                    // the code (impossible below its Hamming distance of 4,
                    // but reachable for wide clusters).
                    DecodeOutcome::Clean { data } if data == CANARY => UpsetOutcome::Corrected,
                    DecodeOutcome::Clean { .. } => UpsetOutcome::SilentCorruption,
                    DecodeOutcome::Corrected { data, .. } if data == CANARY => {
                        UpsetOutcome::Corrected
                    }
                    DecodeOutcome::Corrected { .. } => UpsetOutcome::MiscorrectedReported,
                    DecodeOutcome::DetectedUncorrectable => UpsetOutcome::DetectedUncorrectable,
                }
            }
        }
    }

    /// [`Self::classify`] on an XOR-accumulated error mask instead of a
    /// position list — the word-batched form the hot path uses.
    ///
    /// Because all three codes are linear, the classification of
    /// `codeword ⊕ mask` depends only on `mask`, so this needs no encode,
    /// no decode, and no canary: a handful of popcounts and mask tests
    /// replaces the full codec walk. Duplicate flips must already be
    /// cancelled (XOR accumulation does that for free — see
    /// [`crate::interleave::Interleaver::spread_cluster_masks`]).
    ///
    /// # Panics
    ///
    /// Panics if bits at or above `entry_bits()` are set.
    pub fn classify_mask(self, mask: u128) -> UpsetOutcome {
        assert!(
            mask >> self.entry_bits() == 0,
            "mask wider than a protected entry"
        );
        match self {
            ProtectionScheme::None => {
                if mask == 0 {
                    UpsetOutcome::Corrected
                } else {
                    UpsetOutcome::SilentCorruption
                }
            }
            ProtectionScheme::Parity => {
                if mask.count_ones() % 2 == 1 {
                    // Odd weight breaks the parity check: detected,
                    // invalidate-and-refill recovers the line.
                    UpsetOutcome::Corrected
                } else if mask == 0 {
                    UpsetOutcome::Corrected
                } else {
                    // Even nonzero weight passes the check. At least one
                    // of the ≥2 set bits is a data bit (only one parity
                    // bit exists), so the data is silently corrupt.
                    UpsetOutcome::SilentCorruption
                }
            }
            ProtectionScheme::Secded => {
                if mask == 0 {
                    return UpsetOutcome::Corrected;
                }
                let syndrome = mask_syndrome(mask);
                let parity_odd = mask.count_ones() % 2 == 1;
                if parity_odd && syndrome <= 71 {
                    // The decoder flips `syndrome` back (position 0 when
                    // the syndrome is zero); the data survives iff the
                    // residual error avoids every data position.
                    let residual = mask ^ (1u128 << syndrome);
                    if residual & DATA_MASK == 0 {
                        UpsetOutcome::Corrected
                    } else {
                        UpsetOutcome::MiscorrectedReported
                    }
                } else if !parity_odd && syndrome == 0 {
                    // Nonzero even-weight mask with zero syndrome is a
                    // codeword of the Hamming code: it cannot be confined
                    // to check bits (distinct powers of two never XOR to
                    // zero), so the data is corrupt and nothing is logged.
                    UpsetOutcome::SilentCorruption
                } else {
                    UpsetOutcome::DetectedUncorrectable
                }
            }
        }
    }

    /// Classifies a batch of error masks into `out` (cleared first) — one
    /// [`Self::classify_mask`] per mask, in order.
    pub fn classify_masks<I>(self, masks: I, out: &mut Vec<UpsetOutcome>)
    where
        I: IntoIterator<Item = u128>,
    {
        out.clear();
        out.extend(masks.into_iter().map(|mask| self.classify_mask(mask)));
    }
}

/// Cancels duplicate flips (the same cell hit twice is restored).
fn effective_flips(positions: &[u32]) -> Vec<u32> {
    let mut v = positions.to_vec();
    v.sort_unstable();
    let mut out = Vec::new();
    let mut i = 0;
    while i < v.len() {
        let mut run = 1;
        while i + run < v.len() && v[i + run] == v[i] {
            run += 1;
        }
        if run % 2 == 1 {
            out.push(v[i]);
        }
        i += run;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unprotected_any_flip_is_silent() {
        assert_eq!(
            ProtectionScheme::None.classify(&[0]),
            UpsetOutcome::SilentCorruption
        );
        assert_eq!(
            ProtectionScheme::None.classify(&[3, 7, 12]),
            UpsetOutcome::SilentCorruption
        );
    }

    #[test]
    fn unprotected_cancelled_flips_are_harmless() {
        assert_eq!(
            ProtectionScheme::None.classify(&[5, 5]),
            UpsetOutcome::Corrected
        );
    }

    #[test]
    fn parity_single_flip_corrected() {
        for p in [0u32, 17, 63, 64] {
            assert_eq!(
                ProtectionScheme::Parity.classify(&[p]),
                UpsetOutcome::Corrected
            );
        }
    }

    #[test]
    fn parity_double_flip_escapes_silently() {
        assert_eq!(
            ProtectionScheme::Parity.classify(&[3, 9]),
            UpsetOutcome::SilentCorruption
        );
    }

    #[test]
    fn parity_double_flip_involving_parity_bit_escapes() {
        assert_eq!(
            ProtectionScheme::Parity.classify(&[3, 64]),
            UpsetOutcome::SilentCorruption
        );
    }

    #[test]
    fn parity_triple_flip_detected() {
        assert_eq!(
            ProtectionScheme::Parity.classify(&[1, 2, 3]),
            UpsetOutcome::Corrected
        );
    }

    #[test]
    fn secded_single_corrected_double_detected() {
        for p in 0..72 {
            assert_eq!(
                ProtectionScheme::Secded.classify(&[p]),
                UpsetOutcome::Corrected,
                "{p}"
            );
        }
        assert_eq!(
            ProtectionScheme::Secded.classify(&[10, 50]),
            UpsetOutcome::DetectedUncorrectable
        );
    }

    #[test]
    fn secded_triple_flip_miscorrects_somewhere() {
        let mut saw_miscorrection = false;
        for a in 0..24u32 {
            let triple = [a, a + 24, a + 48];
            let outcome = ProtectionScheme::Secded.classify(&triple);
            // A triple either aliases to a bogus correction or XORs to an
            // invalid syndrome and is flagged uncorrectable; it can never
            // look clean.
            assert_ne!(outcome, UpsetOutcome::SilentCorruption, "triple {triple:?}");
            if outcome == UpsetOutcome::MiscorrectedReported {
                saw_miscorrection = true;
            }
        }
        assert!(saw_miscorrection);
    }

    #[test]
    fn outcome_logging_properties() {
        assert!(UpsetOutcome::Corrected.logs_corrected());
        assert!(!UpsetOutcome::Corrected.corrupts_data());
        assert!(UpsetOutcome::DetectedUncorrectable.logs_uncorrected());
        assert!(UpsetOutcome::MiscorrectedReported.logs_corrected());
        assert!(UpsetOutcome::MiscorrectedReported.corrupts_data());
        assert!(UpsetOutcome::SilentCorruption.corrupts_data());
        assert!(!UpsetOutcome::SilentCorruption.logs_corrected());
    }

    #[test]
    fn entry_bits_per_scheme() {
        assert_eq!(ProtectionScheme::None.entry_bits(), 64);
        assert_eq!(ProtectionScheme::Parity.entry_bits(), 65);
        assert_eq!(ProtectionScheme::Secded.entry_bits(), 72);
    }

    const ALL_SCHEMES: [ProtectionScheme; 3] = [
        ProtectionScheme::None,
        ProtectionScheme::Parity,
        ProtectionScheme::Secded,
    ];

    fn mask_of(positions: &[u32]) -> u128 {
        positions.iter().fold(0u128, |m, &p| m ^ (1u128 << p))
    }

    #[test]
    fn mask_classifier_matches_codec_on_singles_and_pairs() {
        for scheme in ALL_SCHEMES {
            let bits = scheme.entry_bits();
            for a in 0..bits {
                assert_eq!(
                    scheme.classify_mask(mask_of(&[a])),
                    scheme.classify(&[a]),
                    "{scheme:?} single {a}"
                );
                for b in (a + 1)..bits {
                    assert_eq!(
                        scheme.classify_mask(mask_of(&[a, b])),
                        scheme.classify(&[a, b]),
                        "{scheme:?} pair {a},{b}"
                    );
                }
            }
        }
    }

    #[test]
    fn classify_masks_batches_in_order() {
        let masks = [0u128, 1, 0b11, mask_of(&[5, 9, 33])];
        let mut out = vec![UpsetOutcome::Corrected]; // stale content
        ProtectionScheme::Secded.classify_masks(masks.iter().copied(), &mut out);
        let singles: Vec<UpsetOutcome> = masks
            .iter()
            .map(|&m| ProtectionScheme::Secded.classify_mask(m))
            .collect();
        assert_eq!(out, singles);
    }

    #[test]
    #[should_panic(expected = "wider than a protected entry")]
    fn mask_out_of_range_panics() {
        ProtectionScheme::Parity.classify_mask(1u128 << 65);
    }

    mod mask_equivalence {
        use super::*;
        use proptest::prelude::*;

        fn cluster(scheme: ProtectionScheme) -> impl Strategy<Value = Vec<u32>> {
            let bits = scheme.entry_bits();
            // Up to 8 flips, duplicates allowed — duplicates must cancel
            // identically in both forms.
            proptest::collection::vec(0..bits, 1..=8)
        }

        proptest! {
            #[test]
            fn mask_form_equals_codec_form_none(positions in cluster(ProtectionScheme::None)) {
                let scheme = ProtectionScheme::None;
                prop_assert_eq!(scheme.classify_mask(mask_of(&positions)), scheme.classify(&positions));
            }

            #[test]
            fn mask_form_equals_codec_form_parity(positions in cluster(ProtectionScheme::Parity)) {
                let scheme = ProtectionScheme::Parity;
                prop_assert_eq!(scheme.classify_mask(mask_of(&positions)), scheme.classify(&positions));
            }

            #[test]
            fn mask_form_equals_codec_form_secded(positions in cluster(ProtectionScheme::Secded)) {
                let scheme = ProtectionScheme::Secded;
                prop_assert_eq!(scheme.classify_mask(mask_of(&positions)), scheme.classify(&positions));
            }
        }
    }
}
