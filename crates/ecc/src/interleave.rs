//! Physical-to-logical bit interleaving.
//!
//! A neutron strike deposits charge in a physically contiguous patch of
//! silicon, so a multi-bit upset flips *physically adjacent* cells. Memory
//! designers interleave codewords so that adjacent physical cells belong to
//! different logical words: a physical 4-bit cluster then becomes four
//! single-bit errors in four words, each trivially handled by SECDED,
//! instead of one fatal 4-bit error in one word.
//!
//! The paper attributes the L3's higher uncorrectable rate to its *lack* of
//! interleaving (§4.3); the SoC model instantiates [`Interleaver`] with
//! degree 1 (identity) for the L3 and degree 4 for the smaller arrays.

use serde::{Deserialize, Serialize};

/// A physical bit location inside an array row of `degree × word_bits`
/// physical cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PhysicalBit(pub u32);

/// A logical location: which of the `degree` words in the row, and which
/// bit within that word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LogicalBit {
    /// Index of the logical word within the interleaved row (`0..degree`).
    pub word: u32,
    /// Bit index within the logical word (`0..word_bits`).
    pub bit: u32,
}

/// A `degree`-way bit interleaver over rows of `word_bits`-bit words.
///
/// Physical cell `p` belongs to logical word `p % degree`, at bit
/// `p / degree` — the standard column-mux arrangement. Degree 1 is the
/// identity (no interleaving).
///
/// ```
/// use serscale_ecc::interleave::{Interleaver, PhysicalBit};
///
/// let il = Interleaver::new(4, 72);
/// // Four physically adjacent cells land in four different words.
/// let words: Vec<u32> = (0..4)
///     .map(|p| il.to_logical(PhysicalBit(p)).word)
///     .collect();
/// assert_eq!(words, vec![0, 1, 2, 3]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Interleaver {
    degree: u32,
    word_bits: u32,
}

impl Interleaver {
    /// Creates an interleaver.
    ///
    /// # Panics
    ///
    /// Panics if `degree` or `word_bits` is zero.
    pub fn new(degree: u32, word_bits: u32) -> Self {
        assert!(degree > 0, "interleaving degree must be positive");
        assert!(word_bits > 0, "word width must be positive");
        Interleaver { degree, word_bits }
    }

    /// The identity interleaver (degree 1) — the modelled L3 configuration.
    pub fn none(word_bits: u32) -> Self {
        Self::new(1, word_bits)
    }

    /// The interleaving degree.
    pub const fn degree(&self) -> u32 {
        self.degree
    }

    /// Bits per logical word.
    pub const fn word_bits(&self) -> u32 {
        self.word_bits
    }

    /// Physical cells per interleaved row.
    pub const fn row_bits(&self) -> u32 {
        self.degree * self.word_bits
    }

    /// Maps a physical cell to its logical word/bit.
    ///
    /// # Panics
    ///
    /// Panics if the physical index is outside the row.
    pub fn to_logical(&self, p: PhysicalBit) -> LogicalBit {
        assert!(
            p.0 < self.row_bits(),
            "physical bit {} outside row of {}",
            p.0,
            self.row_bits()
        );
        LogicalBit {
            word: p.0 % self.degree,
            bit: p.0 / self.degree,
        }
    }

    /// Maps a logical word/bit back to its physical cell.
    ///
    /// # Panics
    ///
    /// Panics if the logical coordinates are out of range.
    pub fn to_physical(&self, l: LogicalBit) -> PhysicalBit {
        assert!(
            l.word < self.degree,
            "word {} outside degree {}",
            l.word,
            self.degree
        );
        assert!(
            l.bit < self.word_bits,
            "bit {} outside word of {}",
            l.bit,
            self.word_bits
        );
        PhysicalBit(l.bit * self.degree + l.word)
    }

    /// Distributes a physically contiguous cluster starting at `start` of
    /// length `len` into per-word bit lists — the shape the decoder sees.
    ///
    /// Returns `(word, bits_within_word)` pairs for each affected word.
    pub fn spread_cluster(&self, start: PhysicalBit, len: u32) -> Vec<(u32, Vec<u32>)> {
        let mut per_word: Vec<(u32, Vec<u32>)> = Vec::new();
        for offset in 0..len {
            let p = PhysicalBit((start.0 + offset) % self.row_bits());
            let l = self.to_logical(p);
            match per_word.iter_mut().find(|(w, _)| *w == l.word) {
                Some((_, bits)) => bits.push(l.bit),
                None => per_word.push((l.word, vec![l.bit])),
            }
        }
        per_word
    }

    /// [`Self::spread_cluster`] in mask form, reusing the caller's buffer:
    /// each affected word gets an XOR-accumulated error mask instead of a
    /// bit list (a cell hit twice cancels, exactly as flipping a codeword
    /// bit twice does). This is the allocation-free primitive the hot path
    /// feeds to the word-batched classifiers.
    ///
    /// Word order matches `spread_cluster` (first-touch order), so the two
    /// forms describe identical strikes word for word.
    pub fn spread_cluster_masks(&self, start: PhysicalBit, len: u32, out: &mut Vec<(u32, u128)>) {
        out.clear();
        for offset in 0..len {
            let p = PhysicalBit((start.0 + offset) % self.row_bits());
            let l = self.to_logical(p);
            match out.iter_mut().find(|(w, _)| *w == l.word) {
                Some((_, mask)) => *mask ^= 1u128 << l.bit,
                None => out.push((l.word, 1u128 << l.bit)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_is_bijective() {
        let il = Interleaver::new(4, 72);
        for p in 0..il.row_bits() {
            let l = il.to_logical(PhysicalBit(p));
            assert_eq!(il.to_physical(l), PhysicalBit(p));
        }
    }

    #[test]
    fn identity_interleaver() {
        let il = Interleaver::none(72);
        for p in 0..72 {
            let l = il.to_logical(PhysicalBit(p));
            assert_eq!(l.word, 0);
            assert_eq!(l.bit, p);
        }
    }

    #[test]
    fn adjacent_cells_map_to_distinct_words() {
        let il = Interleaver::new(4, 72);
        for base in [0u32, 40, 100] {
            let words: Vec<u32> = (0..4)
                .map(|i| il.to_logical(PhysicalBit(base + i)).word)
                .collect();
            let mut sorted = words.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(
                sorted.len(),
                4,
                "cluster at {base} not fully spread: {words:?}"
            );
        }
    }

    #[test]
    fn cluster_of_degree_size_gives_single_bit_per_word() {
        let il = Interleaver::new(4, 72);
        let spread = il.spread_cluster(PhysicalBit(10), 4);
        assert_eq!(spread.len(), 4);
        for (_, bits) in &spread {
            assert_eq!(bits.len(), 1);
        }
    }

    #[test]
    fn cluster_without_interleaving_hits_one_word() {
        let il = Interleaver::none(72);
        let spread = il.spread_cluster(PhysicalBit(5), 3);
        assert_eq!(spread.len(), 1);
        assert_eq!(spread[0].0, 0);
        assert_eq!(spread[0].1, vec![5, 6, 7]);
    }

    #[test]
    fn oversized_cluster_wraps_and_doubles_up() {
        let il = Interleaver::new(2, 8); // 16-cell row
        let spread = il.spread_cluster(PhysicalBit(0), 6);
        // 6 cells over 2 words → 3 bits per word.
        assert_eq!(spread.len(), 2);
        for (_, bits) in &spread {
            assert_eq!(bits.len(), 3);
        }
    }

    #[test]
    #[should_panic(expected = "outside row")]
    fn out_of_row_physical_panics() {
        Interleaver::new(2, 8).to_logical(PhysicalBit(16));
    }

    #[test]
    fn mask_spread_agrees_with_list_spread() {
        for il in [Interleaver::new(4, 72), Interleaver::none(72)] {
            let mut masks = Vec::new();
            for start in 0..il.row_bits() {
                for len in 1..=9 {
                    let lists = il.spread_cluster(PhysicalBit(start), len);
                    il.spread_cluster_masks(PhysicalBit(start), len, &mut masks);
                    assert_eq!(lists.len(), masks.len(), "start {start} len {len}");
                    for ((lw, bits), &(mw, mask)) in lists.iter().zip(&masks) {
                        assert_eq!(*lw, mw, "word order start {start} len {len}");
                        let xored = bits.iter().fold(0u128, |m, &b| m ^ (1u128 << b));
                        assert_eq!(xored, mask, "start {start} len {len} word {mw}");
                    }
                }
            }
        }
    }

    #[test]
    fn mask_spread_cancels_wraparound_double_hits() {
        let il = Interleaver::new(2, 8); // 16-cell row
        let mut masks = Vec::new();
        // A full wrap hits every cell twice: all masks cancel to zero.
        il.spread_cluster_masks(PhysicalBit(3), 32, &mut masks);
        assert_eq!(masks.len(), 2);
        for &(_, mask) in &masks {
            assert_eq!(mask, 0);
        }
    }
}
