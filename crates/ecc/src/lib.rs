//! # serscale-ecc
//!
//! Bit-accurate implementations of the two memory-protection schemes carried
//! by the modelled platform (Table 1 of the paper):
//!
//! * [`parity`] — single even-parity bit per entry, as used by the L1
//!   instruction/data caches and all TLBs. Detects any odd number of bit
//!   flips; corrects nothing (recovery happens architecturally, by
//!   invalidate-and-refill, because those arrays are write-through).
//! * [`secded`] — a Hamming(72,64) Single-Error-Correct /
//!   Double-Error-Detect code, as used by the L2 and L3 caches. Corrects any
//!   single-bit flip per 64-bit word, detects (but cannot correct) any
//!   double-bit flip, and — crucially for the paper's Figure 12 — can
//!   *mis-correct* a triple-bit flip while reporting it as a corrected
//!   single-bit event, silently corrupting data behind a benign-looking
//!   "corrected error" notification.
//! * [`interleave`] — physical-to-logical bit interleaving, the standard
//!   countermeasure that spreads a physically clustered multi-bit upset
//!   across several logical codewords. The modelled L3 lacks interleaving
//!   (§4.3: "large cache arrays with no memory interleaving schemes are more
//!   vulnerable to MBUs"), and the simulator reproduces exactly that
//!   difference.
//!
//! ## Example
//!
//! ```
//! use serscale_ecc::secded::{Codeword, DecodeOutcome};
//!
//! let word = Codeword::encode(0xDEAD_BEEF_CAFE_F00D);
//!
//! // A single flipped bit is corrected transparently.
//! let mut hit = word;
//! hit.flip(17);
//! match hit.decode() {
//!     DecodeOutcome::Corrected { data, .. } => assert_eq!(data, 0xDEAD_BEEF_CAFE_F00D),
//!     other => panic!("expected correction, got {other:?}"),
//! }
//!
//! // A double flip is detected as uncorrectable.
//! let mut hit2 = word;
//! hit2.flip(17);
//! hit2.flip(40);
//! assert_eq!(hit2.decode(), DecodeOutcome::DetectedUncorrectable);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod interleave;
pub mod parity;
pub mod scheme;
pub mod secded;

pub use scheme::{ProtectionScheme, UpsetOutcome};
