//! Hamming(72,64) SECDED: the Single-Error-Correct / Double-Error-Detect
//! code protecting the modelled L2 and L3 caches (Table 1, \[33\]).
//!
//! ## Layout
//!
//! The 72-bit codeword uses the classic extended-Hamming layout:
//!
//! * positions `1..=71` (1-indexed) hold the Hamming code: positions that
//!   are powers of two (1, 2, 4, 8, 16, 32, 64 — seven of them) are check
//!   bits, and the remaining 64 positions hold the data bits in ascending
//!   order;
//! * position `0` holds the overall (even) parity of positions `1..=71`,
//!   extending plain Hamming SEC into SECDED.
//!
//! ## Decode semantics
//!
//! | syndrome | overall parity | meaning |
//! |---|---|---|
//! | 0 | even | clean |
//! | 0 | odd | overall-parity bit itself flipped (corrected) |
//! | ≠0 | odd | single-bit error at position = syndrome (corrected) |
//! | ≠0, ≤71 | even | double-bit error (detected, uncorrectable) |
//! | >71 | any | inconsistent syndrome (detected, uncorrectable) |
//!
//! Three or more flips can alias to the "single-bit error" row and be
//! silently *mis-corrected* — the code reports a corrected event while
//! handing back wrong data. That behaviour is physical and is exactly the
//! mechanism behind the paper's rare "SDC accompanied by a corrected-error
//! notification" events (§6.2).

use serde::{Deserialize, Serialize};

/// Number of data bits per codeword.
pub const DATA_BITS: u32 = 64;
/// Number of check bits (7 Hamming + 1 overall parity).
pub const CHECK_BITS: u32 = 8;
/// Total codeword width.
pub const CODEWORD_BITS: u32 = DATA_BITS + CHECK_BITS;

/// The 64 codeword positions (1-indexed) that carry data bits, in the order
/// data bit 0, 1, 2, … are placed.
fn data_positions() -> impl Iterator<Item = u32> {
    (1u32..=71).filter(|p| !p.is_power_of_two())
}

/// The positions covered by check bit `2^k`: every position in `1..=71`
/// whose `k`-th bit is set (including the check-bit position itself, which
/// participates in its own parity group).
const fn cover_mask(k: u32) -> u128 {
    let mut mask = 0u128;
    let mut pos = 1u32;
    while pos <= 71 {
        if pos & (1 << k) != 0 {
            mask |= 1u128 << pos;
        }
        pos += 1;
    }
    mask
}

/// The seven Hamming parity groups as bit masks over codeword positions —
/// the word-parallel form of the decoder: syndrome bit `k` is the popcount
/// parity of `mask & COVER_MASKS[k]`, seven AND+popcount pairs instead of
/// a 71-iteration position loop.
const COVER_MASKS: [u128; 7] = [
    cover_mask(0),
    cover_mask(1),
    cover_mask(2),
    cover_mask(3),
    cover_mask(4),
    cover_mask(5),
    cover_mask(6),
];

/// The codeword positions that carry data bits, as a mask: an error mask
/// confined to `!DATA_MASK` leaves the decoded data word intact.
pub const DATA_MASK: u128 = {
    let mut mask = 0u128;
    let mut pos = 1u32;
    while pos <= 71 {
        // Power-of-two positions are check bits; everything else is data.
        if pos & (pos - 1) != 0 {
            mask |= 1u128 << pos;
        }
        pos += 1;
    }
    mask
};

/// The Hamming syndrome of an error mask over codeword bits `0..=71`,
/// computed with bitwise cover-mask popcounts (no per-position loop).
///
/// Because the code is linear, the syndrome of `codeword ⊕ mask` equals
/// the syndrome of `mask` alone for any valid codeword — this is the
/// word-batched decode primitive the hot path classifies strikes with.
///
/// # Panics
///
/// Panics (debug only) if bits above position 71 are set.
pub fn mask_syndrome(mask: u128) -> u32 {
    debug_assert!(mask >> CODEWORD_BITS == 0, "mask wider than the codeword");
    let mut s = 0u32;
    let mut k = 0;
    while k < 7 {
        s |= ((mask & COVER_MASKS[k]).count_ones() & 1) << k;
        k += 1;
    }
    s
}

/// A 72-bit SECDED codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Codeword(u128);

/// The outcome of decoding a (possibly corrupted) codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DecodeOutcome {
    /// No error detected; data returned as stored.
    Clean {
        /// The decoded data word.
        data: u64,
    },
    /// A single-bit error was detected and corrected (or so the decoder
    /// believes — a ≥3-bit error can alias here with wrong data).
    Corrected {
        /// The post-correction data word.
        data: u64,
        /// The 1-indexed codeword position that was flipped back
        /// (`0` = the overall-parity bit).
        position: u32,
    },
    /// A double-bit (or inconsistent) error was detected and cannot be
    /// corrected. The stored data must not be used.
    DetectedUncorrectable,
}

impl Codeword {
    /// Encodes a 64-bit data word into a 72-bit SECDED codeword.
    ///
    /// ```
    /// use serscale_ecc::secded::{Codeword, DecodeOutcome};
    ///
    /// let cw = Codeword::encode(12345);
    /// assert_eq!(cw.decode(), DecodeOutcome::Clean { data: 12345 });
    /// ```
    pub fn encode(data: u64) -> Self {
        let mut bits: u128 = 0;
        // Scatter data bits into non-power-of-two positions.
        for (i, pos) in data_positions().enumerate() {
            if (data >> i) & 1 == 1 {
                bits |= 1u128 << pos;
            }
        }
        // Hamming check bits: check bit at position 2^k covers every
        // position whose k-th bit is set; even parity over covered data.
        for k in 0..7u32 {
            let p = 1u32 << k;
            let mut parity = false;
            for pos in 1..=71u32 {
                if pos != p && pos & p != 0 && (bits >> pos) & 1 == 1 {
                    parity = !parity;
                }
            }
            if parity {
                bits |= 1u128 << p;
            }
        }
        // Overall parity over positions 1..=71 stored at position 0.
        let ones = (bits >> 1).count_ones();
        if ones % 2 == 1 {
            bits |= 1;
        }
        Codeword(bits)
    }

    /// The raw 72-bit codeword image (bits above 71 are always zero).
    pub const fn raw(&self) -> u128 {
        self.0
    }

    /// Reconstructs a codeword from a raw 72-bit image, e.g. after storage
    /// corruption.
    ///
    /// # Panics
    ///
    /// Panics if bits above position 71 are set.
    pub fn from_raw(raw: u128) -> Self {
        assert!(
            raw >> CODEWORD_BITS == 0,
            "codeword is {CODEWORD_BITS} bits"
        );
        Codeword(raw)
    }

    /// Flips one bit of the codeword. Position `0` is the overall-parity
    /// bit; positions `1..=71` are the Hamming codeword.
    ///
    /// # Panics
    ///
    /// Panics if `position > 71`.
    pub fn flip(&mut self, position: u32) {
        assert!(
            position < CODEWORD_BITS,
            "codeword has bits 0..{CODEWORD_BITS}"
        );
        self.0 ^= 1u128 << position;
    }

    /// The Hamming syndrome: XOR of the positions of all set bits in
    /// `1..=71`, including check bits. Zero for a clean codeword.
    fn syndrome(&self) -> u32 {
        // Position 0 (overall parity) is in no cover mask, so the full
        // image can go straight through the word-parallel form.
        mask_syndrome(self.0)
    }

    /// Whether the overall parity (positions 0..=71 together) is odd.
    fn overall_parity_odd(&self) -> bool {
        self.0.count_ones() % 2 == 1
    }

    /// Extracts the data word ignoring any errors.
    fn extract_data(&self) -> u64 {
        let mut data = 0u64;
        for (i, pos) in data_positions().enumerate() {
            if (self.0 >> pos) & 1 == 1 {
                data |= 1u64 << i;
            }
        }
        data
    }

    /// Decodes the codeword, correcting a single-bit error if present.
    ///
    /// See the module docs for the full outcome table. Note that a ≥3-bit
    /// error may be silently mis-corrected (reported as
    /// [`DecodeOutcome::Corrected`] with wrong data) — this mirrors real
    /// SECDED hardware and is relied on by the fault-propagation model.
    pub fn decode(&self) -> DecodeOutcome {
        let syndrome = self.syndrome();
        let parity_odd = self.overall_parity_odd();
        match (syndrome, parity_odd) {
            (0, false) => DecodeOutcome::Clean {
                data: self.extract_data(),
            },
            (0, true) => {
                // Only the overall-parity bit is wrong; data is intact.
                DecodeOutcome::Corrected {
                    data: self.extract_data(),
                    position: 0,
                }
            }
            (s, true) if s <= 71 => {
                let mut fixed = *self;
                fixed.flip(s);
                DecodeOutcome::Corrected {
                    data: fixed.extract_data(),
                    position: s,
                }
            }
            // Even overall parity with nonzero syndrome ⇒ an even number of
            // flips ⇒ uncorrectable; syndrome >71 is inconsistent.
            _ => DecodeOutcome::DetectedUncorrectable,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PATTERNS: [u64; 6] = [
        0,
        u64::MAX,
        0xDEAD_BEEF_CAFE_F00D,
        0x5555_5555_5555_5555,
        1,
        1 << 63,
    ];

    #[test]
    fn clean_roundtrip() {
        for data in PATTERNS {
            assert_eq!(
                Codeword::encode(data).decode(),
                DecodeOutcome::Clean { data }
            );
        }
    }

    #[test]
    fn every_single_bit_error_is_corrected() {
        let data = 0xDEAD_BEEF_CAFE_F00D;
        for pos in 0..CODEWORD_BITS {
            let mut cw = Codeword::encode(data);
            cw.flip(pos);
            match cw.decode() {
                DecodeOutcome::Corrected { data: d, position } => {
                    assert_eq!(d, data, "position {pos}");
                    assert_eq!(position, pos, "position {pos}");
                }
                other => panic!("position {pos}: expected correction, got {other:?}"),
            }
        }
    }

    #[test]
    fn every_double_bit_error_is_detected() {
        let data = 0x0123_4567_89AB_CDEF;
        let base = Codeword::encode(data);
        for a in 0..CODEWORD_BITS {
            for b in (a + 1)..CODEWORD_BITS {
                let mut cw = base;
                cw.flip(a);
                cw.flip(b);
                assert_eq!(
                    cw.decode(),
                    DecodeOutcome::DetectedUncorrectable,
                    "flips at {a},{b}"
                );
            }
        }
    }

    #[test]
    fn triple_errors_can_miscorrect() {
        // Sweep a family of triples; at least one must alias to a bogus
        // "corrected" outcome with wrong data — the Fig. 12 mechanism.
        let data = 0xAAAA_5555_F0F0_0F0F;
        let base = Codeword::encode(data);
        let mut miscorrections = 0;
        let mut detections = 0;
        for a in (0..72).step_by(7) {
            for b in ((a + 1)..72).step_by(5) {
                for c in ((b + 1)..72).step_by(3) {
                    let mut cw = base;
                    cw.flip(a);
                    cw.flip(b);
                    cw.flip(c);
                    match cw.decode() {
                        DecodeOutcome::Corrected { data: d, .. } => {
                            // Triple error reported as corrected: data is
                            // silently wrong (or in freak cases right).
                            if d != data {
                                miscorrections += 1;
                            }
                        }
                        DecodeOutcome::DetectedUncorrectable => detections += 1,
                        DecodeOutcome::Clean { .. } => {
                            panic!("odd-weight error cannot look clean")
                        }
                    }
                }
            }
        }
        // Some triples alias to a bogus single-bit correction; others XOR to
        // a syndrome above 71 and are (correctly) flagged uncorrectable.
        assert!(miscorrections > 0, "no triple error mis-corrected");
        assert!(detections > 0, "no triple error flagged uncorrectable");
    }

    #[test]
    fn check_bit_positions_are_powers_of_two() {
        let positions: Vec<u32> = data_positions().collect();
        assert_eq!(positions.len(), 64);
        for p in &positions {
            assert!(!p.is_power_of_two());
        }
        // All positions 1..=71 are either data or one of the 7 check bits.
        assert_eq!(positions.len() + 7, 71);
    }

    #[test]
    fn raw_roundtrip() {
        let cw = Codeword::encode(99);
        let again = Codeword::from_raw(cw.raw());
        assert_eq!(cw, again);
    }

    #[test]
    fn codeword_never_uses_high_bits() {
        for data in PATTERNS {
            assert_eq!(Codeword::encode(data).raw() >> 72, 0);
        }
    }

    #[test]
    #[should_panic(expected = "codeword has bits")]
    fn flip_out_of_range_panics() {
        Codeword::encode(0).flip(72);
    }

    /// The position-loop syndrome the cover masks replaced.
    fn syndrome_by_loop(mask: u128) -> u32 {
        let mut s = 0u32;
        for pos in 1..=71u32 {
            if (mask >> pos) & 1 == 1 {
                s ^= pos;
            }
        }
        s
    }

    #[test]
    fn mask_syndrome_matches_position_loop() {
        for pos in 0..CODEWORD_BITS {
            assert_eq!(mask_syndrome(1u128 << pos), if pos == 0 { 0 } else { pos });
        }
        // Pseudo-random dense masks via a splitmix-ish walk.
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..1000 {
            x = x.wrapping_mul(0xd129_2647_26ae_3800).rotate_left(21) ^ 0x5D;
            let mask = (u128::from(x) ^ (u128::from(x) << 57)) & ((1u128 << 72) - 1);
            assert_eq!(
                mask_syndrome(mask),
                syndrome_by_loop(mask),
                "mask {mask:#x}"
            );
        }
    }

    #[test]
    fn data_mask_is_exactly_the_data_positions() {
        let mut expected = 0u128;
        for pos in data_positions() {
            expected |= 1u128 << pos;
        }
        assert_eq!(DATA_MASK, expected);
        assert_eq!(DATA_MASK.count_ones(), DATA_BITS);
        // Check-bit and overall-parity positions are excluded.
        for k in 0..7 {
            assert_eq!(DATA_MASK >> (1u32 << k) & 1, 0);
        }
        assert_eq!(DATA_MASK & 1, 0);
    }

    #[test]
    fn cover_masks_are_disjoint_from_position_zero_and_tile_the_code() {
        let mut union = 0u128;
        for mask in COVER_MASKS {
            assert_eq!(mask & 1, 0, "position 0 is outside the Hamming code");
            union |= mask;
        }
        // Every position 1..=71 is in at least one parity group.
        assert_eq!(union, ((1u128 << 72) - 1) & !1);
    }
}
