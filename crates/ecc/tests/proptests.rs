//! Property-based tests of the ECC codecs over arbitrary data words and
//! flip patterns.

use proptest::prelude::*;

use serscale_ecc::interleave::{Interleaver, LogicalBit, PhysicalBit};
use serscale_ecc::parity::{ParityCheck, ParityWord};
use serscale_ecc::secded::{Codeword, DecodeOutcome, CODEWORD_BITS};
use serscale_ecc::{ProtectionScheme, UpsetOutcome};

proptest! {
    /// SECDED round-trips every 64-bit word.
    #[test]
    fn secded_roundtrip(data in any::<u64>()) {
        prop_assert_eq!(Codeword::encode(data).decode(), DecodeOutcome::Clean { data });
    }

    /// SECDED corrects any single flip of any codeword of any data.
    #[test]
    fn secded_corrects_any_single_flip(data in any::<u64>(), pos in 0u32..CODEWORD_BITS) {
        let mut cw = Codeword::encode(data);
        cw.flip(pos);
        match cw.decode() {
            DecodeOutcome::Corrected { data: d, position } => {
                prop_assert_eq!(d, data);
                prop_assert_eq!(position, pos);
            }
            other => prop_assert!(false, "expected correction, got {:?}", other),
        }
    }

    /// SECDED flags any double flip of any data as uncorrectable.
    #[test]
    fn secded_detects_any_double_flip(
        data in any::<u64>(),
        a in 0u32..CODEWORD_BITS,
        b in 0u32..CODEWORD_BITS,
    ) {
        prop_assume!(a != b);
        let mut cw = Codeword::encode(data);
        cw.flip(a);
        cw.flip(b);
        prop_assert_eq!(cw.decode(), DecodeOutcome::DetectedUncorrectable);
    }

    /// A SECDED decode NEVER hands back wrong data while claiming the word
    /// was clean, for any error of weight ≤ 3 (the code's distance is 4).
    #[test]
    fn secded_no_silent_corruption_below_distance(
        data in any::<u64>(),
        flips in prop::collection::btree_set(0u32..CODEWORD_BITS, 0..=3),
    ) {
        let mut cw = Codeword::encode(data);
        for &f in &flips {
            cw.flip(f);
        }
        if let DecodeOutcome::Clean { data: d } = cw.decode() {
            prop_assert_eq!(d, data, "clean verdict with corrupt data at {:?}", flips);
        }
    }

    /// Parity detects every odd-weight error and passes every even-weight
    /// one (the fundamental parity property, on arbitrary data).
    #[test]
    fn parity_weight_parity_decides_detection(
        data in any::<u64>(),
        flips in prop::collection::btree_set(0u32..65, 0..8),
    ) {
        let mut w = ParityWord::encode(data);
        for &f in &flips {
            w.flip(f);
        }
        match w.check() {
            ParityCheck::Mismatch => prop_assert_eq!(flips.len() % 2, 1),
            ParityCheck::Clean { .. } => prop_assert_eq!(flips.len() % 2, 0),
        }
    }

    /// The interleaver is a bijection for any degree/width combination.
    #[test]
    fn interleaver_bijective(degree in 1u32..16, word_bits in 1u32..128) {
        let il = Interleaver::new(degree, word_bits);
        let mut seen = vec![false; il.row_bits() as usize];
        for p in 0..il.row_bits() {
            let l = il.to_logical(PhysicalBit(p));
            prop_assert!(l.word < degree);
            prop_assert!(l.bit < word_bits);
            prop_assert_eq!(il.to_physical(l), PhysicalBit(p));
            let slot = (l.word * word_bits + l.bit) as usize;
            prop_assert!(!seen[slot], "logical slot hit twice");
            seen[slot] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// to_physical rejects nothing that to_logical produced; spread_cluster
    /// conserves the flipped-cell count for in-row clusters.
    #[test]
    fn spread_cluster_conserves_cells(
        degree in 1u32..8,
        start in 0u32..64,
        len in 1u32..16,
    ) {
        let il = Interleaver::new(degree, 72);
        let start = PhysicalBit(start % il.row_bits());
        let len = len.min(il.row_bits());
        let spread = il.spread_cluster(start, len);
        let total: usize = spread.iter().map(|(_, bits)| bits.len()).sum();
        prop_assert_eq!(total as u32, len);
    }

    /// The full encode → inject 1–2 flips → decode classification
    /// round-trip on arbitrary data: singles come back corrected in
    /// place, doubles are flagged, nothing else can happen.
    #[test]
    fn secded_classification_roundtrip(
        data in any::<u64>(),
        flips in prop::collection::btree_set(0u32..CODEWORD_BITS, 1..=2),
    ) {
        let mut cw = Codeword::encode(data);
        for &f in &flips {
            cw.flip(f);
        }
        match (flips.len(), cw.decode()) {
            (1, DecodeOutcome::Corrected { data: d, position }) => {
                prop_assert_eq!(d, data);
                prop_assert!(flips.contains(&position));
            }
            (2, DecodeOutcome::DetectedUncorrectable) => {}
            (n, other) => prop_assert!(false, "{} flips decoded to {:?}", n, other),
        }
    }

    /// Scheme-level view of the same contract: any 1–2-flip cluster in a
    /// SECDED entry classifies per the code distance, and in particular is
    /// never silent and never mis-corrected.
    #[test]
    fn secded_scheme_classifies_small_clusters(
        flips in prop::collection::btree_set(0u32..72, 1..=2),
    ) {
        let cluster: Vec<u32> = flips.iter().copied().collect();
        let expect = if cluster.len() == 1 {
            UpsetOutcome::Corrected
        } else {
            UpsetOutcome::DetectedUncorrectable
        };
        prop_assert_eq!(ProtectionScheme::Secded.classify(&cluster), expect);
    }

    /// Scheme classification is total and sane: single flips are never
    /// silent under any protection except None.
    #[test]
    fn protected_single_flips_never_silent(pos in 0u32..65) {
        prop_assert_eq!(
            ProtectionScheme::Parity.classify(&[pos]),
            UpsetOutcome::Corrected
        );
        if pos < 64 {
            prop_assert_eq!(
                ProtectionScheme::None.classify(&[pos]),
                UpsetOutcome::SilentCorruption
            );
        }
    }

    /// LogicalBit/PhysicalBit mapping respects the column-mux rule.
    #[test]
    fn column_mux_rule(degree in 1u32..8, word in 0u32..8, bit in 0u32..72) {
        prop_assume!(word < degree);
        let il = Interleaver::new(degree, 72);
        let p = il.to_physical(LogicalBit { word, bit });
        prop_assert_eq!(p.0 % degree, word);
        prop_assert_eq!(p.0 / degree, bit);
    }
}
